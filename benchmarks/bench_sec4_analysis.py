"""Section 4 — Scalability analysis (detection/convergence/BDT/BCT).

The paper's analysis section has no figure, but its conclusions are the
quantitative backbone of the comparison: with fixed per-node frequency the
hierarchical scheme's bandwidth is O(n) versus O(n^2) for the others, and
it has the lowest bandwidth-detection-time and bandwidth-convergence-time
products.  This bench evaluates the closed forms over 20..4096 nodes and
cross-validates the analytical bandwidth against the simulator at the
sizes the testbed could reach.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.analysis import MODELS, AnalysisParams
from repro.metrics import FailureExperiment

SIZES = [20, 64, 128, 256, 512, 1024, 2048, 4096]


def simulate_bandwidth(scheme: str, networks: int) -> float:
    exp = FailureExperiment(
        scheme, networks, 20, seed=5, warmup=20.0, bandwidth_window=10.0, observe=0.0
    )
    return exp.run().bandwidth.aggregate_rate


def test_sec4_scalability_analysis(one_shot):
    params = AnalysisParams()
    models = {name: cls(params) for name, cls in MODELS.items()}

    rows = []
    for n in SIZES:
        row = [n]
        for name in sorted(models):
            m = models[name]
            row.append(f"{m.aggregate_bandwidth(n) / 1e6:.2f}")
            row.append(f"{m.detection_time(n):.1f}")
            row.append(f"{m.bdt(n) / 1e6:.1f}")
        rows.append(tuple(row))
    header = ["nodes"]
    for name in sorted(models):
        header += [f"{name} MB/s", f"{name} det(s)", f"{name} BDT(MB)"]
    print_table("Sec. 4: bandwidth / detection / BDT (fixed 1 Hz heartbeats)", header, rows)

    print_table(
        "Sec. 4: bandwidth-convergence-time products (MB)",
        ["nodes"] + sorted(models),
        [
            (n, *(f"{models[s].bct(n) / 1e6:.1f}" for s in sorted(models)))
            for n in SIZES
        ],
    )

    # The paper's conclusions, as assertions:
    for n in SIZES:
        bdts = {name: m.bdt(n) for name, m in models.items()}
        bcts = {name: m.bct(n) for name, m in models.items()}
        assert bdts["hierarchical"] == min(bdts.values())
        assert bcts["hierarchical"] == min(bcts.values())
    # Asymptotics: quadratic vs quadratic-log vs linear.
    for name, lo, hi in (
        ("all-to-all", 3.9, 4.2),
        ("gossip", 3.9, 4.2),
        ("hierarchical", 1.9, 2.1),
    ):
        growth = models[name].aggregate_bandwidth(4096) / models[name].aggregate_bandwidth(2048)
        assert lo < growth < hi, (name, growth)
    assert models["gossip"].bdt(4096) / models["gossip"].bdt(2048) > models[
        "all-to-all"
    ].bdt(4096) / models["all-to-all"].bdt(2048)

    # Cross-validation: the analytical bandwidth matches the simulator
    # within 25% at 40 and 100 nodes for every scheme.
    measured = one_shot(
        lambda: {
            (scheme, networks * 20): simulate_bandwidth(scheme, networks)
            for scheme in sorted(MODELS)
            for networks in (2, 5)
        }
    )
    print_table(
        "Sec. 4 validation: simulated vs analytical aggregate bandwidth (KB/s)",
        ["scheme", "nodes", "simulated", "model"],
        [
            (
                scheme,
                n,
                f"{measured[(scheme, n)] / 1e3:.1f}",
                f"{models[scheme].aggregate_bandwidth(n) / 1e3:.1f}",
            )
            for (scheme, n) in sorted(measured)
        ],
    )
    for (scheme, n), value in measured.items():
        model_value = models[scheme].aggregate_bandwidth(n)
        assert value == pytest.approx(model_value, rel=0.25), (scheme, n)
