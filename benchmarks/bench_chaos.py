"""Multi-seed chaos sweep: invariants + Fig. 13/14 recovery under faults.

Runs the canonical seeded chaos scenario (``repro.chaos.ChaosScenario``:
asymmetric partition + 20% directional loss with jitter/reordering/
duplication + a mid-chaos crash and post-chaos recovery) across a batch
of seeds and records, per seed,

* whether the invariant checker stayed green (no dual leaders, no
  resurrections, bounded false failures, eventual directory agreement),
* detection / convergence times for the mid-chaos crash,
* the Fig. 13-style failure-propagation curve and Fig. 14-style
  rejoin curve, both under chaos,
* fault-plan counters (drops, duplicates, delays) proving the chaos
  actually fired.

``--check`` is the CI gate: every seed must run green and detect the
crash within the MAX_LOSS bound (plus chaos slack); the gate is
count-based, not wall-clock-based, so it is machine-independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chaos import ChaosScenario  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_chaos.json"

FULL_SEEDS = [7, 11, 23, 42, 99]
QUICK_SEEDS = [7, 42]

#: detection must land within MAX_LOSS periods (5 x 1 Hz) plus slack for
#: chaos-path delays — same bound the acceptance test uses.
DETECTION_BOUND_S = 10.0


def run_seed(seed: int) -> dict:
    res = ChaosScenario(seed=seed).run()
    survivors = res.down_curve[-1][1] if res.down_curve else 0
    return {
        "seed": seed,
        "ok": res.ok,
        "violations": [
            {"time": v.time, "invariant": v.invariant, "detail": v.detail}
            for v in res.violations
        ],
        "false_failures": res.false_failures,
        "victim": res.victim,
        "detection_s": res.detection,
        "convergence_s": res.convergence,
        "observers_converged": survivors,
        "recovery_curve": res.down_curve,
        "rejoin_curve": res.up_curve,
        "fault_stats": res.fault_stats,
        "trace_events": len(res.trace_signature),
    }


def sweep(seeds: list[int]) -> dict:
    runs = [run_seed(s) for s in seeds]
    detections = [r["detection_s"] for r in runs if r["detection_s"] is not None]
    convergences = [r["convergence_s"] for r in runs if r["convergence_s"] is not None]
    return {
        "seeds": seeds,
        "runs": runs,
        "summary": {
            "all_ok": all(r["ok"] for r in runs),
            "total_false_failures": sum(r["false_failures"] for r in runs),
            "detection_s": {
                "min": min(detections) if detections else None,
                "max": max(detections) if detections else None,
                "mean": round(sum(detections) / len(detections), 3)
                if detections
                else None,
            },
            "convergence_s": {
                "min": min(convergences) if convergences else None,
                "max": max(convergences) if convergences else None,
                "mean": round(sum(convergences) / len(convergences), 3)
                if convergences
                else None,
            },
            "total_drops": sum(r["fault_stats"].get("drops", 0) for r in runs),
            "total_duplicates": sum(
                r["fault_stats"].get("duplicates", 0) for r in runs
            ),
        },
    }


def run_check(report: dict) -> int:
    """CI gate: every seed green, crash detected within the bound."""
    failures = []
    for r in report["runs"]:
        if not r["ok"]:
            failures.append(f"seed {r['seed']}: violations {r['violations']}")
        if r["detection_s"] is None:
            failures.append(f"seed {r['seed']}: crash never detected")
        elif r["detection_s"] > DETECTION_BOUND_S:
            failures.append(
                f"seed {r['seed']}: detection {r['detection_s']:.2f}s "
                f"> bound {DETECTION_BOUND_S}s"
            )
        if r["fault_stats"].get("drops", 0) == 0:
            failures.append(f"seed {r['seed']}: chaos never fired (0 drops)")
    for line in failures:
        print(f"check: FAIL {line}", file=sys.stderr)
    verdict = "REGRESSION" if failures else "OK"
    print(
        f"check: {len(report['runs'])} seeds, "
        f"{sum(r['ok'] for r in report['runs'])} green -> {verdict}"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer seeds for CI smoke runs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="nonzero exit unless every seed runs green under the invariants",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    seeds = QUICK_SEEDS if args.quick else FULL_SEEDS
    report = {"quick": args.quick, **sweep(seeds)}

    if args.check:
        print(json.dumps(report["summary"], indent=2))
        return run_check(report)

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["summary"], indent=2))
    for r in report["runs"]:
        print(
            f"seed {r['seed']}: ok={r['ok']} detection={r['detection_s']}s "
            f"convergence={r['convergence_s']}s drops={r['fault_stats'].get('drops')}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
