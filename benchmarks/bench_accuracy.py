"""Extension — membership accuracy over time (the paper's stated goal).

The abstract claims "high membership accuracy" but the evaluation never
plots it.  This bench measures it directly: mean Jaccard similarity
between every live node's directory view and the ground-truth live set,
sampled each second through a churn scenario (three staggered failures,
one recovery) for all three schemes.

Expected shape: all schemes sit at 1.0 in steady state; every failure
opens an accuracy dip that lasts about the scheme's detection time, so
gossip's dips are ~2-3x wider than the heartbeat schemes'; all views
return to exactly 1.0 afterwards (completeness + accuracy).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.metrics import SCHEMES, make_scheme_cluster
from repro.metrics.collectors import accuracy_timeseries

WARMUP = 25.0
KILLS = [30.0, 32.0, 34.0]
RECOVER_AT = 50.0
HORIZON = 75.0


def run_scheme(scheme: str):
    net, hosts, nodes = make_scheme_cluster(scheme, 3, 10, seed=17)
    victims = [hosts[7], hosts[17], hosts[27]]
    intervals = {h: [(0.0, HORIZON)] for h in hosts}
    for when, victim in zip(KILLS, victims):
        net.sim.call_at(when, nodes[victim].stop)
        net.sim.call_at(when, net.crash_host, victim)
    back = victims[0]
    net.sim.call_at(RECOVER_AT, net.recover_host, back)
    net.sim.call_at(RECOVER_AT, nodes[back].start)
    intervals[victims[0]] = [(0.0, KILLS[0]), (RECOVER_AT, HORIZON)]
    intervals[victims[1]] = [(0.0, KILLS[1])]
    intervals[victims[2]] = [(0.0, KILLS[2])]
    net.run(until=HORIZON)
    series = accuracy_timeseries(net.trace, hosts, intervals, horizon=HORIZON, step=1.0)
    return dict(series)


def test_accuracy_timeline(one_shot):
    series = one_shot(lambda: {s: run_scheme(s) for s in sorted(SCHEMES)})

    rows = []
    for t in range(20, int(HORIZON), 2):
        rows.append(
            (t, *(f"{series[s][float(t)]:.4f}" for s in sorted(SCHEMES)))
        )
    print_table(
        "Accuracy timeline (kills @30/32/34 s, one recovery @50 s)",
        ["second"] + sorted(SCHEMES),
        rows,
    )

    for scheme in SCHEMES:
        s = series[scheme]
        # Perfect accuracy before the churn.
        assert s[28.0] == 1.0, scheme
        # The failures dent accuracy while undetected.
        assert s[36.0] < 1.0, scheme
        # Eventually exact again (completeness and accuracy).
        assert s[HORIZON - 1] == 1.0, scheme

    def dip_width(scheme: str) -> int:
        s = series[scheme]
        return sum(1 for t in range(29, int(HORIZON)) if s[float(t)] < 0.9999)

    # The heartbeat schemes close each dip in ~detection time; gossip's
    # dips are substantially wider.
    assert dip_width("gossip") > dip_width("hierarchical") + 4
    assert dip_width("gossip") > dip_width("all-to-all") + 4
    # Hierarchical is as accurate as all-to-all (within a couple seconds
    # of dip width).
    assert abs(dip_width("hierarchical") - dip_width("all-to-all")) <= 3
