"""Figure 13 — View convergence time of the three schemes.

Convergence = the *latest* time any survivor records the failure.  Expected
shape: hierarchical tracks all-to-all closely (leaders flood the update in
milliseconds once detected), both stay near-constant in cluster size, and
gossip is the largest everywhere and grows with the number of nodes.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.metrics import FailureExperiment, SCHEMES
from repro.protocols import ProtocolConfig

NETWORKS = [1, 2, 3, 4, 5]
HOSTS_PER_NETWORK = 20


def run_sweep():
    results = {}
    for scheme in sorted(SCHEMES):
        for networks in NETWORKS:
            exp = FailureExperiment(
                scheme,
                networks,
                HOSTS_PER_NETWORK,
                seed=3,
                warmup=25.0,
                observe=90.0,
                measure_bandwidth=False,
            )
            res = exp.run()
            assert res.convergence is not None, (scheme, networks)
            results[(scheme, networks * HOSTS_PER_NETWORK)] = res
    return results


def test_fig13_view_convergence_time(one_shot):
    results = one_shot(run_sweep)

    sizes = [n * HOSTS_PER_NETWORK for n in NETWORKS]
    print_table(
        "Fig. 13: view convergence time (s) vs number of nodes",
        ["nodes"] + sorted(SCHEMES),
        [
            (n, *(f"{results[(s, n)].convergence:.2f}" for s in sorted(SCHEMES)))
            for n in sizes
        ],
    )
    print_table(
        "Fig. 13 (derived): convergence - detection gap (s)",
        ["nodes"] + sorted(SCHEMES),
        [
            (
                n,
                *(
                    f"{results[(s, n)].convergence - results[(s, n)].detection:.3f}"
                    for s in sorted(SCHEMES)
                ),
            )
            for n in sizes
        ],
    )

    cfg = ProtocolConfig()
    for n in sizes:
        conv = {s: results[(s, n)].convergence for s in SCHEMES}
        # Gossip is the largest at every size.
        assert conv["gossip"] > conv["all-to-all"]
        assert conv["gossip"] > conv["hierarchical"]
        # Hierarchical matches all-to-all within ~2 heartbeat periods.
        assert abs(conv["hierarchical"] - conv["all-to-all"]) < 2 * cfg.heartbeat_period
        # Once a failure is detected the hierarchical tree floods the
        # update quickly: convergence - detection stays within the
        # heartbeat-phase spread, far below gossip's lag.
        hier_gap = results[("hierarchical", n)].convergence - results[
            ("hierarchical", n)
        ].detection
        assert hier_gap < 2 * cfg.heartbeat_period

    # Gossip convergence lags far behind its own detection (independent
    # per-node timeouts spread by epidemic propagation) and ends up around
    # 4x the heartbeat schemes at 100 nodes; the other two stay ~flat.
    for n in sizes:
        gap = results[("gossip", n)].convergence - results[("gossip", n)].detection
        assert gap > 2.0
    assert results[("gossip", 100)].convergence > 3 * results[("hierarchical", 100)].convergence
    for scheme in ("all-to-all", "hierarchical"):
        spread = max(results[(scheme, n)].convergence for n in sizes) - min(
            results[(scheme, n)].convergence for n in sizes
        )
        assert spread < 2.5
