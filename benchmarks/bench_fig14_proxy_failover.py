"""Figure 14 — Effectiveness of the membership proxy.

The paper runs its prototype search engine in two data centers (90 ms
round trip).  At second 20 the document-retrieval service in data center A
fails; it recovers at second 40.  The plots show per-second response time
and throughput over the 60 s run: throughput dips only during the failure
detection window, response time rises above 200 ms while requests are
served by data center B, and both snap back on recovery.

Reproduction uses the same timeline shifted by a warm-up (membership and
proxies must converge before the run starts).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.apps import SearchDeployment
from repro.cluster.gateway import Gateway

WARMUP = 15.0
FAIL_AT = 20.0
RECOVER_AT = 40.0
END = 60.0
RATE = 10.0


def run_scenario():
    dep = SearchDeployment(networks=3, hosts_per_network=6, seed=4)
    net = dep.network
    dep.warm_up(WARMUP)
    engine = dep.engines["dcA"]
    gw = Gateway(
        net.sim,
        executor=lambda query: engine.query(query),
        workload=lambda seq: {"query": f"q{seq}"},
        rate=RATE,
    )
    gw.start()
    net.sim.call_at(WARMUP + FAIL_AT, dep.fail_doc_service, "dcA")
    net.sim.call_at(WARMUP + RECOVER_AT, dep.recover_doc_service, "dcA")
    net.run(until=WARMUP + END + 5.0)
    gw.stop()
    return gw.stats


def test_fig14_proxy_failover(one_shot):
    stats = one_shot(run_scenario)

    rt = {int(s - WARMUP): v for s, v in stats.response_time_series()}
    thr = {int(s - WARMUP): v for s, v in stats.throughput_series()}
    rows = []
    for sec in range(0, int(END)):
        rows.append(
            (
                sec,
                f"{1000 * rt[sec]:.1f}" if sec in rt else "-",
                thr.get(sec, 0),
            )
        )
    print_table(
        "Fig. 14: search engine during DC-A retrieval failure (fail@20s, recover@40s)",
        ["second", "response time (ms)", "throughput (req/s)"],
        rows,
    )

    baseline = [rt[s] for s in range(5, 19) if s in rt]
    failover = [rt[s] for s in range(27, 39) if s in rt]
    recovered = [rt[s] for s in range(45, 59) if s in rt]

    # Normal operation: well under 100 ms.
    assert baseline and max(baseline) < 0.1
    # During the failure the service stays available via data center B at
    # a response time above 200 ms (the paper's headline observation).
    assert failover and min(failover) > 0.2
    # Throughput matches the arrival rate again once detection completes,
    # and the dip is confined to the detection window after the failure.
    assert all(thr.get(s, 0) == RATE for s in range(30, 39))
    # Seconds 0 and END-1 are partial buckets (requests straddle them).
    dip = [s for s in range(2, int(END) - 1) if thr.get(s, 0) < RATE]
    assert dip, "expected a throughput dip during failure detection"
    assert all(19 <= s <= 30 or 39 <= s <= 47 for s in dip), dip
    # Recovery: response time drops right back to the local level.
    assert recovered and max(recovered) < 0.1
    # No request was ultimately lost (failure shielding + proxy routing).
    assert stats.failed == 0
