"""Perf-engine benchmark: tracks the fast-path delivery engine over PRs.

Unlike the ``bench_fig*`` modules (which reproduce paper figures under
pytest-benchmark), this is a standalone script producing a machine-readable
trajectory file, ``BENCH_perf_engine.json`` at the repo root, so future PRs
can regress against absolute and relative numbers:

* **kernel** — raw events/second through ``Simulator`` (schedule + run).
* **multicast micro** — ``MulticastFabric.send()`` throughput at 100 and
  400 subscribers, measured twice in the same process: once on the fast
  path (cached delivery plans + batched per-delay-bucket events) and once
  with ``use_fast_path = False`` (the legacy per-receiver baseline).  The
  reported ``speedup`` is the acceptance metric.
* **macro** — wall-clock of a full 100-node hierarchical membership run
  (5 networks x 20 hosts, 60 simulated seconds, 1 Hz heartbeats).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_engine.py          # full
    PYTHONPATH=src python benchmarks/bench_perf_engine.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.experiment import make_scheme_cluster  # noqa: E402
from repro.net.builders import build_switched_cluster  # noqa: E402
from repro.net.network import Network  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_perf_engine.json"


def bench_kernel(num_events: int) -> dict:
    """Events/second through schedule + run of an empty callback."""
    sim = Simulator()
    fn = (lambda: None)
    t0 = time.perf_counter()
    call_at = sim.call_at
    for i in range(num_events):
        call_at(float(i % 97) * 0.01, fn)
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": num_events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(num_events / wall),
    }


def bench_multicast(
    networks: int, hosts_per_network: int, sends: int, chunk: int = 50
) -> dict:
    """send() throughput, fast path vs legacy baseline, same process.

    Send-loop time is accumulated in chunks and the queue is drained
    off-timer between chunks, so the metric isolates fan-out cost (plan
    resolution + scheduling) identically for both modes; end-to-end time
    (sends + deliveries) is also reported.
    """
    results: dict = {"subscribers": networks * hosts_per_network - 1}
    for mode, fast in (("fast", True), ("baseline", False)):
        topo, hosts = build_switched_cluster(networks, hosts_per_network)
        net = Network(topo, seed=11)
        fabric = net.multicast_fabric
        fabric.use_fast_path = fast
        sink = lambda packet: None  # noqa: E731
        for h in hosts:
            net.subscribe("bench", h, sink)
        # Warm topology + plan caches outside the timed region for both
        # modes (the legacy path also caches Dijkstra results in Topology).
        net.multicast(hosts[0], "bench", ttl=2, kind="hb", payload=None, size=228)
        net.run()
        send_wall = 0.0
        total_wall = 0.0
        done = 0
        while done < sends:
            n = min(chunk, sends - done)
            t0 = time.perf_counter()
            for _ in range(n):
                net.multicast(hosts[0], "bench", ttl=2, kind="hb", payload=None, size=228)
            t1 = time.perf_counter()
            net.run()
            t2 = time.perf_counter()
            send_wall += t1 - t0
            total_wall += t2 - t0
            done += n
        results[mode] = {
            "sends": sends,
            "send_wall_s": round(send_wall, 4),
            "sends_per_sec": round(sends / send_wall),
            "end_to_end_wall_s": round(total_wall, 4),
            "end_to_end_sends_per_sec": round(sends / total_wall),
        }
    results["speedup"] = round(
        results["baseline"]["send_wall_s"] / results["fast"]["send_wall_s"], 2
    )
    results["end_to_end_speedup"] = round(
        results["baseline"]["end_to_end_wall_s"] / results["fast"]["end_to_end_wall_s"], 2
    )
    return results


def bench_macro(networks: int, hosts_per_network: int, duration: float) -> dict:
    """Wall-clock of a full hierarchical membership run."""
    net, hosts, _nodes = make_scheme_cluster(
        "hierarchical", networks, hosts_per_network, seed=31
    )
    t0 = time.perf_counter()
    net.run(until=duration)
    wall = time.perf_counter() - t0
    return {
        "nodes": len(hosts),
        "sim_seconds": duration,
        "wall_s": round(wall, 4),
        "events": net.sim.events_executed,
        "events_per_sec": round(net.sim.events_executed / wall),
        "rx_packets": net.meter.packets(direction="rx"),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.quick:
        report = {
            "quick": True,
            "kernel": bench_kernel(20_000),
            "multicast_send": {"100": bench_multicast(5, 20, sends=50)},
            "macro_hierarchical": bench_macro(2, 10, duration=10.0),
        }
    else:
        report = {
            "quick": False,
            "kernel": bench_kernel(200_000),
            "multicast_send": {
                "100": bench_multicast(5, 20, sends=400),
                "400": bench_multicast(20, 20, sends=200),
            },
            "macro_hierarchical": bench_macro(5, 20, duration=60.0),
        }

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for size, r in report["multicast_send"].items():
        print(
            f"multicast {size}-node send speedup: {r['speedup']}x "
            f"(end-to-end {r['end_to_end_speedup']}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
