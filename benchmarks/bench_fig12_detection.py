"""Figure 12 — Failure detection time of the three schemes.

The paper kills the membership daemon on one node and reports the earliest
time any survivor records the failure, for 20-100 nodes.  Expected shape:
the hierarchical and all-to-all schemes share a near-constant detection
time of about MAX_LOSS x period (~5-6 s); gossip is slowest everywhere and
grows with cluster size; gossip is already worst at 20 nodes.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.metrics import FailureExperiment, SCHEMES
from repro.protocols import ProtocolConfig

NETWORKS = [1, 2, 3, 4, 5]
HOSTS_PER_NETWORK = 20


def run_sweep():
    results = {}
    for scheme in sorted(SCHEMES):
        for networks in NETWORKS:
            exp = FailureExperiment(
                scheme,
                networks,
                HOSTS_PER_NETWORK,
                seed=2,
                warmup=25.0,
                observe=60.0,
                measure_bandwidth=False,
            )
            res = exp.run()
            assert res.detection is not None, (scheme, networks)
            results[(scheme, networks * HOSTS_PER_NETWORK)] = res.detection
    return results


def test_fig12_failure_detection_time(one_shot):
    detection = one_shot(run_sweep)

    sizes = [n * HOSTS_PER_NETWORK for n in NETWORKS]
    print_table(
        "Fig. 12: failure detection time (s) vs number of nodes",
        ["nodes"] + sorted(SCHEMES),
        [
            (n, *(f"{detection[(s, n)]:.2f}" for s in sorted(SCHEMES)))
            for n in sizes
        ],
    )

    cfg = ProtocolConfig()
    for n in sizes:
        # Heartbeat schemes detect in ~fail_timeout, independent of size.
        for scheme in ("all-to-all", "hierarchical"):
            assert cfg.fail_timeout <= detection[(scheme, n)] <= cfg.fail_timeout + 2.0
        # Gossip is the slowest at every size (paper: "It also has the
        # longest detection time when there are 20 nodes").
        assert detection[("gossip", n)] > detection[("all-to-all", n)]
        assert detection[("gossip", n)] > detection[("hierarchical", n)]

    # Gossip detection grows with n; heartbeat schemes stay flat.
    assert detection[("gossip", 100)] > detection[("gossip", 20)] + 1.0
    spread = max(detection[("hierarchical", n)] for n in sizes) - min(
        detection[("hierarchical", n)] for n in sizes
    )
    assert spread < 2.0
