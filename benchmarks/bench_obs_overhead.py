"""Observability overhead benchmark: instruments on vs off, same cluster.

Companion to ``bench_protocol_hotpath.py``: same steady-state A/B harness,
but the variable is the observability layer instead of the protocol
engine.  The acceptance claim is that a fully instrumented run — every
counter of the :class:`~repro.obs.wiring.Instruments` bundle live on the
multicast/unicast fabrics and the protocol hot paths — stays within a few
percent of the uninstrumented wall clock, because disabled mode costs one
no-op method call per counted event and enabled mode one attribute load
plus an integer add.

The measurement builds the same hierarchical cluster repeatedly (same
topology, same seed, fast path on), alternating ``enable_observability``
on and off, lets the hierarchy form off-timer each time, then times a
quiet steady-state window.  Because the true delta (a real counter
increment vs a no-op method call) is tiny, the protocol defends against
timer noise: one discarded warm-up run, ABBA-ordered measurement pairs
so monotone process drift (heap growth) cancels to first order, a GC
collect before every timed window, and the **median** wall per mode.
``overhead`` (enabled median / disabled median - 1) is the acceptance
metric; the committed ``BENCH_obs.json`` records it and ``--check``
gates CI on a noise-tolerant ceiling.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick --check
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.experiment import make_scheme_cluster  # noqa: E402
from repro.obs import MetricsRegistry, enable_observability  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_obs.json"

#: ``--check`` ceiling on the quick configuration.  The full 400-node run
#: must show <5% (the PR's acceptance bar, recorded in BENCH_obs.json);
#: the CI quick run times a much shorter window on shared runners, so its
#: gate tolerates timer noise rather than re-litigating the 5% claim.
CHECK_MAX_OVERHEAD = 0.15


def _one_run(
    networks: int, hosts_per_network: int, warmup: float, window: float,
    instrumented: bool,
) -> tuple:
    """One (wall, events, counters-or-None) steady-state measurement."""
    net, _hosts, _nodes = make_scheme_cluster(
        "hierarchical",
        networks,
        hosts_per_network,
        seed=47,
    )
    handle = None
    if instrumented:
        handle = enable_observability(net, MetricsRegistry())
    net.run(until=warmup)
    before = net.sim.events_executed
    gc.collect()
    t0 = time.perf_counter()
    net.run(until=warmup + window)
    wall = time.perf_counter() - t0
    events = net.sim.events_executed - before
    counters = None
    if handle is not None:
        inst = handle.instruments
        counters = {
            "hb_tx": inst.hb_tx.get(),
            "hb_rx": inst.hb_rx.get(),
            "hb_rx_fast": inst.hb_rx_fast.get(),
            "mc_tx": inst.mc_tx.get(),
            "mc_rx": inst.mc_rx.get(),
        }
    del net
    gc.collect()
    return wall, events, counters


def bench_overhead(
    networks: int, hosts_per_network: int, warmup: float, window: float,
    pairs: int = 4,
) -> dict:
    """Steady-state wall-clock, instruments enabled vs disabled.

    Every run uses the fast path; only observability differs.  One
    discarded warm-up run, then ``pairs`` ABBA-ordered enabled/disabled
    pairs (position-balanced, so monotone process drift cancels), median
    wall per mode.  The enabled entry also reports headline counters so
    a reader can see the instruments actually fired during the window.
    """
    results: dict = {
        "nodes": networks * hosts_per_network,
        "warmup_s": warmup,
        "window_s": window,
        "pairs": pairs,
    }
    _one_run(networks, hosts_per_network, warmup, window, False)  # warm-up
    walls: dict = {True: [], False: []}
    events = {}
    counters = None
    for i in range(pairs):
        order = (True, False) if i % 2 == 0 else (False, True)
        for instrumented in order:
            wall, ev, ctr = _one_run(
                networks, hosts_per_network, warmup, window, instrumented
            )
            walls[instrumented].append(wall)
            events[instrumented] = ev
            if ctr is not None:
                counters = ctr
    for mode, instrumented in (("enabled", True), ("disabled", False)):
        wall = statistics.median(walls[instrumented])
        entry = {
            "wall_s": round(wall, 4),
            "walls_s": [round(w, 4) for w in walls[instrumented]],
            "events": events[instrumented],
            "events_per_sec": round(events[instrumented] / wall),
            "sim_rate": round(window / wall, 2),
        }
        if instrumented:
            entry["counters"] = counters
        results[mode] = entry
    results["overhead"] = round(
        results["enabled"]["wall_s"] / results["disabled"]["wall_s"] - 1.0, 4
    )
    return results


def run_check(report: dict) -> int:
    """Gate: the quick run's overhead must stay under the ceiling."""
    current = report["steady_state"]["quick"]["overhead"]
    verdict = "OK" if current <= CHECK_MAX_OVERHEAD else "REGRESSION"
    print(
        f"check: obs overhead {current * 100:.1f}% "
        f"(ceiling {CHECK_MAX_OVERHEAD * 100:.0f}%) -> {verdict}"
    )
    return 0 if current <= CHECK_MAX_OVERHEAD else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (nonzero exit) if overhead exceeds the ceiling",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.quick:
        report = {
            "quick": True,
            "steady_state": {
                "quick": bench_overhead(5, 20, warmup=15.0, window=10.0),
            },
        }
    else:
        report = {
            "quick": False,
            "steady_state": {
                "quick": bench_overhead(5, 20, warmup=15.0, window=10.0),
                "400": bench_overhead(20, 20, warmup=15.0, window=30.0),
            },
        }

    if args.check:
        rc = run_check(report)
        print(json.dumps(report["steady_state"]["quick"], indent=2))
        return rc

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for name, r in report["steady_state"].items():
        print(
            f"steady-state {name} ({r['nodes']} nodes): "
            f"overhead {r['overhead'] * 100:.1f}%"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
