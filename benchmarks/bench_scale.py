"""Extension — incremental scalability of the hierarchical protocol.

The paper motivates a protocol "incrementally scalable from a small
cluster to a large-scale cluster with thousands of nodes".  The 2005
evaluation stopped at the testbed's 100 machines; the simulator lets us
push the actual protocol (not just the closed forms) to hundreds of nodes
and check that the paper's properties hold unchanged:

* complete views everywhere after formation,
* constant detection time (max_loss x period) regardless of size,
* convergence tracking detection within the propagation delay,
* per-node bandwidth independent of cluster size.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import pytest

from conftest import print_table
from repro.metrics import FailureExperiment

SIZES = [(5, 20), (10, 20), (20, 20)]  # (networks, hosts) -> 100..400 nodes

DEFAULT_OUT = REPO_ROOT / "BENCH_scale.json"


def run_sweep():
    out = {}
    for networks, per in SIZES:
        exp = FailureExperiment(
            "hierarchical",
            networks,
            per,
            seed=31,
            warmup=20.0,
            bandwidth_window=10.0,
            observe=30.0,
        )
        out[networks * per] = exp.run()
    return out


def test_scale_to_hundreds_of_nodes(one_shot):
    results = one_shot(run_sweep)

    print_table(
        "Scale: the actual protocol at 100-400 nodes",
        ["nodes", "detect (s)", "converge (s)", "agg KB/s", "per-node KB/s", "observers"],
        [
            (
                n,
                f"{r.detection:.2f}",
                f"{r.convergence:.2f}",
                f"{r.bandwidth.aggregate_rate / 1e3:.0f}",
                f"{r.bandwidth.per_node_rate / 1e3:.2f}",
                f"{r.observers}/{n - 1}",
            )
            for n, r in sorted(results.items())
        ],
    )

    for n, r in results.items():
        # Complete: every survivor observed the failure.
        assert r.observers == n - 1
        # Constant detection; convergence within two heartbeat periods.
        assert 5.0 <= r.detection <= 7.0
        assert r.convergence - r.detection < 2.0
    # Per-node bandwidth flat across a 4x size increase.
    per_node = {n: r.bandwidth.per_node_rate for n, r in results.items()}
    assert per_node[400] / per_node[100] < 1.3
    # Aggregate therefore ~linear.
    assert 3.0 < results[400].bandwidth.aggregate_rate / results[100].bandwidth.aggregate_rate < 5.0


def main(argv: list[str] | None = None) -> int:
    """Standalone mode: time the sweep and emit ``BENCH_scale.json``.

    ``nodes -> {wall-clock, events/sec, detection, convergence}`` gives
    future PRs an absolute scalability trajectory to regress against,
    complementing the ratio-based ``BENCH_protocol_hotpath.json``.
    """
    parser = argparse.ArgumentParser(
        description="Scalability sweep (100-400 nodes) emitting BENCH_scale.json"
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    from repro.metrics.experiment import make_scheme_cluster

    report: dict = {"sizes": {}}
    for networks, per in SIZES:
        n = networks * per
        # Steady-state timing: form the hierarchy off-timer, then measure.
        net, _hosts, _nodes = make_scheme_cluster("hierarchical", networks, per, seed=31)
        net.run(until=20.0)
        before = net.sim.events_executed
        t0 = time.perf_counter()
        net.run(until=50.0)
        wall = time.perf_counter() - t0
        events = net.sim.events_executed - before
        exp = FailureExperiment(
            "hierarchical", networks, per, seed=31,
            warmup=20.0, bandwidth_window=10.0, observe=30.0,
        )
        r = exp.run()
        report["sizes"][str(n)] = {
            "nodes": n,
            "steady_wall_s": round(wall, 4),
            "steady_events": events,
            "events_per_sec": round(events / wall),
            "detection_s": round(r.detection, 3) if r.detection else None,
            "convergence_s": round(r.convergence, 3) if r.convergence else None,
            "observers": r.observers,
        }
        print(f"{n} nodes: {wall:.2f}s wall, {events / wall:,.0f} events/s")
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
