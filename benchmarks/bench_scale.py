"""Extension — incremental scalability of the hierarchical protocol.

The paper motivates a protocol "incrementally scalable from a small
cluster to a large-scale cluster with thousands of nodes".  The 2005
evaluation stopped at the testbed's 100 machines; the simulator lets us
push the actual protocol (not just the closed forms) to thousands of
nodes and check that the paper's properties hold unchanged:

* complete views everywhere after formation,
* constant detection time (max_loss x period) regardless of size,
* convergence tracking detection within the propagation delay,
* per-node bandwidth independent of cluster size.

Two topology families cover the sweep:

* **switched clusters** (k networks x 20 hosts behind one router) — the
  paper's Section 6 testbed shape, used for 100-400 nodes exactly as the
  original BENCH_scale rows measured them;
* **router trees** (``build_router_tree``) for 1k-10k nodes — a balanced
  tree keeps every membership group at ~10-20 members whatever the total
  size, which is the regime the protocol is designed for (group size
  bounded by the topology, cost per node flat).  A flat switched cluster
  at 10k would put all 500 leaders in one level-1 group, the
  topology-design anti-pattern the paper's hierarchy exists to avoid.

Standalone usage::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick    # <= 400 nodes
    PYTHONPATH=src python benchmarks/bench_scale.py --quick --check
    PYTHONPATH=src python benchmarks/bench_scale.py --profile
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import pytest

from conftest import print_table
from repro.metrics import FailureExperiment

SIZES = [(5, 20), (10, 20), (20, 20)]  # (networks, hosts) -> 100..400 nodes

#: Full sweep rows.  ``switched`` rows reuse the paper-testbed shape and
#: the exact methodology of the original 100-400 BENCH rows; ``tree``
#: rows scale out on balanced router trees.  ``max_ttl`` must cover the
#: tree diameter (leaf-to-leaf crosses 2 x depth routers) or the top
#: groups cannot form and views stay partitioned.
ROWS = [
    {"nodes": 100, "kind": "switched", "networks": 5, "per": 20},
    {"nodes": 200, "kind": "switched", "networks": 10, "per": 20},
    {"nodes": 400, "kind": "switched", "networks": 20, "per": 20},
    {"nodes": 1000, "kind": "tree", "depth": 3, "branching": 10, "per": 10,
     "max_ttl": 7},
    {"nodes": 2000, "kind": "tree", "depth": 3, "branching": 10, "per": 20,
     "max_ttl": 7},
    {"nodes": 10000, "kind": "tree", "depth": 4, "branching": 10, "per": 10,
     "max_ttl": 9},
]

#: ``--quick`` (CI) keeps the rows that finish in seconds.
QUICK_MAX_NODES = 400

SEED = 31
#: Formation runs off-timer; the timed steady-state window starts after
#: the bootstrap announce floods have drained.
WARMUP = {"switched": 20.0, "tree": 25.0}
WINDOW = 30.0

#: ``--check`` compares each row's throughput *relative to the 100-node
#: row* against the same ratio in the committed JSON.  Ratios cancel the
#: machine's absolute speed, so the gate is portable (same trick as
#: ``bench_protocol_hotpath.py``); what it pins is the shape of the
#: scale curve — a superlinear per-event degradation shows up as a
#: falling ratio long before any absolute floor would trip.
CHECK_TOLERANCE = 0.70

DEFAULT_OUT = REPO_ROOT / "BENCH_scale.json"


def build_row_cluster(row: dict):
    """Instantiate one sweep row; returns (net, hosts, nodes, label)."""
    from repro.core.config import HierarchicalConfig
    from repro.core.node import HierarchicalNode
    from repro.metrics.experiment import make_scheme_cluster
    from repro.net.builders import build_router_tree
    from repro.net.network import Network
    from repro.protocols.base import deploy
    from repro.sim.trace import Trace

    if row["kind"] == "switched":
        net, hosts, nodes = make_scheme_cluster(
            "hierarchical", row["networks"], row["per"], seed=SEED
        )
        label = f"switched-cluster {row['networks']}x{row['per']}"
    else:
        topo, hosts = build_router_tree(
            depth=row["depth"], branching=row["branching"],
            hosts_per_leaf=row["per"],
        )
        # retain=False: a 10k-node formation emits ~10^8 member_up
        # records; retaining them would dominate memory for no value.
        net = Network(topo, seed=SEED, trace=Trace(retain=False))
        cfg = HierarchicalConfig(max_ttl=row["max_ttl"])
        nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
        label = (
            f"router-tree depth={row['depth']} branching={row['branching']} "
            f"hosts_per_leaf={row['per']}"
        )
    return net, hosts, nodes, label


def bench_row(row: dict, profile: bool = False) -> dict:
    """Form the hierarchy off-timer, then time a pure steady-state window."""
    gc.collect()
    gc.disable()  # the sim allocates in bursts; GC pauses just add noise
    try:
        t0 = time.perf_counter()
        net, hosts, nodes, label = build_row_cluster(row)
        warmup = WARMUP[row["kind"]]
        net.run(until=warmup)
        formation_wall = time.perf_counter() - t0
        formation_events = net.sim.events_executed
        complete = sum(
            1 for h in hosts if len(nodes[h].directory.snapshot()) == len(hosts)
        )
        before = net.sim.events_executed
        prof = None
        if profile:
            import cProfile

            prof = cProfile.Profile()
            prof.enable()
        t0 = time.perf_counter()
        net.run(until=warmup + WINDOW)
        wall = time.perf_counter() - t0
        if prof is not None:
            prof.disable()
            import pstats

            pstats.Stats(prof).sort_stats("cumulative").print_stats(25)
        events = net.sim.events_executed - before
    finally:
        gc.enable()
    # Uniform row schema: every size reports the same keys, so --check
    # gates and downstream tooling can compare like with like.  The
    # failure-phase fields are filled in by run_failure_row where that
    # experiment runs (switched rows, full sweep) and stay None elsewhere.
    return {
        "nodes": row["nodes"],
        "topology": label,
        "formation_wall_s": round(formation_wall, 4),
        "formation_events": formation_events,
        "formation_events_per_sec": round(formation_events / formation_wall),
        "complete_views": complete,
        "steady_wall_s": round(wall, 4),
        "steady_events": events,
        "events_per_sec": round(events / wall),
        "detection_s": None,
        "convergence_s": None,
        "observers": None,
    }


def run_failure_row(row: dict) -> dict:
    """Detection/convergence via the Section 6 kill-one-node experiment.

    Only meaningful (and affordable) on the paper-shape switched rows;
    the tree rows report throughput only.
    """
    exp = FailureExperiment(
        "hierarchical", row["networks"], row["per"], seed=SEED,
        warmup=20.0, bandwidth_window=10.0, observe=30.0,
    )
    r = exp.run()
    return {
        "detection_s": round(r.detection, 3) if r.detection else None,
        "convergence_s": round(r.convergence, 3) if r.convergence else None,
        "observers": r.observers,
    }


def row_scenario(row: dict, retain_trace: bool = True):
    """The sharded-kernel scenario spec matching one sweep row's formation."""
    from repro.shard import ShardScenario

    warmup = WARMUP[row["kind"]]
    if row["kind"] == "switched":
        return ShardScenario(
            builder="switched", builder_args=(row["networks"], row["per"]),
            scheme="hierarchical", seed=SEED, run_until=warmup,
            retain_trace=retain_trace,
        )
    return ShardScenario(
        builder="router-tree",
        builder_args=(row["depth"], row["branching"], row["per"]),
        scheme="hierarchical", seed=SEED, run_until=warmup,
        max_ttl=row["max_ttl"], retain_trace=retain_trace,
    )


def bench_row_sharded(row: dict, shards: int) -> dict:
    """Formation through the sharded kernel (opt-in via --shards).

    On a single-core host this measures barrier overhead, not speed-up;
    the deterministic-merge contract is what the numbers certify.
    """
    from repro.shard import run_scenario

    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        res = run_scenario(row_scenario(row, retain_trace=False), shards)
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    total = sum(res.events)
    return {
        "shards": shards,
        "formation_wall_s": round(wall, 4),
        "events_per_shard": list(res.events),
        "events_per_sec": round(total / wall),
        "barriers": res.barriers,
        "cross_shard_descriptors": res.exchanged,
    }


#: The shard gate's wall-clock tolerance: shards=2 may cost at most 10%
#: over shards=1 (pure barrier/merge overhead on a single core).
SHARD_WALL_TOLERANCE = 1.10


def check_shard_differential() -> int:
    """CI gate: shards=2 vs shards=1 on the 400-node formation scenario.

    Fails on any trace-hash mismatch (the determinism contract) or on a
    >10% wall-clock regression of the sharded run over the single-shard
    run.
    """
    from repro.shard import run_scenario

    row = next(r for r in ROWS if r["nodes"] == 400)
    spec = row_scenario(row)
    walls = {}
    results = {}
    for n in (1, 2):
        gc.collect()
        t0 = time.perf_counter()
        results[n] = run_scenario(spec, n)
        walls[n] = time.perf_counter() - t0
    hash_ok = results[2].hash == results[1].hash
    ratio = walls[2] / walls[1]
    wall_ok = ratio <= SHARD_WALL_TOLERANCE
    print(
        f"shard-check 400 nodes: shards=1 {walls[1]:.2f}s, shards=2 {walls[2]:.2f}s "
        f"({ratio:.2f}x, tolerance {SHARD_WALL_TOLERANCE:.2f}x) -> "
        f"{'OK' if wall_ok else 'REGRESSION'}"
    )
    print(
        f"shard-check trace hash: {results[1].hash[:16]}... vs "
        f"{results[2].hash[:16]}... -> {'MATCH' if hash_ok else 'MISMATCH'}"
    )
    return 0 if (hash_ok and wall_ok) else 1


def check_report(report: dict, reference_path: Path) -> int:
    """Gate the scale-curve shape against the committed reference JSON."""
    if not reference_path.exists():
        print(f"--check: no reference at {reference_path}; nothing to compare")
        return 0
    ref_sizes = json.loads(reference_path.read_text())["sizes"]
    cur_sizes = report["sizes"]
    base = "100"
    if base not in cur_sizes or base not in ref_sizes:
        print("--check: 100-node baseline row missing; cannot normalise")
        return 1
    cur_base = cur_sizes[base]["events_per_sec"]
    ref_base = ref_sizes[base]["events_per_sec"]
    failed = False
    for size, cur in sorted(cur_sizes.items(), key=lambda kv: int(kv[0])):
        ref = ref_sizes.get(size)
        if ref is None or size == base:
            continue
        cur_ratio = cur["events_per_sec"] / cur_base
        ref_ratio = ref["events_per_sec"] / ref_base
        floor = ref_ratio * CHECK_TOLERANCE
        ok = cur_ratio >= floor
        failed |= not ok
        print(
            f"check {size:>6} nodes: {cur_ratio:.2f}x of 100-node rate "
            f"(reference {ref_ratio:.2f}x, floor {floor:.2f}x) -> "
            f"{'OK' if ok else 'REGRESSION'}"
        )
    return 1 if failed else 0


def run_sweep():
    out = {}
    for networks, per in SIZES:
        exp = FailureExperiment(
            "hierarchical",
            networks,
            per,
            seed=31,
            warmup=20.0,
            bandwidth_window=10.0,
            observe=30.0,
        )
        out[networks * per] = exp.run()
    return out


def test_scale_to_hundreds_of_nodes(one_shot):
    results = one_shot(run_sweep)

    print_table(
        "Scale: the actual protocol at 100-400 nodes",
        ["nodes", "detect (s)", "converge (s)", "agg KB/s", "per-node KB/s", "observers"],
        [
            (
                n,
                f"{r.detection:.2f}",
                f"{r.convergence:.2f}",
                f"{r.bandwidth.aggregate_rate / 1e3:.0f}",
                f"{r.bandwidth.per_node_rate / 1e3:.2f}",
                f"{r.observers}/{n - 1}",
            )
            for n, r in sorted(results.items())
        ],
    )

    for n, r in results.items():
        # Complete: every survivor observed the failure.
        assert r.observers == n - 1
        # Constant detection; convergence within two heartbeat periods.
        assert 5.0 <= r.detection <= 7.0
        assert r.convergence - r.detection < 2.0
    # Per-node bandwidth flat across a 4x size increase.
    per_node = {n: r.bandwidth.per_node_rate for n, r in results.items()}
    assert per_node[400] / per_node[100] < 1.3
    # Aggregate therefore ~linear.
    assert 3.0 < results[400].bandwidth.aggregate_rate / results[100].bandwidth.aggregate_rate < 5.0


def main(argv: list[str] | None = None) -> int:
    """Standalone mode: time the sweep and emit ``BENCH_scale.json``.

    ``nodes -> {wall-clock, events/sec, detection, convergence}`` gives
    future PRs an absolute scalability trajectory to regress against,
    complementing the ratio-based ``BENCH_protocol_hotpath.json``.
    """
    parser = argparse.ArgumentParser(
        description="Scalability sweep (100-10,000 nodes) emitting BENCH_scale.json"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI mode: rows up to {QUICK_MAX_NODES} nodes, skip failure runs",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare the scale curve against the committed JSON; "
             "nonzero exit on regression",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the largest row's steady window (top-25 cumulative)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also run each row's formation through the sharded kernel "
             "with N shards (opt-in; single-core hosts measure overhead, "
             "not speed-up)",
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    rows = [r for r in ROWS if not args.quick or r["nodes"] <= QUICK_MAX_NODES]
    largest = max(r["nodes"] for r in rows)
    report: dict = {"quick": args.quick, "sizes": {}}
    for row in rows:
        n = row["nodes"]
        entry = bench_row(row, profile=args.profile and n == largest)
        if row["kind"] == "switched" and not args.quick:
            entry.update(run_failure_row(row))
        if args.shards > 0:
            entry["shard"] = bench_row_sharded(row, args.shards)
        report["sizes"][str(n)] = entry
        print(
            f"{n} nodes ({entry['topology']}): formation {entry['formation_wall_s']:.1f}s "
            f"({entry['formation_events_per_sec']:,} ev/s), "
            f"steady {entry['steady_wall_s']:.2f}s wall, "
            f"{entry['events_per_sec']:,} events/s, "
            f"views {entry['complete_views']}/{n}"
        )
        if "shard" in entry:
            s = entry["shard"]
            print(
                f"  sharded x{s['shards']}: formation {s['formation_wall_s']:.1f}s, "
                f"{s['barriers']} barriers, "
                f"{s['cross_shard_descriptors']} cross-shard descriptors"
            )

    if args.check:
        rc = check_report(report, DEFAULT_OUT)
        # The sharded-kernel gate rides the CI quick profile: hash
        # equality plus bounded barrier overhead at 400 nodes.
        if args.quick:
            rc |= check_shard_differential()
        return rc
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
