"""Ablation — heartbeat frequency vs. detection time (the BDT trade-off).

Section 4 frames the design space as a bandwidth-detection-time product:
beating twice as often halves detection time but doubles traffic, leaving
BDT invariant; raising ``max_loss`` trades detection latency for loss
tolerance at no bandwidth cost.  This bench measures both effects on the
real protocol.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core import HierarchicalConfig
from repro.metrics import FailureExperiment

PERIODS = [0.5, 1.0, 2.0]
MAX_LOSSES = [3, 5, 8]


def run_sweep():
    out = {}
    for period in PERIODS:
        cfg = HierarchicalConfig(heartbeat_period=period)
        exp = FailureExperiment(
            "hierarchical",
            3,
            10,
            seed=7,
            warmup=25.0,
            bandwidth_window=10.0,
            observe=60.0,
            config=cfg,
        )
        out[("period", period)] = exp.run()
    for max_loss in MAX_LOSSES:
        cfg = HierarchicalConfig(max_loss=max_loss)
        exp = FailureExperiment(
            "hierarchical",
            3,
            10,
            seed=7,
            warmup=25.0,
            bandwidth_window=10.0,
            observe=60.0,
            config=cfg,
        )
        out[("max_loss", max_loss)] = exp.run()
    return out


def test_ablation_heartbeat_tradeoff(one_shot):
    results = one_shot(run_sweep)

    rows = []
    for period in PERIODS:
        res = results[("period", period)]
        bdt = res.bandwidth.aggregate_rate * res.detection
        rows.append(
            (
                f"{period:.1f}",
                f"{res.bandwidth.aggregate_rate / 1e3:.1f}",
                f"{res.detection:.2f}",
                f"{bdt / 1e3:.0f}",
            )
        )
    print_table(
        "Ablation: heartbeat period (max_loss=5, 30 nodes)",
        ["period (s)", "bandwidth KB/s", "detect (s)", "BDT (KB)"],
        rows,
    )
    rows = []
    for max_loss in MAX_LOSSES:
        res = results[("max_loss", max_loss)]
        rows.append(
            (
                max_loss,
                f"{res.bandwidth.aggregate_rate / 1e3:.1f}",
                f"{res.detection:.2f}",
            )
        )
    print_table(
        "Ablation: max tolerated losses (period=1 s, 30 nodes)",
        ["max_loss", "bandwidth KB/s", "detect (s)"],
        rows,
    )

    # Faster heartbeats: proportionally faster detection, more bandwidth.
    d05 = results[("period", 0.5)]
    d20 = results[("period", 2.0)]
    assert d05.detection < d20.detection / 2.5
    assert d05.bandwidth.aggregate_rate > 3 * d20.bandwidth.aggregate_rate

    # BDT is roughly invariant under the frequency knob (within 2x).
    bdts = [
        results[("period", p)].bandwidth.aggregate_rate * results[("period", p)].detection
        for p in PERIODS
    ]
    assert max(bdts) / min(bdts) < 2.0

    # max_loss shifts detection linearly at ~constant bandwidth.
    b3 = results[("max_loss", 3)]
    b8 = results[("max_loss", 8)]
    assert 3.0 <= b3.detection <= 4.5
    assert 8.0 <= b8.detection <= 9.5
    assert b8.bandwidth.aggregate_rate == pytest.approx(
        b3.bandwidth.aggregate_rate, rel=0.15
    )
