"""Protocol hot-path benchmark: deadline heaps, interned heartbeats, views.

Companion to ``bench_perf_engine.py`` one layer up the stack: where that
script measures the *delivery engine* (multicast fan-out plans), this one
measures the *protocol engine* — what each node does per heartbeat period
once the hierarchy has formed.  The PR under test replaces per-period
full-directory purge scans with a lazy-deletion deadline heap, interns
unchanged heartbeat payloads on both the send and receive side, and caches
directory views behind a version counter.

The measurement is a steady-state A/B in one process: build the same
hierarchical cluster twice (same topology, same seed), once with
``use_fast_path=True`` and once with ``False``, let the hierarchy form
off-timer, then time a window of quiet steady-state simulated seconds.
``speedup`` (baseline wall / fast wall) is the acceptance metric; the
committed ``BENCH_protocol_hotpath.json`` records it so CI can detect
regressions with ``--check`` (ratio-based, hence machine-independent).

Usage::

    PYTHONPATH=src python benchmarks/bench_protocol_hotpath.py          # full
    PYTHONPATH=src python benchmarks/bench_protocol_hotpath.py --quick  # CI
    PYTHONPATH=src python benchmarks/bench_protocol_hotpath.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics.experiment import make_scheme_cluster  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_protocol_hotpath.json"

#: Fraction of the reference speedup the current run must retain in
#: ``--check`` mode (a >30% drop in fast-vs-legacy ratio fails CI).
CHECK_TOLERANCE = 0.70


def bench_steady_state(
    networks: int, hosts_per_network: int, warmup: float, window: float
) -> dict:
    """Steady-state wall-clock, fast path vs legacy, same process.

    The warmup (hierarchy formation, elections, first syncs) runs
    off-timer; the timed region is pure steady state — every node sends
    one unchanged heartbeat per period per channel and runs one failure
    check, which is exactly the work the hot-path engine targets.
    """
    results: dict = {
        "nodes": networks * hosts_per_network,
        "warmup_s": warmup,
        "window_s": window,
    }
    for mode, fast in (("fast", True), ("baseline", False)):
        net, _hosts, _nodes = make_scheme_cluster(
            "hierarchical",
            networks,
            hosts_per_network,
            seed=47,
            use_fast_path=fast,
        )
        net.run(until=warmup)
        before = net.sim.events_executed
        t0 = time.perf_counter()
        net.run(until=warmup + window)
        wall = time.perf_counter() - t0
        events = net.sim.events_executed - before
        results[mode] = {
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_sec": round(events / wall),
            "sim_rate": round(window / wall, 2),
        }
    results["speedup"] = round(
        results["baseline"]["wall_s"] / results["fast"]["wall_s"], 2
    )
    return results


def run_check(report: dict, reference_path: Path) -> int:
    """Compare this quick run's speedup against the committed reference."""
    if not reference_path.exists():
        print(f"check: no reference at {reference_path}; skipping", file=sys.stderr)
        return 0
    reference = json.loads(reference_path.read_text())
    ref = reference.get("quick_reference", {}).get("speedup")
    if ref is None:
        print("check: reference lacks quick_reference.speedup; skipping", file=sys.stderr)
        return 0
    current = report["steady_state"]["quick"]["speedup"]
    floor = ref * CHECK_TOLERANCE
    verdict = "OK" if current >= floor else "REGRESSION"
    print(
        f"check: speedup {current}x vs reference {ref}x "
        f"(floor {floor:.2f}x) -> {verdict}"
    )
    return 0 if current >= floor else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedup against the committed JSON; nonzero exit on regression",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    if args.quick:
        report = {
            "quick": True,
            "steady_state": {
                "quick": bench_steady_state(5, 20, warmup=15.0, window=10.0),
            },
        }
    else:
        report = {
            "quick": False,
            "steady_state": {
                "quick": bench_steady_state(5, 20, warmup=15.0, window=10.0),
                "400": bench_steady_state(20, 20, warmup=15.0, window=30.0),
            },
            # The quick configuration's speedup doubles as the CI reference
            # so --check compares like against like on any machine.
            "quick_reference": None,  # filled below
        }

    if not args.quick:
        report["quick_reference"] = {
            "speedup": report["steady_state"]["quick"]["speedup"],
            "config": "5x20 nodes, 10 sim-s window",
        }

    if args.check:
        rc = run_check(report, DEFAULT_OUT)
        print(json.dumps(report["steady_state"]["quick"], indent=2))
        return rc

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    for name, r in report["steady_state"].items():
        print(f"steady-state {name} ({r['nodes']} nodes): speedup {r['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
