"""Figure 2 — "All-to-all approach is not scalable."

The paper varies the number of emulated heartbeat senders on one dual
P-III machine and plots (a) CPU load and (b) received multicast packets
per second against cluster size up to 4000 nodes.

Reproduction: the per-packet cost model (calibrated to the testbed's
endpoints) generates both panels for the full 0-4000 range, and a set of
actual all-to-all simulations at small sizes validates that the simulated
packet arrival rate matches the model's linear prediction.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.analysis import AllToAllOverheadModel
from repro.metrics import make_scheme_cluster

SIZES = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000]
SIM_SIZES = [20, 40, 80]


def simulate_packet_rates(sizes):
    """Measured heartbeats/s received per node in real all-to-all runs."""
    rates = {}
    for n in sizes:
        net, hosts, nodes = make_scheme_cluster("all-to-all", 1, n, seed=1)
        net.run(until=10.0)
        net.meter.reset()
        net.run(until=20.0)
        rates[n] = net.meter.packet_rate(hosts[0], "rx", duration=10.0)
    return rates


def test_fig02_cpu_and_bandwidth_overhead(one_shot):
    model = AllToAllOverheadModel()
    measured = one_shot(simulate_packet_rates, SIM_SIZES)

    rows = []
    for n in SIZES:
        rows.append(
            (
                n,
                f"{model.cpu_percent(n):.2f}",
                f"{model.packets_per_second(n):.0f}",
                f"{model.bandwidth_bytes_per_second(n) / 1e6:.2f}",
                f"{100 * model.fast_ethernet_fraction(n):.1f}%",
            )
        )
    print_table(
        "Fig. 2: all-to-all overhead vs cluster size (1024 B heartbeats @ 1 Hz)",
        ["nodes", "CPU %", "rx pkts/s", "rx MB/s", "FastEth share"],
        rows,
    )
    print_table(
        "Fig. 2 validation: simulated vs model packet rate",
        ["nodes", "simulated pkts/s", "model pkts/s"],
        [
            (n, f"{measured[n]:.1f}", f"{model.packets_per_second(n):.1f}")
            for n in SIM_SIZES
        ],
    )

    # Shape: both panels are linear in n; paper endpoints hold.
    assert model.cpu_percent(4000) == pytest.approx(4.5, rel=0.05)
    assert model.packets_per_second(4000) == pytest.approx(4000, rel=0.01)
    # ~4 MB/s at 4000 nodes = 32% of a Fast Ethernet link.
    assert model.fast_ethernet_fraction(4000) == pytest.approx(0.32, rel=0.05)
    # The simulation reproduces the model's arrival rate (the linearity is
    # real, not assumed).
    for n in SIM_SIZES:
        assert measured[n] == pytest.approx(model.packets_per_second(n), rel=0.1)
