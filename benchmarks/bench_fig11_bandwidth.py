"""Figure 11 — Bandwidth consumption of the three schemes.

The paper measures aggregated incoming heartbeat bandwidth while scaling
from 20 to 100 nodes (1 to 5 networks of 20).  Expected shape: the
hierarchical scheme grows ~linearly and is lowest from 40 nodes on, while
all-to-all and gossip grow ~quadratically; at 20 nodes (a single group)
all three consume about the same.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.metrics import FailureExperiment, SCHEMES

NETWORKS = [1, 2, 3, 4, 5]
HOSTS_PER_NETWORK = 20


def run_sweep():
    results = {}
    for scheme in sorted(SCHEMES):
        for networks in NETWORKS:
            exp = FailureExperiment(
                scheme,
                networks,
                HOSTS_PER_NETWORK,
                seed=1,
                warmup=20.0,
                bandwidth_window=10.0,
                observe=0.0,
            )
            res = exp.run()
            results[(scheme, networks * HOSTS_PER_NETWORK)] = res.bandwidth
    return results


def test_fig11_bandwidth_consumption(one_shot):
    results = one_shot(run_sweep)

    sizes = [n * HOSTS_PER_NETWORK for n in NETWORKS]
    rows = []
    for n in sizes:
        rows.append(
            (
                n,
                *(
                    f"{results[(scheme, n)].aggregate_rate / 1e6:.3f}"
                    for scheme in sorted(SCHEMES)
                ),
            )
        )
    print_table(
        "Fig. 11: aggregated bandwidth (MB/s) vs number of nodes",
        ["nodes"] + sorted(SCHEMES),
        rows,
    )
    per_node_rows = [
        (
            n,
            *(
                f"{results[(scheme, n)].per_node_rate / 1e3:.2f}"
                for scheme in sorted(SCHEMES)
            ),
        )
        for n in sizes
    ]
    print_table(
        "Fig. 11 (derived): per-node bandwidth (KB/s)",
        ["nodes"] + sorted(SCHEMES),
        per_node_rows,
    )

    agg = {key: stats.aggregate_rate for key, stats in results.items()}

    # At 20 nodes all schemes are within ~2x of each other (single group).
    base = [agg[(s, 20)] for s in SCHEMES]
    assert max(base) / min(base) < 2.0

    # Hierarchical is the cheapest at every larger size.
    for n in sizes[1:]:
        assert agg[("hierarchical", n)] == min(agg[(s, n)] for s in SCHEMES)

    # Growth 20 -> 100: ~linear (about 5x) for hierarchical, ~quadratic
    # (about 25x) for the other two.
    hier_growth = agg[("hierarchical", 100)] / agg[("hierarchical", 20)]
    assert 3.5 < hier_growth < 8.0
    for scheme in ("all-to-all", "gossip"):
        growth = agg[(scheme, 100)] / agg[(scheme, 20)]
        assert growth > 15.0, f"{scheme} grew only {growth:.1f}x"

    # Per-node bandwidth stays ~constant for hierarchical, grows ~5x for
    # the others (the paper's scalability argument).
    hier_pn = results[("hierarchical", 100)].per_node_rate / results[
        ("hierarchical", 20)
    ].per_node_rate
    assert hier_pn < 1.6
    a2a_pn = results[("all-to-all", 100)].per_node_rate / results[
        ("all-to-all", 20)
    ].per_node_rate
    assert a2a_pn > 3.5
