"""Ablation — update piggyback depth under packet loss.

The paper piggybacks the last 3 updates on every update message "so that
the receiver can tolerate up to three consecutive packet losses"; deeper
gaps force a full directory sync poll.  This bench injects heavy loss
during a churn burst (nodes killed back to back, each producing update
traffic) and counts the sync polls each piggyback depth causes: depth 0
needs the most recovery syncs, the paper's depth 3 close to none, and
view correctness holds regardless (the sync poll is the safety net).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.core import HierarchicalConfig, HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy

DEPTHS = [0, 1, 3, 6]
LOSS = 0.15
NETWORKS, PER = 4, 10


def run_one(depth: int):
    cfg = HierarchicalConfig(piggyback_depth=depth)
    topo, hosts = build_switched_cluster(NETWORKS, PER)
    net = Network(topo, seed=8, loss_rate=LOSS)
    nodes = deploy(HierarchicalNode, net, hosts, config=cfg)
    net.run(until=25.0)
    # Churn burst: kill three non-leader nodes two seconds apart; every
    # kill produces remove-updates that the loss process now hits.
    victims = [hosts[5], hosts[15], hosts[25]]
    for i, victim in enumerate(victims):
        net.sim.call_at(25.0 + 2.0 * i, nodes[victim].stop)
        net.sim.call_at(25.0 + 2.0 * i, net.crash_host, victim)
    net.meter.reset()
    net.run(until=90.0)
    sync_bytes = net.meter.bytes_by_kind("sync_req") + net.meter.bytes_by_kind("sync_resp")
    survivors = [h for h in hosts if h not in victims]
    views_ok = all(
        nodes[h].view() == sorted(survivors) for h in survivors
    )
    return {
        "sync_bytes": sync_bytes,
        "views_ok": views_ok,
        "update_bytes": net.meter.bytes_by_kind("update"),
    }


def run_sweep():
    return {depth: run_one(depth) for depth in DEPTHS}


def test_ablation_piggyback_depth(one_shot):
    results = one_shot(run_sweep)

    print_table(
        f"Ablation: piggyback depth under {LOSS:.0%} loss (3-node churn burst)",
        ["depth", "sync traffic (KB)", "update traffic (KB)", "views exact"],
        [
            (
                d,
                f"{results[d]['sync_bytes'] / 1e3:.1f}",
                f"{results[d]['update_bytes'] / 1e3:.1f}",
                results[d]["views_ok"],
            )
            for d in DEPTHS
        ],
    )

    # Correctness never depends on the piggyback depth — the sync poll is
    # the backstop.
    for depth in DEPTHS:
        assert results[depth]["views_ok"], f"depth {depth} left stale views"

    # No piggyback needs the most sync-poll recovery traffic; the paper's
    # depth 3 needs materially less.
    assert results[0]["sync_bytes"] > results[3]["sync_bytes"]
    # Deeper piggybacking makes update packets bigger.
    assert results[6]["update_bytes"] >= results[0]["update_bytes"]
