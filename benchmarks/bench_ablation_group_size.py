"""Ablation — membership group size *g*.

The paper fixes 20 nodes per network/channel.  This ablation holds the
cluster at 96 nodes and varies the group size (topology networks) to show
the bandwidth trade-off the Section 4 analysis predicts: aggregate
bandwidth ~ O(s f g n), so halving the group size halves steady-state
traffic, while detection time is unaffected (it only depends on
``max_loss`` and the heartbeat period).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.analysis import AnalysisParams, HierarchicalModel
from repro.metrics import FailureExperiment

TOTAL = 96
SHAPES = [(12, 8), (6, 16), (3, 32)]  # (networks, hosts per network)


def run_sweep():
    out = {}
    for networks, per in SHAPES:
        exp = FailureExperiment(
            "hierarchical",
            networks,
            per,
            seed=6,
            warmup=20.0,
            bandwidth_window=10.0,
            observe=40.0,
        )
        out[per] = exp.run()
    return out


def test_ablation_group_size(one_shot):
    results = one_shot(run_sweep)

    rows = []
    for networks, per in SHAPES:
        res = results[per]
        model = HierarchicalModel(AnalysisParams(group_size=per))
        rows.append(
            (
                per,
                networks,
                f"{res.bandwidth.aggregate_rate / 1e3:.1f}",
                f"{model.aggregate_bandwidth(TOTAL) / 1e3:.1f}",
                f"{res.detection:.2f}",
                f"{res.convergence:.2f}",
            )
        )
    print_table(
        f"Ablation: group size at n={TOTAL} (hierarchical)",
        ["group size", "groups", "measured KB/s", "model KB/s", "detect (s)", "converge (s)"],
        rows,
    )

    # Bandwidth grows ~linearly with group size at fixed n.
    ratio = results[32].bandwidth.aggregate_rate / results[8].bandwidth.aggregate_rate
    assert 2.5 < ratio < 5.5  # ideal (g-1) scaling gives 31/7 = 4.4

    # Detection and convergence are group-size independent.
    for per in (8, 16, 32):
        assert 5.0 <= results[per].detection <= 7.0
        assert results[per].convergence - results[per].detection < 2.0

    # The analytical model predicts the measured bandwidth within 30%.
    for networks, per in SHAPES:
        model = HierarchicalModel(AnalysisParams(group_size=per))
        assert results[per].bandwidth.aggregate_rate == pytest.approx(
            model.aggregate_bandwidth(TOTAL), rel=0.3
        )
