"""The (detector x scheme) BDT/BCT matrix under chaos.

Sweeps :class:`repro.chaos.lab.DetectorMatrixLab` — every failure-
detection strategy (MAX_LOSS counter, SWIM, φ-accrual) crossed with
every dissemination scheme (hierarchical, all-to-all, gossip) on the
seeded chaos fabric (base loss everywhere, a directionally degraded
inter-network link, one mid-run crash) — and records, per pair,

* empirical detection / convergence times for the crash and the
  steady-state aggregate bandwidth, multiplied into the paper's BDT/BCT
  figures of merit, next to the closed-form model numbers,
* the strategy's advertised detection bound and the gate derived from
  it (twice the bound plus slack),
* the invariant checker's verdict with the per-detector false-failure
  budget.

``--check`` is the CI gate: every pair must run green under the
invariants, detect the crash within its gate, and stay inside its
false-failure budget.  Count-based, so the gate is independent of
runner speed.

Usage::

    PYTHONPATH=src python benchmarks/bench_detectors.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_detectors.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_detectors.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chaos.lab import DetectorMatrixLab  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_detectors.json"

FULL_SEEDS = [7, 23]
QUICK_SEEDS = [7]


def make_lab(seed: int, quick: bool) -> DetectorMatrixLab:
    if quick:
        return DetectorMatrixLab(
            networks=3,
            hosts_per_network=4,
            seed=seed,
            warmup=12.0,
            bandwidth_window=6.0,
            observe=25.0,
            chaos_len=10.0,
        )
    return DetectorMatrixLab(seed=seed)


def sweep(seeds: list[int], quick: bool) -> dict:
    rows: list[dict] = []
    for seed in seeds:
        lab = make_lab(seed, quick)
        rows.extend(DetectorMatrixLab.to_rows(lab.run()))

    by_detector: dict[str, dict] = {}
    for row in rows:
        agg = by_detector.setdefault(
            row["detector"],
            {"pairs": 0, "ok": 0, "false_failures": 0, "worst_detection_s": None},
        )
        agg["pairs"] += 1
        agg["ok"] += int(row["ok"])
        agg["false_failures"] += row["false_failures"]
        det = row["detection"]
        if det is not None:
            worst = agg["worst_detection_s"]
            agg["worst_detection_s"] = det if worst is None else max(worst, det)

    return {
        "seeds": seeds,
        "runs": rows,
        "summary": {
            "all_ok": all(r["ok"] for r in rows),
            "pairs": len(rows),
            "by_detector": by_detector,
        },
    }


def run_check(report: dict) -> int:
    """CI gate: every (detector, scheme, seed) pair green."""
    failures = []
    for r in report["runs"]:
        tag = f"{r['detector']}/{r['scheme']}@seed{r['seed']}"
        if r["violations"]:
            failures.append(f"{tag}: violations {r['violations']}")
        if r["detection"] is None:
            failures.append(f"{tag}: crash never detected")
        elif r["detection"] > r["detection_gate_s"]:
            failures.append(
                f"{tag}: detection {r['detection']:.2f}s "
                f"> gate {r['detection_gate_s']:.2f}s"
            )
        if r["convergence"] is None:
            failures.append(f"{tag}: views never converged")
        if r["false_failures"] > r["false_failure_bound"]:
            failures.append(
                f"{tag}: {r['false_failures']} false failures "
                f"(budget {r['false_failure_bound']})"
            )
    for line in failures:
        print(f"check: FAIL {line}", file=sys.stderr)
    verdict = "REGRESSION" if failures else "OK"
    greens = sum(r["ok"] for r in report["runs"])
    print(f"check: {len(report['runs'])} pairs, {greens} green -> {verdict}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller fabric for CI smoke runs"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="nonzero exit unless every pair runs green under the invariants",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    args = parser.parse_args(argv)

    seeds = QUICK_SEEDS if args.quick else FULL_SEEDS
    report = {"quick": args.quick, **sweep(seeds, args.quick)}

    if args.check:
        print(json.dumps(report["summary"], indent=2))
        return run_check(report)

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["summary"], indent=2))
    for r in report["runs"]:
        det = f"{r['detection']:.2f}s" if r["detection"] is not None else "never"
        conv = f"{r['convergence']:.2f}s" if r["convergence"] is not None else "never"
        print(
            f"{r['detector']:12s} {r['scheme']:13s} seed={r['seed']} "
            f"detection={det} convergence={conv} "
            f"bdt={r['bdt']:.0f} ok={r['ok']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
