"""Shared helpers for the figure-reproduction benchmarks.

Every ``bench_*`` module regenerates one table/figure from the paper's
evaluation: it runs the experiment under ``pytest-benchmark`` (so wall-time
regressions are tracked), prints the same rows/series the paper plots, and
asserts the qualitative *shape* (who wins, by roughly what factor, where
crossovers fall) — absolute values come from a simulator, not the authors'
2005 testbed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Render one figure's data as an aligned text table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture
def one_shot(benchmark):
    """Run an expensive simulation exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
