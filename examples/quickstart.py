#!/usr/bin/env python
"""Quickstart: a 40-node cluster with the hierarchical membership service.

Builds the paper's testbed shape (2 networks x 20 hosts behind a router),
runs one membership daemon per host through the ``MService`` API, looks
services up with ``MClient``, then kills a node and watches the directory
converge.

Run:  python examples/quickstart.py
"""

from repro.core import MClient, MService
from repro.net import Network
from repro.net.builders import build_switched_cluster

CONFIG = """
*SYSTEM
SHM_KEY = 999
MAX_TTL = 4
MCAST_ADDR = 239.255.0.2
MCAST_PORT = 10050
MCAST_FREQ = 1
MAX_LOSS = 5

*SERVICE
[HTTP]
    PARTITION = 0
    Port = 8080
"""


def main() -> None:
    # 1. A topology: two L2 networks of 20 hosts joined by one router.
    topo, hosts = build_switched_cluster(2, 20)
    net = Network(topo, seed=42)

    # 2. One membership daemon per host, configured from the Fig. 7 file.
    daemons = {}
    for host in hosts:
        ms = MService(net, host, configuration=CONFIG)
        ms.run()
        daemons[host] = ms

    # The index service lives on the first three hosts of network 1.
    for i, host in enumerate(hosts[20:23]):
        daemons[host].register_service("index", str(i))

    # 3. Let the protocol form its hierarchy (group leaders elect at ~2.5 s,
    #    the tree completes and views converge within ~10 s).
    net.run(until=12.0)

    client = MClient(net, hosts[0], shm_key=999)
    print(f"cluster view from {hosts[0]}: {len(client.members())} nodes")
    machines = client.lookup_service("index", "0-2")
    print("index providers:", [m.node_id for m in machines])
    print("one provider's attributes:", dict(list(machines[0].attrs.items())[:3]), "...")

    # 4. Kill an index server; the failure is detected after 5 missed
    #    heartbeats and the removal floods the tree within milliseconds.
    victim = hosts[21]
    print(f"\nkilling {victim} at t={net.now:.0f}s ...")
    daemons[victim].stop()
    net.crash_host(victim)
    net.run(until=net.now + 8.0)

    downs = net.trace.records(kind="member_down")
    detect = min(r.time for r in downs if r.data["target"] == victim)
    converge = max(r.time for r in downs if r.data["target"] == victim)
    print(f"detected after {detect - 12.0:.2f}s, all views converged {converge - detect:.4f}s later")
    print("index providers now:", [m.node_id for m in client.lookup_service("index")])
    assert victim not in client.members()


if __name__ == "__main__":
    main()
