#!/usr/bin/env python
"""A single-data-center search engine on top of the membership service.

Reproduces the paper's Fig. 1 workflow: protocol gateway -> partitioned
index servers -> partitioned document servers, with replica selection by
random polling over the membership directory.  Shows the latency effect of
load: a burst of queries spreads across replicas thanks to the load polls.

Run:  python examples/search_cluster.py
"""

from repro.apps.search import (
    DOC_SERVICE,
    INDEX_SERVICE,
    QueryEngine,
    SearchCluster,
    SearchWorkload,
)
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def main() -> None:
    workload = SearchWorkload(index_partitions=2, doc_partitions=3, docs_per_query=2)
    topo, hosts = build_switched_cluster(2, 10)
    net = Network(topo, seed=7)
    nodes = deploy(HierarchicalNode, net, hosts)

    # 4 index replicas (2 partitions x 2) and 6 doc replicas (3 x 2).
    cluster = SearchCluster(
        net,
        nodes,
        index_hosts=hosts[1:5],
        doc_hosts=hosts[5:11],
        workload=workload,
    )
    cluster.deploy()
    gateway = QueryEngine(net, hosts[-1], nodes[hosts[-1]], workload)

    net.run(until=12.0)  # membership warm-up

    # A single query.
    results = []
    gateway.query("membership protocols").\
        _add_waiter(results.append)
    net.run(until=net.now + 1.0)
    res = results[0]
    print(f"query ok={res.ok} latency={1000 * res.latency:.1f}ms")
    for doc_id, desc in sorted(res.value["descriptions"].items())[:3]:
        print(f"  {doc_id}: {desc}")

    # A burst: 50 queries at once — random polling spreads them over the
    # replicas, so p99 stays close to the service time instead of queueing
    # on one server.
    burst = []
    for i in range(50):
        gateway.query(f"burst query {i}")._add_waiter(burst.append)
    net.run(until=net.now + 5.0)
    lat = sorted(r.latency for r in burst)
    print(f"\nburst of 50: ok={sum(r.ok for r in burst)}/50")
    print(
        f"latency p50={1000 * lat[25]:.1f}ms  p99={1000 * lat[-1]:.1f}ms "
        f"(index svc time {1000 * workload.index_service_time:.0f}ms)"
    )

    # Who served what?  The provider stats show the load balancing.
    served = {h: p.served for h, p in cluster.providers.items()}
    print("requests served per backend:", dict(sorted(served.items())))


if __name__ == "__main__":
    main()
