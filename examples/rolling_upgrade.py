#!/usr/bin/env python
"""Zero-downtime rolling upgrade using graceful departure.

An operator restarts every backend of a replicated service one at a time.
With the graceful ``leave`` extension each departure is announced through
the membership tree instantly (no ``MAX_LOSS`` x period detection gap), so
consumers never dispatch to a node that is going down and the request
stream completes without a single failure.

Run:  python examples/rolling_upgrade.py
"""

from repro.cluster import ConsumerModule, ProviderModule, ServiceSpec
from repro.cluster.gateway import Gateway
from repro.core import HierarchicalNode
from repro.net import Network
from repro.net.builders import build_switched_cluster
from repro.protocols import deploy


def main() -> None:
    topo, hosts = build_switched_cluster(2, 6)
    net = Network(topo, seed=19)
    nodes = deploy(HierarchicalNode, net, hosts)

    backends = hosts[1:5]  # 4 replicas of one service
    providers = {}
    for h in backends:
        p = ProviderModule(net, h)
        p.register(ServiceSpec.make("api", "0", service_time=0.01))
        p.start()
        providers[h] = p
        nodes[h].register_service(ServiceSpec.make("api", "0"))

    gateway_host = hosts[-1]
    consumer = ConsumerModule(net, gateway_host, nodes[gateway_host].directory)
    consumer.start()
    gw = Gateway(
        net.sim,
        executor=consumer.invoke,
        workload=lambda seq: {"service": "api", "partition": 0, "data": seq},
        rate=20.0,
    )

    net.run(until=12.0)  # membership warm-up
    gw.start()

    # Roll through the fleet: leave -> "upgrade" for 5 s -> rejoin.
    t = 15.0
    for h in backends:
        net.sim.call_at(t, nodes[h].leave)
        net.sim.call_at(t + 0.1, providers[h].stop)

        def rejoin(host=h):
            providers[host].start()
            nodes[host].start()
            nodes[host].register_service(ServiceSpec.make("api", "0"))

        net.sim.call_at(t + 5.0, rejoin)
        t += 8.0

    net.run(until=t + 15.0)
    gw.stop()

    print(f"requests issued    : {gw.stats.issued}")
    print(f"requests completed : {gw.stats.completed}")
    print(f"requests failed    : {gw.stats.failed}")
    print(f"mean response time : {1000 * gw.stats.mean_response_time():.1f} ms")
    served = {h: providers[h].served for h in backends}
    print(f"served per backend : {served}")
    assert gw.stats.failed == 0, "a graceful roll must not drop requests"
    print("\nevery backend was upgraded, zero requests failed — the leave "
          "announcement removes a node from every directory in milliseconds.")


if __name__ == "__main__":
    main()
