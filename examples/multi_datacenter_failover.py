#!/usr/bin/env python
"""Multi-data-center failover through membership proxies (paper Fig. 14).

Two data centers, 90 ms apart, each running the full search stack and a
pair of membership proxies sharing an external IP.  The document-retrieval
tier of data center A dies mid-run; queries transparently fail over to
data center B and come back when the service recovers.

Run:  python examples/multi_datacenter_failover.py
"""

from repro.apps import SearchDeployment
from repro.cluster.gateway import Gateway

WARMUP = 15.0


def main() -> None:
    dep = SearchDeployment(networks=3, hosts_per_network=6, seed=11)
    net = dep.network
    dep.warm_up(WARMUP)

    leaders = [(p.dc, p.host) for p in dep.proxies if p.is_leader]
    print("proxy leaders:", leaders)
    print("external addresses:", {dc: net.transport.address_owner(vip) for dc, vip in dep.VIP.items()})

    engine = dep.engines["dcA"]
    gw = Gateway(
        net.sim,
        executor=lambda query: engine.query(query),
        workload=lambda seq: {"query": f"q{seq}"},
        rate=10.0,
    )
    gw.start()
    net.sim.call_at(WARMUP + 20.0, dep.fail_doc_service, "dcA")
    net.sim.call_at(WARMUP + 40.0, dep.recover_doc_service, "dcA")
    net.run(until=WARMUP + 60.0)
    gw.stop()

    rt = {int(s - WARMUP): v for s, v in gw.stats.response_time_series()}
    thr = {int(s - WARMUP): v for s, v in gw.stats.throughput_series()}
    print("\n sec | resp (ms) | throughput")
    print("-----+-----------+-----------")
    for sec in range(0, 60, 3):
        ms = f"{1000 * rt[sec]:9.1f}" if sec in rt else "        -"
        print(f" {sec:3d} | {ms} | {thr.get(sec, 0):3d}")
    print(
        f"\nno requests lost: issued={gw.stats.issued} "
        f"completed={gw.stats.completed} failed={gw.stats.failed}"
    )
    print(
        "during 20-40s the doc tier of dcA is dead; responses are served by "
        "dcB via the proxies at WAN latency (>200 ms), exactly the paper's "
        "Fig. 14 behaviour."
    )


if __name__ == "__main__":
    main()
