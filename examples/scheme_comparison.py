#!/usr/bin/env python
"""Head-to-head comparison of the three membership schemes (mini Figs. 11-13).

Runs all-to-all, gossip and the hierarchical protocol on the same cluster
and failure scenario, printing bandwidth, detection and convergence side by
side.  A compressed version of the benchmarks in ``benchmarks/``.

Run:  python examples/scheme_comparison.py [nodes-per-network] [networks]
"""

import sys

from repro.metrics import SCHEMES, FailureExperiment


def main() -> None:
    per = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    networks = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    n = per * networks
    print(f"cluster: {networks} networks x {per} hosts = {n} nodes")
    print(f"{'scheme':<14} {'bandwidth':>12} {'per-node':>10} {'detect':>8} {'converge':>9}")
    print("-" * 58)
    for scheme in sorted(SCHEMES):
        exp = FailureExperiment(
            scheme,
            networks,
            per,
            seed=1,
            warmup=25.0,
            bandwidth_window=10.0,
            observe=80.0,
        )
        res = exp.run()
        print(
            f"{scheme:<14} "
            f"{res.bandwidth.aggregate_rate / 1e3:>9.1f} KB/s "
            f"{res.bandwidth.per_node_rate / 1e3:>7.2f} KB/s "
            f"{res.detection:>7.2f}s "
            f"{res.convergence:>8.2f}s"
        )
    print(
        "\nhierarchical: lowest bandwidth at equal (constant) detection and "
        "convergence — the paper's conclusion."
    )


if __name__ == "__main__":
    main()
