#!/usr/bin/env python
"""Watch the topology-adaptive group formation on three network shapes.

1. The testbed shape: networks behind one router (two-level tree).
2. A deep router tree: the hierarchy grows one level per TTL step.
3. The paper's Fig. 4 layout, where TTL counts are *not* transitive and
   same-level groups overlap — the election still produces a consistent
   hierarchy ("a group leader cannot see other leaders at the same level").

Run:  python examples/topology_formation.py
"""

from repro.core import HierarchicalConfig, HierarchicalNode
from repro.net import Network
from repro.net.builders import (
    build_overlap_topology,
    build_router_tree,
    build_switched_cluster,
)
from repro.protocols import deploy


def show(title, net, nodes, warmup):
    net.run(until=warmup)
    print(f"\n=== {title} ===")
    for host in sorted(nodes):
        node = nodes[host]
        marks = []
        for level in node.levels():
            flag = "LEADER" if node.is_leader(level) else f"-> {node.leader_of(level)}"
            marks.append(f"L{level}({flag})")
        print(f"  {host:<16} view={len(node.view()):>3}  {'  '.join(marks)}")


def main() -> None:
    # --- 1. switched cluster -------------------------------------------
    topo, hosts = build_switched_cluster(3, 4)
    net = Network(topo, seed=1)
    nodes = deploy(HierarchicalNode, net, hosts)
    show("3 networks x 4 hosts (testbed shape)", net, nodes, warmup=12.0)

    # --- 2. deep router tree -------------------------------------------
    topo, hosts = build_router_tree(depth=3, branching=2, hosts_per_leaf=2)
    net = Network(topo, seed=2)
    nodes = deploy(HierarchicalNode, net, hosts, config=HierarchicalConfig(max_ttl=7))
    show("router tree depth 3 (TTL distances 1/4/6)", net, nodes, warmup=40.0)

    # --- 3. Fig. 4 overlap ---------------------------------------------
    topo, hosts = build_overlap_topology(hosts_per_group=2)
    net = Network(topo, seed=3)
    nodes = deploy(HierarchicalNode, net, hosts, config=HierarchicalConfig(max_ttl=4))
    show("Fig. 4 overlap (A reaches B,C at TTL 3; B<->C need TTL 4)", net, nodes, warmup=25.0)
    a = "dc0-gA-h0"
    print(
        f"\n  note: {a} leads the overlapped level-2/3 groups; gB-h0 and "
        "gC-h0 are suppressed there because they can see a leader, even "
        "though they cannot see each other — the paper's 'two possibilities' "
        "resolved by the suppression rule."
    )


if __name__ == "__main__":
    main()
