#!/usr/bin/env python
"""Boot a real membership cluster on localhost: N daemons + the relay.

Each daemon is a separate OS process running ``python -m repro.cli
daemon`` — the same :class:`~repro.core.HierarchicalNode` protocol stack
as the simulator, executed over asyncio/UDP with wire-serialized
datagrams.  The channel relay provides TTL-scoped multicast between the
configured LAN segments.

Example::

    PYTHONPATH=src python examples/launch_cluster.py --nodes 8 --segments 2

The script waits for full convergence (every daemon's ``/view`` HTTP
endpoint reports all N members), prints how long it took, then — unless
``--keep-running`` — kills one daemon, measures detection/reconvergence,
and shuts the cluster down.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from typing import Dict, List, Optional


def free_ports(count: int) -> List[int]:
    """Reserve ``count`` distinct free localhost ports."""
    socks = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind(("127.0.0.1", 0))
            socks.append(sock)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def build_spec(
    num_nodes: int,
    segments: int,
    config: Optional[Dict[str, object]] = None,
    relay_replicas: int = 0,
) -> Dict[str, object]:
    """A localhost ClusterSpec dict: nodes round-robined over segments.

    ``relay_replicas`` standby relay endpoints are listed after the
    primary; daemons fail over to them when the active relay dies.
    """
    relay_count = 1 + relay_replicas
    ports = free_ports(relay_count + 2 * num_nodes)
    nodes: Dict[str, object] = {}
    for i in range(num_nodes):
        nodes[f"n{i}"] = {
            "host": "127.0.0.1",
            "port": ports[relay_count + i],
            "http_port": ports[relay_count + num_nodes + i],
            "segment": f"s{i % segments}",
        }
    return {
        "relay": {"host": "127.0.0.1", "port": ports[0]},
        "relay_replicas": [
            {"host": "127.0.0.1", "port": ports[1 + i]} for i in range(relay_replicas)
        ],
        "routers_between_segments": 1,
        "config": dict(config or {}),
        "nodes": nodes,
    }


class LocalCluster:
    """Relay + N daemon subprocesses over one spec file.

    Context manager; also used directly by the localhost network test.
    """

    def __init__(self, spec: Dict[str, object], python: str = sys.executable) -> None:
        self.spec = spec
        self.python = python
        self.spec_path = ""
        #: Relay processes by replica index (0 = primary); dead ones are
        #: removed by kill_relay.
        self.relay_procs: Dict[int, subprocess.Popen] = {}
        self.daemons: Dict[str, subprocess.Popen] = {}
        self._env = {**os.environ}
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        self._env["PYTHONPATH"] = src + os.pathsep + self._env.get("PYTHONPATH", "")

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "LocalCluster":
        fd, self.spec_path = tempfile.mkstemp(suffix=".json", prefix="cluster-")
        with os.fdopen(fd, "w") as fh:
            json.dump(self.spec, fh)
        relay_count = 1 + len(self.spec.get("relay_replicas", []))  # type: ignore[union-attr]
        for replica in range(relay_count):
            self.relay_procs[replica] = self._spawn(
                [self.python, "-m", "repro.runtime.relay",
                 "--spec", self.spec_path, "--replica", str(replica)]
            )
        for proc in self.relay_procs.values():
            self._wait_line(proc, "relay ready")
        for node_id in self.spec["nodes"]:  # type: ignore[attr-defined]
            self.daemons[node_id] = self._spawn(
                [self.python, "-m", "repro.cli", "daemon",
                 "--spec", self.spec_path, "--node", node_id]
            )
        for node_id, proc in self.daemons.items():
            self._wait_line(proc, f"daemon {node_id} ready")
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        procs = list(self.daemons.values()) + list(self.relay_procs.values())
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        if self.spec_path and os.path.exists(self.spec_path):
            os.unlink(self.spec_path)

    def _spawn(self, cmd: List[str]) -> subprocess.Popen:
        return subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=self._env,
        )

    @staticmethod
    def _wait_line(proc: subprocess.Popen, needle: str, timeout: float = 20.0) -> None:
        deadline = time.monotonic() + timeout
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(f"process exited rc={proc.returncode} waiting for {needle!r}")
            line = proc.stdout.readline()
            if needle in line:
                return
        raise TimeoutError(f"timed out waiting for {needle!r}")

    # -- observation ---------------------------------------------------
    def http_port(self, node_id: str) -> int:
        return int(self.spec["nodes"][node_id]["http_port"])  # type: ignore[index]

    def view(self, node_id: str, timeout: float = 2.0) -> Optional[dict]:
        url = f"http://127.0.0.1:{self.http_port(node_id)}/view"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except OSError:
            return None

    def metrics(self, node_id: str, timeout: float = 2.0) -> Optional[str]:
        url = f"http://127.0.0.1:{self.http_port(node_id)}/metrics"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as resp:
                return resp.read().decode("utf-8")
        except OSError:
            return None

    def wait_for_views(
        self,
        expected: int,
        deadline: float,
        node_ids: Optional[List[str]] = None,
        poll: float = 0.5,
    ) -> float:
        """Block until every polled daemon reports ``expected`` members.

        Returns the elapsed seconds; raises ``TimeoutError`` with the
        last seen view sizes otherwise.
        """
        targets = list(node_ids) if node_ids is not None else list(self.daemons)
        start = time.monotonic()
        sizes: Dict[str, object] = {}
        while time.monotonic() - start < deadline:
            sizes = {}
            for node_id in targets:
                view = self.view(node_id)
                sizes[node_id] = view["count"] if view else None
            if all(size == expected for size in sizes.values()):
                return time.monotonic() - start
            time.sleep(poll)
        raise TimeoutError(f"views never reached {expected}: {sizes}")

    def kill(self, node_id: str) -> None:
        """SIGKILL one daemon (an unannounced crash, not a graceful stop)."""
        proc = self.daemons.pop(node_id)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)

    def kill_relay(self, replica: int = 0) -> None:
        """SIGKILL one relay process (primary by default)."""
        proc = self.relay_procs.pop(replica)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=5)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--segments", type=int, default=2)
    parser.add_argument("--relay-replicas", type=int, default=0,
                        help="standby relay processes (daemons fail over to them)")
    parser.add_argument("--heartbeat-period", type=float, default=0.5)
    parser.add_argument("--deadline", type=float, default=60.0,
                        help="max seconds to wait for full convergence")
    parser.add_argument("--keep-running", action="store_true",
                        help="skip the kill experiment; run until Ctrl-C")
    args = parser.parse_args(argv)

    spec = build_spec(
        args.nodes,
        args.segments,
        config={"heartbeat_period": args.heartbeat_period},
        relay_replicas=args.relay_replicas,
    )
    with LocalCluster(spec) as cluster:
        print(f"booted relay + {args.nodes} daemons "
              f"({args.segments} segments, hb={args.heartbeat_period}s)")
        took = cluster.wait_for_views(args.nodes, args.deadline)
        print(f"converged: every daemon sees all {args.nodes} members "
              f"after {took:.1f}s")
        if args.keep_running:
            print("running until Ctrl-C; /view and /metrics are live:")
            for node_id in cluster.daemons:
                print(f"  n{node_id[1:]}: http://127.0.0.1:{cluster.http_port(node_id)}/view")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                return 0
        victim = sorted(cluster.daemons)[-1]
        print(f"killing {victim} (SIGKILL)...")
        cluster.kill(victim)
        took = cluster.wait_for_views(args.nodes - 1, args.deadline)
        print(f"reconverged: survivors purged {victim} after {took:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
