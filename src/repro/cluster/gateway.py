"""Protocol gateways: workload generation and per-second statistics.

A gateway models the paper's web-server / XML-gateway tier: an open-loop
stream of client requests arriving at a fixed rate, each executed through a
:class:`~repro.cluster.consumer.ConsumerModule` (or an app-specific
callable), with completion latency recorded into per-second buckets — the
exact shape of Fig. 14's response-time and throughput panels.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.process import Event

__all__ = ["Gateway", "RequestStats"]

#: ``workload(seq) -> request kwargs`` passed to the executor.
WorkloadFn = Callable[[int], Dict[str, Any]]
#: ``executor(**kwargs) -> Event`` resolving to an object with .ok/.latency.
ExecutorFn = Callable[..., Event]


@dataclass
class RequestStats:
    """Per-second aggregates of completed/failed requests."""

    issued: int = 0
    completed: int = 0
    failed: int = 0
    _by_second: Dict[int, List[float]] = field(default_factory=lambda: defaultdict(list))
    _failures_by_second: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, finish_time: float, ok: bool, latency: float) -> None:
        second = int(finish_time)
        if ok:
            self.completed += 1
            self._by_second[second].append(latency)
        else:
            self.failed += 1
            self._failures_by_second[second] += 1

    def throughput_series(self) -> List[Tuple[int, int]]:
        """(second, completed requests) pairs for every observed second."""
        seconds = set(self._by_second) | set(self._failures_by_second)
        return [(s, len(self._by_second.get(s, []))) for s in sorted(seconds)]

    def response_time_series(self) -> List[Tuple[int, float]]:
        """(second, mean latency of requests completing that second)."""
        return [
            (s, sum(lats) / len(lats))
            for s, lats in sorted(self._by_second.items())
            if lats
        ]

    def failure_series(self) -> List[Tuple[int, int]]:
        return sorted(self._failures_by_second.items())

    def mean_response_time(self, since: float = 0.0, until: float = float("inf")) -> float:
        lats = [
            lat
            for s, ls in self._by_second.items()
            for lat in ls
            if since <= s < until
        ]
        return sum(lats) / len(lats) if lats else 0.0

    def throughput(self, since: float, until: float) -> float:
        total = sum(
            len(ls) for s, ls in self._by_second.items() if since <= s < until
        )
        span = until - since
        return total / span if span > 0 else 0.0


class Gateway:
    """Open-loop request generator with fixed inter-arrival time.

    Parameters
    ----------
    sim:
        Simulation clock.
    executor:
        Called once per request with the workload's kwargs; must return an
        :class:`Event` whose value has ``ok`` and ``latency`` attributes
        (an :class:`~repro.cluster.consumer.InvocationResult` or the search
        app's query result).
    workload:
        Maps the request sequence number to executor kwargs.
    rate:
        Requests per second.
    jitter_rng:
        Optional stream; when given, inter-arrivals are exponential with
        the same mean (Poisson arrivals) instead of a fixed period.
    """

    def __init__(
        self,
        sim: Simulator,
        executor: ExecutorFn,
        workload: WorkloadFn,
        rate: float,
        jitter_rng: Optional[Any] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.executor = executor
        self.workload = workload
        self.rate = rate
        self.jitter_rng = jitter_rng
        self.stats = RequestStats()
        self._seq = 0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if self.jitter_rng is not None:
            gap = self.jitter_rng.expovariate(self.rate)
        else:
            gap = 1.0 / self.rate
        self.sim.call_after(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        seq = self._seq
        self._seq += 1
        self.stats.issued += 1
        kwargs = self.workload(seq)
        completion = self.executor(**kwargs)

        def on_done(result: Any) -> None:
            self.stats.record(self.sim.now, result.ok, result.latency)

        completion._add_waiter(on_done)
        self._schedule_next()
