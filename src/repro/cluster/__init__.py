"""Neptune-like clustering middleware substrate.

The paper's membership service lives inside the **Neptune** framework
(Shen et al., USITS'01): a functionally-symmetric middleware where every
node can *provide* services (server entities managing a data partition) and
*consume* services exported by others, addressed by the location-transparent
name ``(service name, partition ID)``.

This package implements the pieces of that framework the membership
protocols plug into:

* :mod:`repro.cluster.directory` — the node-local **yellow-page directory**
  (soft-state node records, regex service/partition lookup);
* :mod:`repro.cluster.machine` — per-node machine configuration (the
  ``/proc``-derived attributes the Announcer thread publishes);
* :mod:`repro.cluster.service` — service specs, partition arithmetic;
* :mod:`repro.cluster.provider` / :mod:`repro.cluster.consumer` — request
  dispatch and location-transparent invocation;
* :mod:`repro.cluster.loadbalance` — random and random-polling policies
  (the paper balances replicas with random polling [20]);
* :mod:`repro.cluster.gateway` — protocol-gateway workload generators;
* :mod:`repro.cluster.failures` — scripted failure scenarios.
"""

from repro.cluster.directory import Directory, NodeRecord, parse_partitions
from repro.cluster.machine import MachineInfo
from repro.cluster.service import ServiceSpec
from repro.cluster.provider import ProviderModule, ServiceHandler
from repro.cluster.consumer import ConsumerModule, InvocationResult
from repro.cluster.loadbalance import LoadBalancer, RandomChoice, RandomPolling
from repro.cluster.loadinfo import LoadAwareBalancer, LoadReporter, LoadTracker
from repro.cluster.gateway import Gateway, RequestStats
from repro.cluster.failures import FailureSchedule

__all__ = [
    "Directory",
    "NodeRecord",
    "parse_partitions",
    "MachineInfo",
    "ServiceSpec",
    "ProviderModule",
    "ServiceHandler",
    "ConsumerModule",
    "InvocationResult",
    "LoadBalancer",
    "RandomChoice",
    "RandomPolling",
    "LoadAwareBalancer",
    "LoadReporter",
    "LoadTracker",
    "Gateway",
    "RequestStats",
    "FailureSchedule",
]
