"""Replica-selection policies.

The paper routes each request "to an appropriate node based on the service
availability and runtime workload" using the random-polling technique of
Shen et al. [20]: sample *d* random replicas, poll their current load, send
the request to the least-loaded responder.  Because load travels in the
poll replies, the membership protocol itself never carries load state.

:class:`RandomChoice` (uniform pick, zero poll traffic) is the degenerate
``d = 1`` policy and is what latency-insensitive tests use.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

__all__ = ["LoadBalancer", "RandomChoice", "RandomPolling"]


class LoadBalancer(ABC):
    """Strategy interface used by :class:`~repro.cluster.consumer.ConsumerModule`."""

    #: When True, the consumer performs a load-poll round before dispatch.
    polls: bool = False

    @abstractmethod
    def choose(self, candidates: Sequence[str], rng: random.Random) -> str:
        """Pick the dispatch target from non-empty ``candidates``."""

    def poll_targets(self, candidates: Sequence[str], rng: random.Random) -> List[str]:
        """Subset of candidates to poll (only used when ``polls``)."""
        return []

    def pick_from_loads(
        self, loads: Dict[str, int], candidates: Sequence[str], rng: random.Random
    ) -> str:
        """Choose given poll results; fall back to random if none answered."""
        return self.choose(candidates, rng)


class RandomChoice(LoadBalancer):
    """Uniform random replica selection (no polling)."""

    polls = False

    def choose(self, candidates: Sequence[str], rng: random.Random) -> str:
        if not candidates:
            raise ValueError("no candidates")
        return candidates[rng.randrange(len(candidates))]


class RandomPolling(LoadBalancer):
    """Poll ``d`` random replicas, dispatch to the least-loaded responder."""

    polls = True

    def __init__(self, d: int = 2) -> None:
        if d < 1:
            raise ValueError("poll degree d must be >= 1")
        self.d = d

    def choose(self, candidates: Sequence[str], rng: random.Random) -> str:
        if not candidates:
            raise ValueError("no candidates")
        return candidates[rng.randrange(len(candidates))]

    def poll_targets(self, candidates: Sequence[str], rng: random.Random) -> List[str]:
        k = min(self.d, len(candidates))
        return rng.sample(list(candidates), k)

    def pick_from_loads(
        self, loads: Dict[str, int], candidates: Sequence[str], rng: random.Random
    ) -> str:
        if not loads:
            return self.choose(candidates, rng)
        best = min(loads.values())
        tied = sorted(h for h, v in loads.items() if v == best)
        return tied[rng.randrange(len(tied))]
