"""Interest-scoped load-information dissemination.

The membership protocol deliberately excludes frequently-changing load
("Dynamic information such as workload is not covered by the membership
protocol itself"); the paper sketches the extension this module builds:
"the protocol can propagate load information only to interested nodes
which have recently seeked the service from the service node"
(Section 6.1).

* :class:`LoadReporter` sits on a provider node.  Consumers become
  *interested* when they send a request and stay interested for
  ``interest_ttl`` seconds; the reporter pushes small load reports to
  exactly that set every ``report_period``.
* :class:`LoadTracker` sits on a consumer node, caches the freshest load
  figure per server, and expires stale entries.
* :class:`LoadAwareBalancer` is a drop-in
  :class:`~repro.cluster.loadbalance.LoadBalancer` that dispatches to the
  least-loaded candidate using the tracker's cache — no per-request
  polling round at all, trading the random-polling RTT for slightly
  staler load data.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.loadbalance import LoadBalancer
from repro.cluster.provider import ProviderModule
from repro.net.network import Network
from repro.net.packet import Packet

__all__ = ["LoadReporter", "LoadTracker", "LoadAwareBalancer", "LOADINFO_PORT"]

LOADINFO_PORT = "loadinfo"
REPORT_SIZE = 64


class LoadReporter:
    """Publishes a provider's load to recently-interested consumers."""

    def __init__(
        self,
        network: Network,
        host: str,
        provider: ProviderModule,
        report_period: float = 0.5,
        interest_ttl: float = 10.0,
    ) -> None:
        self.network = network
        self.host = host
        self.provider = provider
        self.report_period = report_period
        self.interest_ttl = interest_ttl
        self._interested: Dict[str, float] = {}  # consumer -> expiry
        self._timer = None
        self.running = False
        self.reports_sent = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.provider.request_observer = self._on_request
        self._timer = self.network.sim.call_after(self.report_period, self._tick)

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        if self.provider.request_observer == self._on_request:
            self.provider.request_observer = None
        if self._timer is not None:
            self._timer.cancel()
        self._interested.clear()

    # ------------------------------------------------------------------
    def _on_request(self, consumer: str, _service: str) -> None:
        self._interested[consumer] = self.network.now + self.interest_ttl

    def interested(self) -> list[str]:
        """Consumers currently on the interest list (sorted)."""
        now = self.network.now
        return sorted(c for c, until in self._interested.items() if until > now)

    def _tick(self) -> None:
        if not self.running:
            return
        now = self.network.now
        for consumer in [c for c, until in self._interested.items() if until <= now]:
            del self._interested[consumer]
        payload = {"server": self.host, "load": self.provider.load, "time": now}
        for consumer in sorted(self._interested):
            self.network.unicast(
                self.host,
                consumer,
                kind="load_report",
                payload=payload,
                size=REPORT_SIZE,
                port=LOADINFO_PORT,
            )
            self.reports_sent += 1
        self._timer = self.network.sim.call_after(self.report_period, self._tick)


class LoadTracker:
    """Consumer-side cache of pushed load reports."""

    def __init__(self, network: Network, host: str, staleness: float = 3.0) -> None:
        self.network = network
        self.host = host
        self.staleness = staleness
        self._loads: Dict[str, Tuple[int, float]] = {}
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.network.bind(self.host, LOADINFO_PORT, self._on_packet)

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.network.transport.unbind(self.host, LOADINFO_PORT)
        self._loads.clear()

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != "load_report":
            return
        payload = packet.payload
        self._loads[payload["server"]] = (payload["load"], self.network.now)

    def load_of(self, server: str) -> Optional[int]:
        """Freshest known load, or None if unknown/stale."""
        entry = self._loads.get(server)
        if entry is None:
            return None
        load, when = entry
        if self.network.now - when > self.staleness:
            del self._loads[server]
            return None
        return load

    def known_servers(self) -> list[str]:
        return sorted(s for s in list(self._loads) if self.load_of(s) is not None)


class LoadAwareBalancer(LoadBalancer):
    """Least-loaded dispatch from the tracker's cache (no poll round)."""

    polls = False

    def __init__(self, tracker: LoadTracker) -> None:
        self.tracker = tracker

    def choose(self, candidates: Sequence[str], rng: random.Random) -> str:
        if not candidates:
            raise ValueError("no candidates")
        known = [(self.tracker.load_of(c), c) for c in candidates]
        with_load = [(load, c) for load, c in known if load is not None]
        if not with_load:
            return candidates[rng.randrange(len(candidates))]
        best = min(load for load, _c in with_load)
        tied = sorted(c for load, c in with_load if load == best)
        # Unknown candidates are tried occasionally so they enter the cache.
        unknown = [c for load, c in known if load is None]
        if unknown and rng.random() < len(unknown) / (len(candidates) * 2):
            return unknown[rng.randrange(len(unknown))]
        return tied[rng.randrange(len(tied))]
