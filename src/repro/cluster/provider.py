"""The provider module: service request dispatch on one node.

Mirrors the Neptune provider module: requests arrive on the node's service
port, are handed to the service-specific handler, take a (simulated)
processing time, and the reply is sent back to the consumer.  The provider
also answers **load polls** — the paper's Announcer thread "answers the
polling requests from other nodes to facilitate the random polling load
balancing strategy".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cluster.service import ServiceSpec
from repro.net.network import Network
from repro.net.packet import Packet

__all__ = ["ProviderModule", "ServiceHandler"]

#: ``handler(partition, request_data) -> response_data``
ServiceHandler = Callable[[int, Any], Any]

SERVICE_PORT = "service"
REQUEST_SIZE = 256
REPLY_SIZE = 512
POLL_SIZE = 64


class ProviderModule:
    """Hosts service instances on one node and serves requests for them."""

    def __init__(self, network: Network, host: str) -> None:
        self.network = network
        self.host = host
        self._services: Dict[str, ServiceSpec] = {}
        self._handlers: Dict[str, ServiceHandler] = {}
        self._active = 0  # in-flight requests == load metric for polling
        self._served = 0
        self._running = False
        #: optional hook(consumer_host, service) invoked per request; used
        #: by the load-information protocol to learn who is "interested".
        self.request_observer: Optional[Callable[[str, str], None]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind the service port.  Idempotent."""
        self.network.bind(self.host, SERVICE_PORT, self._on_packet)
        self._running = True
        self._active = 0

    def stop(self) -> None:
        self.network.transport.unbind(self.host, SERVICE_PORT)
        self._running = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, spec: ServiceSpec, handler: Optional[ServiceHandler] = None) -> None:
        """Export a service.  ``handler`` defaults to echoing the request."""
        self._services[spec.name] = spec
        self._handlers[spec.name] = handler if handler is not None else _echo_handler

    def services(self) -> Dict[str, ServiceSpec]:
        return dict(self._services)

    @property
    def load(self) -> int:
        """Current number of in-flight requests."""
        return self._active

    @property
    def served(self) -> int:
        """Total completed requests (metrics)."""
        return self._served

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "svc_request":
            self._on_request(packet)
        elif packet.kind == "load_poll":
            self._on_load_poll(packet)

    def _on_load_poll(self, packet: Packet) -> None:
        self.network.unicast(
            self.host,
            packet.payload["reply_to"],
            kind="load_reply",
            payload={"poll_id": packet.payload["poll_id"], "load": self._active, "host": self.host},
            size=POLL_SIZE,
            port=packet.payload.get("reply_port", SERVICE_PORT),
        )

    def _on_request(self, packet: Packet) -> None:
        payload = packet.payload
        service = payload["service"]
        if self.request_observer is not None:
            self.request_observer(payload["reply_to"], service)
        spec = self._services.get(service)
        partition = payload["partition"]
        if spec is None or (partition is not None and partition not in spec.partitions):
            self._reply(payload, ok=False, value=None, error="no_such_service")
            return
        handler = self._handlers[service]
        self._active += 1
        self.network.sim.call_after(
            spec.service_time, self._complete, payload, handler, partition
        )

    def _complete(self, payload: Dict[str, Any], handler: ServiceHandler, partition: int) -> None:
        self._active = max(0, self._active - 1)
        if not self._running:
            return  # crashed while the request was being processed
        try:
            value = handler(partition, payload.get("data"))
        except Exception as exc:  # noqa: BLE001 - app handler errors become failures
            self._reply(payload, ok=False, value=None, error=f"handler_error:{exc}")
            return
        self._served += 1
        self._reply(payload, ok=True, value=value, error=None)

    def _reply(self, payload: Dict[str, Any], ok: bool, value: Any, error: Optional[str]) -> None:
        self.network.unicast(
            self.host,
            payload["reply_to"],
            kind="svc_reply",
            payload={
                "req_id": payload["req_id"],
                "ok": ok,
                "value": value,
                "error": error,
                "server": self.host,
            },
            size=REPLY_SIZE,
            port=payload.get("reply_port", SERVICE_PORT),
        )


def _echo_handler(partition: int, data: Any) -> Any:
    return {"partition": partition, "echo": data}
