"""Service specifications.

A Neptune *service instance* is "a server entity that runs on a cluster
node and manages a data partition belonging to a service component".  A
:class:`ServiceSpec` describes what one node exports: the component name,
the partitions it holds, service-specific parameters (the ``*SERVICE``
section of the configuration file, Fig. 7), and a simulated service-time
model used by the provider module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable

from repro.cluster.directory import parse_partitions

__all__ = ["ServiceSpec"]


@dataclass(frozen=True)
class ServiceSpec:
    """One exported service on one node.

    Attributes
    ----------
    name:
        Component name, e.g. ``"index"`` or ``"doc"``.
    partitions:
        Data partitions this instance manages.
    params:
        Service-specific key-values (``Port = 8080`` style).
    service_time:
        Mean simulated processing time per request, seconds.
    """

    name: str
    partitions: FrozenSet[int]
    params: Dict[str, str] = field(default_factory=dict)
    service_time: float = 0.005

    @classmethod
    def make(
        cls,
        name: str,
        partitions: str | Iterable[int],
        service_time: float = 0.005,
        **params: str,
    ) -> "ServiceSpec":
        """Convenience constructor accepting ``"1-3,5"`` partition syntax."""
        parts = (
            parse_partitions(partitions)
            if isinstance(partitions, str)
            else frozenset(int(p) for p in partitions)
        )
        return cls(name=name, partitions=parts, params=dict(params), service_time=service_time)

    def partition_spec(self) -> str:
        """Canonical string form of the partition set (for registration)."""
        return ",".join(str(p) for p in sorted(self.partitions))
