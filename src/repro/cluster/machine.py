"""Machine configuration published through the membership service.

The paper's Announcer thread "collects the machine information from the
/proc file system" and ships it inside heartbeat packets alongside service
information.  :class:`MachineInfo` is the simulated stand-in: a small bag of
stable hardware attributes, serialisable to the key-value form the
directory stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["MachineInfo"]


@dataclass(frozen=True)
class MachineInfo:
    """Stable hardware description of one cluster node.

    Defaults mirror the paper's testbed (dual 1.4 GHz Pentium III running
    RedHat Linux 2.4.20 on 100 Mb Ethernet).
    """

    cpu_model: str = "Pentium III"
    cpu_mhz: int = 1400
    num_cpus: int = 2
    mem_mb: int = 1024
    os: str = "Linux 2.4.20"
    nic_mbps: int = 100

    def to_attrs(self) -> Dict[str, str]:
        """Flatten to the key-value pairs carried in heartbeat packets."""
        return {
            "cpu_model": self.cpu_model,
            "cpu_mhz": str(self.cpu_mhz),
            "num_cpus": str(self.num_cpus),
            "mem_mb": str(self.mem_mb),
            "os": self.os,
            "nic_mbps": str(self.nic_mbps),
        }

    @classmethod
    def from_attrs(cls, attrs: Dict[str, str]) -> "MachineInfo":
        """Inverse of :meth:`to_attrs`; ignores unrelated keys."""
        return cls(
            cpu_model=attrs.get("cpu_model", "unknown"),
            cpu_mhz=int(attrs.get("cpu_mhz", 0)),
            num_cpus=int(attrs.get("num_cpus", 1)),
            mem_mb=int(attrs.get("mem_mb", 0)),
            os=attrs.get("os", "unknown"),
            nic_mbps=int(attrs.get("nic_mbps", 0)),
        )
