"""Scripted failure scenarios.

Experiments inject failures exactly the way the paper did — "We kill the
membership service daemon process on a node to emulate the node failure"
(Section 6.4) — plus switch/router failures for network partitions and
timed recoveries for the Fig. 14 scenario.

A :class:`FailureSchedule` binds a :class:`~repro.net.network.Network` to a
registry of per-host *stacks* (any objects with ``start()``/``stop()`` —
membership protocol nodes, provider modules, proxies).  Crashing a host
stops its stacks and downs the device; recovery brings the device up and
restarts the stacks, which then re-join the protocol from scratch (the
bootstrap path).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, List, Protocol

from repro.net.network import Network

__all__ = ["FailureSchedule"]


class _Stack(Protocol):  # pragma: no cover - typing helper
    def start(self) -> None: ...

    def stop(self) -> None: ...


class FailureSchedule:
    """Time-triggered crash/recover actions against a network + stacks."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._stacks: Dict[str, List[Any]] = defaultdict(list)
        self.log: List[tuple[float, str, str]] = []

    def register_stack(self, host: str, stack: Any) -> None:
        """Associate a protocol stack with its host for crash/restart."""
        self._stacks[host].append(stack)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def crash_node_at(self, time: float, host: str) -> None:
        """Kill ``host`` (daemon + NIC) at ``time``."""
        self.network.sim.call_at(time, self._crash, host)

    def recover_node_at(self, time: float, host: str) -> None:
        self.network.sim.call_at(time, self._recover, host)

    def fail_device_at(self, time: float, device: str) -> None:
        """Down a switch/router at ``time`` (network partition)."""
        self.network.sim.call_at(time, self._fail_device, device)

    def recover_device_at(self, time: float, device: str) -> None:
        self.network.sim.call_at(time, self._recover_device, device)

    def stop_service_at(self, time: float, host: str, stack: Any) -> None:
        """Stop one specific stack (service fails, host stays up)."""
        self.network.sim.call_at(time, self._stop_one, host, stack)

    def start_service_at(self, time: float, host: str, stack: Any) -> None:
        self.network.sim.call_at(time, self._start_one, host, stack)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _crash(self, host: str) -> None:
        for stack in self._stacks.get(host, []):
            stack.stop()
        self.network.crash_host(host)
        self.log.append((self.network.now, "crash", host))

    def _recover(self, host: str) -> None:
        self.network.recover_host(host)
        for stack in self._stacks.get(host, []):
            stack.start()
        self.log.append((self.network.now, "recover", host))

    def _fail_device(self, device: str) -> None:
        self.network.fail_device(device)
        self.log.append((self.network.now, "device_fail", device))

    def _recover_device(self, device: str) -> None:
        self.network.recover_device(device)
        self.log.append((self.network.now, "device_recover", device))

    def _stop_one(self, host: str, stack: Any) -> None:
        stack.stop()
        self.log.append((self.network.now, "service_stop", host))

    def _start_one(self, host: str, stack: Any) -> None:
        stack.start()
        self.log.append((self.network.now, "service_start", host))
