"""Scripted failure scenarios.

Experiments inject failures exactly the way the paper did — "We kill the
membership service daemon process on a node to emulate the node failure"
(Section 6.4) — plus switch/router failures for network partitions and
timed recoveries for the Fig. 14 scenario.

A :class:`FailureSchedule` binds a :class:`~repro.net.network.Network` to a
registry of per-host *stacks* (any objects with ``start()``/``stop()`` —
membership protocol nodes, provider modules, proxies).  Crashing a host
stops its stacks and downs the device; recovery brings the device up and
restarts the stacks, which then re-join the protocol from scratch (the
bootstrap path).

Beyond the paper's clean crashes, the schedule also scripts the chaos
scenarios the robustness tooling targets (docs/FAULTS.md):

* :meth:`FailureSchedule.flap_device` — a flapping switch/router that
  partitions and heals its subtree on a cycle;
* :meth:`FailureSchedule.partition_at` — symmetric *or asymmetric*
  partitions realised as total directional loss on the network's
  :class:`~repro.net.faults.FaultPlan` (a downed device can only model the
  symmetric case);
* :meth:`FailureSchedule.schedule_chaos_storm` — a seeded randomized
  crash/recover storm, drawn entirely at scheduling time so runtime RNG
  streams are untouched.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Optional, Protocol, Tuple

from repro.net.faults import LinkFault
from repro.net.network import Network

__all__ = ["FailureSchedule"]


class _Stack(Protocol):  # pragma: no cover - typing helper
    def start(self) -> None: ...

    def stop(self) -> None: ...


class FailureSchedule:
    """Time-triggered crash/recover actions against a network + stacks."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._stacks: Dict[str, List[Any]] = defaultdict(list)
        self.log: List[tuple[float, str, str]] = []

    def register_stack(self, host: str, stack: Any) -> None:
        """Associate a protocol stack with its host for crash/restart."""
        self._stacks[host].append(stack)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def crash_node_at(self, time: float, host: str) -> None:
        """Kill ``host`` (daemon + NIC) at ``time``."""
        self.network.sim.call_at(time, self._crash, host)

    def recover_node_at(self, time: float, host: str) -> None:
        self.network.sim.call_at(time, self._recover, host)

    def fail_device_at(self, time: float, device: str) -> None:
        """Down a switch/router at ``time`` (network partition)."""
        self.network.sim.call_at(time, self._fail_device, device)

    def recover_device_at(self, time: float, device: str) -> None:
        self.network.sim.call_at(time, self._recover_device, device)

    def stop_service_at(self, time: float, host: str, stack: Any) -> None:
        """Stop one specific stack (service fails, host stays up)."""
        self.network.sim.call_at(time, self._stop_one, host, stack)

    def start_service_at(self, time: float, host: str, stack: Any) -> None:
        self.network.sim.call_at(time, self._start_one, host, stack)

    # ------------------------------------------------------------------
    # Chaos scheduling
    # ------------------------------------------------------------------
    def flap_device(
        self,
        device: str,
        first_down: float,
        down_for: float,
        up_for: float,
        until: float,
    ) -> int:
        """A flapping link: down/up cycles for ``device`` until ``until``.

        Each cycle downs the device at its start and recovers it
        ``down_for`` later; cycles repeat every ``down_for + up_for``
        seconds.  Returns the number of cycles scheduled.  A flapping
        switch is the classic convergence stress: the subtree behind it
        is repeatedly purged mid-recovery.
        """
        if down_for <= 0 or up_for <= 0:
            raise ValueError("down_for and up_for must both be positive")
        cycles = 0
        t = first_down
        while t < until:
            self.fail_device_at(t, device)
            self.recover_device_at(t + down_for, device)
            cycles += 1
            t += down_for + up_for
        return cycles

    def partition_at(
        self,
        time: float,
        side_a: Iterable[str],
        side_b: Iterable[str],
        heal_at: Optional[float] = None,
        symmetric: bool = True,
    ) -> List[LinkFault]:
        """Partition two host sets at ``time`` via total directional loss.

        Implemented as time-windowed :class:`~repro.net.faults.LinkFault`
        rules on the network's fault plan (created on demand), so
        ``symmetric=False`` gives the *asymmetric* case a downed device
        cannot express: ``side_a``'s packets toward ``side_b`` vanish
        while the reverse direction keeps flowing.  Heals at ``heal_at``
        (never, if ``None``).  Returns the installed rules.
        """
        side_a = sorted(side_a)
        side_b = sorted(side_b)
        plan = self.network.ensure_fault_plan()
        until = float("inf") if heal_at is None else heal_at
        rules = plan.partition(
            side_a, side_b, start=time, until=until, symmetric=symmetric
        )
        arrow = "<->" if symmetric else "->"
        desc = f"{'|'.join(side_a)}{arrow}{'|'.join(side_b)}"
        self.network.sim.call_at(time, self._note, "partition", desc)
        if heal_at is not None:
            self.network.sim.call_at(heal_at, self._note, "partition_heal", desc)
        return rules

    def schedule_chaos_storm(
        self,
        rng: random.Random,
        hosts: List[str],
        start: float,
        duration: float,
        events: int = 8,
        min_downtime: float = 5.0,
        max_downtime: float = 15.0,
        min_gap: float = 1.0,
    ) -> List[Tuple[float, str, float]]:
        """Schedule a seeded randomized crash/recover storm.

        Draws ``events`` (crash time, host, downtime) triples from ``rng``
        — uniformly over ``[start, start + duration)`` hosts and
        ``[min_downtime, max_downtime)`` downtimes — rejecting draws that
        would overlap (or come within ``min_gap`` of) an existing outage
        of the same host, so every crash hits a *running* stack and every
        recovery restarts a *stopped* one.  All randomness is consumed
        here, at scheduling time: the storm never perturbs the
        simulation's runtime RNG streams, and the same ``rng`` seed
        always yields the same storm.  Returns the storm, time-sorted.
        """
        if not hosts:
            raise ValueError("chaos storm needs at least one host")
        if max_downtime < min_downtime:
            raise ValueError("max_downtime < min_downtime")
        busy: Dict[str, List[Tuple[float, float]]] = defaultdict(list)
        storm: List[Tuple[float, str, float]] = []
        attempts = 0
        while len(storm) < events and attempts < events * 50:
            attempts += 1
            t = start + rng.random() * duration
            host = hosts[rng.randrange(len(hosts))]
            down = min_downtime + rng.random() * (max_downtime - min_downtime)
            lo, hi = t - min_gap, t + down + min_gap
            if any(b_lo < hi and lo < b_hi for b_lo, b_hi in busy[host]):
                continue
            busy[host].append((lo, hi))
            storm.append((t, host, down))
        storm.sort()
        for t, host, down in storm:
            self.crash_node_at(t, host)
            self.recover_node_at(t + down, host)
        return storm

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def _crash(self, host: str) -> None:
        for stack in self._stacks.get(host, []):
            stack.stop()
        self.network.crash_host(host)
        self.log.append((self.network.now, "crash", host))

    def _recover(self, host: str) -> None:
        self.network.recover_host(host)
        for stack in self._stacks.get(host, []):
            stack.start()
        self.log.append((self.network.now, "recover", host))

    def _fail_device(self, device: str) -> None:
        self.network.fail_device(device)
        self.log.append((self.network.now, "device_fail", device))

    def _recover_device(self, device: str) -> None:
        self.network.recover_device(device)
        self.log.append((self.network.now, "device_recover", device))

    def _note(self, kind: str, desc: str) -> None:
        """Log marker for actions realised elsewhere (fault-plan rules)."""
        self.log.append((self.network.now, kind, desc))
        self.network.trace.emit(self.network.now, kind, scope=desc)

    def _stop_one(self, host: str, stack: Any) -> None:
        stack.stop()
        self.log.append((self.network.now, "service_stop", host))

    def _start_one(self, host: str, stack: Any) -> None:
        stack.start()
        self.log.append((self.network.now, "service_start", host))
