"""The node-local yellow-page directory.

Every node in a decentralised Neptune cluster keeps its own copy of the
*entire* service directory ("each node is able to access entire yellow page
directory inside a service cluster", Section 1).  Entries are **soft
state**: they exist only while refreshed by heartbeats or relayed updates,
and carry enough bookkeeping for the hierarchical protocol's timeout rules
(entries relayed by a group leader share the leader's lifetime).

The lookup API mirrors the paper's ``MClient::lookup_service`` (Fig. 9):
regular expressions are accepted in both the service name and the partition
list, and matches return the per-machine attribute lists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["NodeRecord", "Directory", "parse_partitions"]


def parse_partitions(spec: str) -> FrozenSet[int]:
    """Parse a partition list like ``"1-3,5"`` into ``{1, 2, 3, 5}``.

    Used both when a service registers ("register_service('Retriever',
    '1-3')" announces partitions 1, 2 and 3) and when a lookup uses range
    syntax.  Raises ``ValueError`` on malformed specs.
    """
    parts: set[int] = set()
    spec = spec.strip()
    if not spec:
        return frozenset()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty chunk in partition spec {spec!r}")
        if "-" in chunk:
            lo_s, _, hi_s = chunk.partition("-")
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"descending range {chunk!r}")
            parts.update(range(lo, hi + 1))
        else:
            parts.add(int(chunk))
    return frozenset(parts)


_RANGE_SPEC = re.compile(r"^[\d,\-\s]+$")


@dataclass(frozen=True)
class NodeRecord:
    """One directory entry: everything a node publishes about itself.

    Attributes
    ----------
    node_id:
        Host name (doubles as the unique election ID, like an IP address).
    incarnation:
        Boot epoch; a restarted node announces a higher incarnation so stale
        records about its previous life lose every merge.
    services:
        ``service name -> frozenset of partition IDs`` hosted on the node.
    attrs:
        Key-value pairs: machine configuration (from :class:`MachineInfo`)
        plus any values published through ``MService.update_value``.
    """

    node_id: str
    incarnation: int = 0
    services: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    attrs: Dict[str, str] = field(default_factory=dict)

    def supersedes(self, other: "NodeRecord") -> bool:
        """True if this record is at least as fresh as ``other``."""
        return self.node_id == other.node_id and self.incarnation >= other.incarnation

    def with_service(self, name: str, partitions: str | Iterable[int]) -> "NodeRecord":
        """Functional update used by the provider-side API."""
        parts = (
            parse_partitions(partitions)
            if isinstance(partitions, str)
            else frozenset(int(p) for p in partitions)
        )
        services = dict(self.services)
        services[name] = parts
        return replace(self, services=services)

    def with_attr(self, key: str, value: str) -> "NodeRecord":
        attrs = dict(self.attrs)
        attrs[key] = value
        return replace(self, attrs=attrs)

    def without_attr(self, key: str) -> "NodeRecord":
        attrs = dict(self.attrs)
        attrs.pop(key, None)
        return replace(self, attrs=attrs)


@dataclass
class _Entry:
    record: NodeRecord
    last_refresh: float
    relayed_by: Optional[str]  # leader that vouches for this entry, None = heard directly


class Directory:
    """Soft-state membership table with idempotent merge semantics.

    The update operation is idempotent and monotone in ``incarnation`` —
    the property the paper leans on when overlapping groups deliver
    duplicate updates ("because the operation caused by an update message at
    each node is idempotent, redundant messages will not cause confusion").
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._entries: Dict[str, _Entry] = {}
        # relayer -> last time its liveness re-vouched for its entries.
        # An alive leader's heartbeat keeps everything it relayed fresh in
        # O(1) ("the membership information relayed by a group leader has
        # the same life time as the leader itself").
        self._vouch_times: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(
        self,
        record: NodeRecord,
        now: float,
        relayed_by: Optional[str] = None,
    ) -> bool:
        """Merge ``record``; returns True if the directory visibly changed.

        A record loses against an existing entry with a higher incarnation.
        Equal-incarnation records refresh the timestamp (and may update the
        payload, e.g. a changed service value at the same boot epoch).
        """
        cur = self._entries.get(record.node_id)
        if cur is not None and cur.record.incarnation > record.incarnation:
            return False
        changed = cur is None or cur.record != record
        self._entries[record.node_id] = _Entry(record, now, relayed_by)
        return changed

    def refresh(self, node_id: str, now: float, relayed_by: Optional[str] = None) -> bool:
        """Bump the freshness of an existing entry (heartbeat w/o changes)."""
        entry = self._entries.get(node_id)
        if entry is None:
            return False
        entry.last_refresh = now
        if relayed_by is not None or entry.relayed_by is not None:
            entry.relayed_by = relayed_by
        return True

    def remove(self, node_id: str) -> bool:
        """Drop an entry (failure detected or departure announced)."""
        return self._entries.pop(node_id, None) is not None

    def purge_stale(self, now: float, timeout: float) -> List[str]:
        """Remove directly-heard entries not refreshed within ``timeout``.

        Returns the purged node ids.  Entries for the owner itself never
        expire (a node always knows it is alive).
        """
        dead = [
            nid
            for nid, e in self._entries.items()
            if nid != self.owner
            and e.relayed_by is None
            and now - e.last_refresh > timeout
        ]
        for nid in dead:
            del self._entries[nid]
        return dead

    def purge_relayed_by(self, leader: str) -> List[str]:
        """Drop every entry vouched for by ``leader`` (leader died).

        Implements the timeout-protocol rule that "membership information
        relayed by a group leader has the same life time as the leader
        itself".
        """
        dead = [nid for nid, e in self._entries.items() if e.relayed_by == leader]
        for nid in dead:
            del self._entries[nid]
        return dead

    def purge_stale_relayed(self, now: float, timeout: float) -> List[str]:
        """Remove relayed entries not refreshed or re-vouched in ``timeout``.

        An entry counts as fresh if either it was refreshed directly or its
        relayer vouched (see :meth:`vouch`) within the window.
        """
        dead = []
        for nid, e in self._entries.items():
            if nid == self.owner or e.relayed_by is None:
                continue
            effective = max(e.last_refresh, self._vouch_times.get(e.relayed_by, float("-inf")))
            if now - effective > timeout:
                dead.append(nid)
        for nid in dead:
            del self._entries[nid]
        return dead

    def vouch(self, relayer: str, now: float) -> None:
        """Record that ``relayer`` is alive, keeping its relayed entries fresh."""
        self._vouch_times[relayer] = now

    def reattribute(self, old_relayer: str, new_relayer: str) -> int:
        """Move vouching responsibility from ``old_relayer`` to ``new_relayer``.

        Called on leader failover: the new leader inherits the old one's
        vouched entries so they survive until it re-syncs.  Returns the
        number of entries moved.
        """
        moved = 0
        for e in self._entries.values():
            if e.relayed_by == old_relayer:
                e.relayed_by = new_relayer
                moved += 1
        if moved and old_relayer in self._vouch_times:
            prev = self._vouch_times[old_relayer]
            self._vouch_times[new_relayer] = max(prev, self._vouch_times.get(new_relayer, prev))
        return moved

    def relayed_entries(self, relayer: str) -> List[str]:
        """Node ids currently vouched for by ``relayer`` (sorted)."""
        return sorted(nid for nid, e in self._entries.items() if e.relayed_by == relayer)

    def clear(self) -> None:
        self._entries.clear()
        self._vouch_times.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: str) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: str) -> Optional[NodeRecord]:
        entry = self._entries.get(node_id)
        return entry.record if entry else None

    def last_refresh(self, node_id: str) -> Optional[float]:
        entry = self._entries.get(node_id)
        return entry.last_refresh if entry else None

    def relayed_by(self, node_id: str) -> Optional[str]:
        entry = self._entries.get(node_id)
        return entry.relayed_by if entry else None

    def members(self) -> List[str]:
        """All known node ids, sorted (deterministic iteration)."""
        return sorted(self._entries)

    def records(self) -> List[NodeRecord]:
        return [self._entries[nid].record for nid in sorted(self._entries)]

    def snapshot(self) -> Dict[str, NodeRecord]:
        """Copy of the table, for bootstrap transfers and assertions."""
        return {nid: e.record for nid, e in self._entries.items()}

    def lookup_service(
        self,
        service: str,
        partition: Optional[str] = None,
    ) -> List[NodeRecord]:
        """Find nodes providing ``service`` (regex) on ``partition``.

        ``partition`` may be ``None`` (any), a range list like ``"1-3,5"``
        (matches nodes hosting *any* listed partition), or a regular
        expression matched against individual partition numbers.
        """
        svc_re = re.compile(service)
        wanted: Optional[FrozenSet[int]] = None
        part_re: Optional[re.Pattern[str]] = None
        if partition is not None:
            if _RANGE_SPEC.match(partition):
                wanted = parse_partitions(partition)
            else:
                part_re = re.compile(partition)
        out: List[NodeRecord] = []
        for nid in sorted(self._entries):
            record = self._entries[nid].record
            for name, parts in record.services.items():
                if not svc_re.fullmatch(name):
                    continue
                if wanted is not None and not (parts & wanted):
                    continue
                if part_re is not None and not any(
                    part_re.fullmatch(str(p)) for p in parts
                ):
                    continue
                out.append(record)
                break
        return out
