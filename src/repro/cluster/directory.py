"""The node-local yellow-page directory.

Every node in a decentralised Neptune cluster keeps its own copy of the
*entire* service directory ("each node is able to access entire yellow page
directory inside a service cluster", Section 1).  Entries are **soft
state**: they exist only while refreshed by heartbeats or relayed updates,
and carry enough bookkeeping for the hierarchical protocol's timeout rules
(entries relayed by a group leader share the leader's lifetime).

The lookup API mirrors the paper's ``MClient::lookup_service`` (Fig. 9):
regular expressions are accepted in both the service name and the partition
list, and matches return the per-machine attribute lists.
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["NodeRecord", "Directory", "parse_partitions"]


def parse_partitions(spec: str) -> FrozenSet[int]:
    """Parse a partition list like ``"1-3,5"`` into ``{1, 2, 3, 5}``.

    Used both when a service registers ("register_service('Retriever',
    '1-3')" announces partitions 1, 2 and 3) and when a lookup uses range
    syntax.  Raises ``ValueError`` on malformed specs.
    """
    parts: set[int] = set()
    spec = spec.strip()
    if not spec:
        return frozenset()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty chunk in partition spec {spec!r}")
        if "-" in chunk:
            lo_s, _, hi_s = chunk.partition("-")
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"descending range {chunk!r}")
            parts.update(range(lo, hi + 1))
        else:
            parts.add(int(chunk))
    return frozenset(parts)


_RANGE_SPEC = re.compile(r"^[\d,\-\s]+$")


@dataclass(frozen=True, slots=True)
class NodeRecord:
    """One directory entry: everything a node publishes about itself.

    Attributes
    ----------
    node_id:
        Host name (doubles as the unique election ID, like an IP address).
    incarnation:
        Boot epoch; a restarted node announces a higher incarnation so stale
        records about its previous life lose every merge.
    services:
        ``service name -> frozenset of partition IDs`` hosted on the node.
    attrs:
        Key-value pairs: machine configuration (from :class:`MachineInfo`)
        plus any values published through ``MService.update_value``.
    """

    node_id: str
    incarnation: int = 0
    services: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    attrs: Dict[str, str] = field(default_factory=dict)

    def supersedes(self, other: "NodeRecord") -> bool:
        """True if this record is at least as fresh as ``other``."""
        return self.node_id == other.node_id and self.incarnation >= other.incarnation

    def with_service(self, name: str, partitions: str | Iterable[int]) -> "NodeRecord":
        """Functional update used by the provider-side API."""
        parts = (
            parse_partitions(partitions)
            if isinstance(partitions, str)
            else frozenset(int(p) for p in partitions)
        )
        services = dict(self.services)
        services[name] = parts
        return replace(self, services=services)

    def with_attr(self, key: str, value: str) -> "NodeRecord":
        attrs = dict(self.attrs)
        attrs[key] = value
        return replace(self, attrs=attrs)

    def without_attr(self, key: str) -> "NodeRecord":
        attrs = dict(self.attrs)
        attrs.pop(key, None)
        return replace(self, attrs=attrs)


@dataclass(slots=True)
class _Entry:
    record: NodeRecord
    last_refresh: float
    relayed_by: Optional[str]  # leader that vouches for this entry, None = heard directly
    #: token of this entry's one live deadline-heap record (lazy deletion)
    stamp: int = 0
    #: dict-insertion rank, so heap-driven purges report dead entries in
    #: the same order the legacy full scans did (trace determinism)
    order: int = 0
    #: False once this entry left the directory.  Receivers cache entry
    #: references (see ``entry_view``) to skip the full-table probe on
    #: no-change heartbeats; the flag is how a cached reference learns
    #: it went stale.  A re-added node gets a *new* entry, so a live
    #: entry is always the directory's current one for its node id.
    live: bool = True


class Directory:
    """Soft-state membership table with idempotent merge semantics.

    The update operation is idempotent and monotone in ``incarnation`` —
    the property the paper leans on when overlapping groups deliver
    duplicate updates ("because the operation caused by an update message at
    each node is idempotent, redundant messages will not cause confusion").

    Hot-path engine (mirrors the net layer's version-validated caches):

    * **Deadline-driven expiry (direct entries)** — while
      :attr:`use_fast_path` is on, every freshness change pushes a
      ``(freshness, stamp, node_id)`` record onto a min-heap and the
      periodic ``purge_stale`` scan becomes heap pops: amortised O(1) per
      refresh instead of O(members) per tick.  Stale heap records (an
      entry refreshed since the push, reclassified, or removed) are
      invalidated by ``stamp`` mismatch and discarded when they surface —
      lazy deletion, as in the simulator's event queue.
    * **Vouch-gated expiry (relayed entries)** — relayed entries are
      indexed per relayer.  A relayed entry's effective freshness is
      ``max(last_refresh, relayer's vouch time)``, and an alive relayer
      re-vouches every heartbeat period — so in steady state
      ``purge_stale_relayed`` is one clock comparison per *relayer*
      (typically 1–3 per node) that skips the whole group, instead of any
      per-entry work.  Only when a relayer's vouch lapses is its group
      scanned entry-by-entry.  This is what keeps the purge tick flat in
      directory size at 10k-node scale.
    * **Versioned views** — :attr:`version` counts structural changes (key
      set or record payloads); :meth:`members`, :meth:`records` and
      :meth:`snapshot` serve cached tuples rebuilt only when the version
      moved, the same contract as ``Topology.version`` one layer down.

    Both purge implementations evaluate the *same* staleness predicates on
    the same values and report the dead in the same (insertion) order, so
    seeded simulation traces are identical on either path.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._entries: Dict[str, _Entry] = {}
        # relayer -> last time its liveness re-vouched for its entries.
        # An alive leader's heartbeat keeps everything it relayed fresh in
        # O(1) ("the membership information relayed by a group leader has
        # the same life time as the leader itself").
        self._vouch_times: Dict[str, float] = {}
        self._use_fast_path = True
        # Deadline heap for direct entries: (freshness key, stamp, node_id).
        # A record is live iff its stamp equals the entry's current stamp;
        # every freshness/classification change bumps the stamp and pushes
        # a new record, orphaning the old one.
        self._direct_heap: List[Tuple[float, int, str]] = []
        # relayer -> insertion-ordered set (dict keyed by node id) of the
        # entries it currently vouches for.  Maintained on both paths; the
        # legacy purge keeps its full scans for A/B comparison.
        self._relayed_groups: Dict[str, Dict[str, None]] = {}
        self._stamp = 0
        self._order = 0
        self._version = 0
        self._members_cache: Tuple[int, Tuple[str, ...]] = (-1, ())
        self._records_cache: Tuple[int, Tuple[NodeRecord, ...]] = (-1, ())
        self._snapshot_cache: Tuple[int, Dict[str, NodeRecord]] = (-1, {})

    # ------------------------------------------------------------------
    # Hot-path plumbing
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter of structural changes (keys or record payloads).

        Freshness-only updates (``refresh``, ``vouch``, ``reattribute``) do
        not move it, so cached views stay valid across heartbeat storms.
        """
        return self._version

    @property
    def use_fast_path(self) -> bool:
        """Toggle for the deadline-heap/vouch-gated purge engine (default on).

        Turning it off falls back to the legacy full-scan purges — kept for
        A/B benchmarking; traces are identical either way.  Turning it
        (back) on rebuilds the direct-entry heap from the live table (the
        per-relayer index is maintained on both paths).
        """
        return self._use_fast_path

    @use_fast_path.setter
    def use_fast_path(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled and not self._use_fast_path:
            self._rebuild_heaps()
        elif not enabled:
            self._direct_heap.clear()
        self._use_fast_path = enabled

    def _rebuild_heaps(self) -> None:
        self._direct_heap.clear()
        for nid, entry in self._entries.items():
            if nid == self.owner or entry.relayed_by is not None:
                continue
            self._stamp += 1
            entry.stamp = self._stamp
            self._direct_heap.append((entry.last_refresh, entry.stamp, nid))
        heapq.heapify(self._direct_heap)

    def _note_deadline(self, nid: str, entry: _Entry, key: float) -> None:
        """Push a *direct* ``entry``'s current freshness onto the heap."""
        if nid == self.owner:
            return  # the owner never expires; keep it out of the heap
        self._stamp += 1
        entry.stamp = self._stamp
        heapq.heappush(self._direct_heap, (key, entry.stamp, nid))

    def _group_add(self, nid: str, relayer: str) -> None:
        groups = self._relayed_groups
        group = groups.get(relayer)
        if group is None:
            groups[relayer] = {nid: None}
        else:
            group[nid] = None

    def _group_discard(self, nid: str, relayer: str) -> None:
        group = self._relayed_groups.get(relayer)
        if group is not None:
            group.pop(nid, None)
            if not group:
                del self._relayed_groups[relayer]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def upsert(
        self,
        record: NodeRecord,
        now: float,
        relayed_by: Optional[str] = None,
    ) -> bool:
        """Merge ``record``; returns True if the directory visibly changed.

        A record loses against an existing entry with a higher incarnation.
        Equal-incarnation records refresh the timestamp (and may update the
        payload, e.g. a changed service value at the same boot epoch).
        """
        nid = record.node_id
        cur = self._entries.get(nid)
        if cur is not None and cur.record.incarnation > record.incarnation:
            return False
        if cur is not None and cur.record is record:
            # Same payload object (records travel by reference in the
            # simulator, and senders intern unchanged heartbeats): a pure
            # freshness/attribution bump, no deep equality, no new entry.
            cur.last_refresh = now
            old = cur.relayed_by
            if old != relayed_by:
                cur.relayed_by = relayed_by
                if old is not None:
                    self._group_discard(nid, old)
                if relayed_by is not None:
                    self._group_add(nid, relayed_by)
                elif self._use_fast_path:
                    # Became direct: its old heap record (if any) was
                    # orphaned by the reclass, so file a live one.  Pure
                    # freshness bumps leave the heap alone — the purge
                    # loop re-keys stale-keyed records on surfacing.
                    self._note_deadline(nid, cur, now)
            return False
        changed = cur is None or cur.record != record
        if cur is None:
            self._order += 1
            entry = _Entry(record, now, relayed_by, order=self._order)
            self._entries[nid] = entry
            if relayed_by is not None:
                self._group_add(nid, relayed_by)
            self._version += 1
        else:
            entry = cur
            old = entry.relayed_by
            entry.record = record
            entry.last_refresh = now
            entry.relayed_by = relayed_by
            if old != relayed_by:
                if old is not None:
                    self._group_discard(nid, old)
                if relayed_by is not None:
                    self._group_add(nid, relayed_by)
            if changed or old != relayed_by:
                # A content-equal re-upsert with an unchanged relayer is a
                # pure freshness bump and must not invalidate the cached
                # views — a real transport rebuilds every payload from
                # bytes, so the identity early-out above never fires there
                # and this path runs once per received heartbeat.
                self._version += 1
        if relayed_by is None and self._use_fast_path:
            self._note_deadline(nid, entry, now)
        return changed

    def insert_new(
        self,
        record: NodeRecord,
        now: float,
        relayed_by: Optional[str] = None,
    ) -> None:
        """Insert a record known to be absent (the absorb first-sight path).

        Exactly :meth:`upsert`'s ``cur is None`` branch without re-probing
        the entries table — the caller just did the lookup.  Formation
        runs this once per node pair, which makes the saved probe and
        incarnation branches measurable at the 10k scale.
        """
        nid = record.node_id
        self._order += 1
        entry = _Entry(record, now, relayed_by, order=self._order)
        self._entries[nid] = entry
        if relayed_by is not None:
            # _group_add, inlined: one insert per node pair at formation.
            groups = self._relayed_groups
            group = groups.get(relayed_by)
            if group is None:
                groups[relayed_by] = {nid: None}
            else:
                group[nid] = None
        self._version += 1
        if relayed_by is None and self._use_fast_path:
            self._note_deadline(nid, entry, now)

    def refresh(self, node_id: str, now: float, relayed_by: Optional[str] = None) -> bool:
        """Bump the freshness of an existing entry (heartbeat w/o changes)."""
        entry = self._entries.get(node_id)
        if entry is None:
            return False
        entry.last_refresh = now
        old = entry.relayed_by
        if (relayed_by is not None or old is not None) and old != relayed_by:
            entry.relayed_by = relayed_by
            if old is not None:
                self._group_discard(node_id, old)
            if relayed_by is not None:
                self._group_add(node_id, relayed_by)
            elif self._use_fast_path:
                self._note_deadline(node_id, entry, now)  # became direct
        return True

    def remove(self, node_id: str) -> bool:
        """Drop an entry (failure detected or departure announced)."""
        entry = self._entries.pop(node_id, None)
        if entry is None:
            return False
        entry.live = False
        if entry.relayed_by is not None:
            self._group_discard(node_id, entry.relayed_by)
        self._version += 1
        return True  # heap records orphaned; discarded lazily on surfacing

    def purge_stale(
        self,
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        """Remove directly-heard entries not refreshed within ``timeout``.

        Returns the purged node ids.  Entries for the owner itself never
        expire (a node always knows it is alive).  When ``incarnations``
        is given it is filled with the purged entries' incarnations, so
        callers can build guarded remove-updates after the fact.
        """
        if self._use_fast_path:
            return self._pop_stale_direct(now, timeout, incarnations)
        dead = [
            nid
            for nid, e in self._entries.items()
            if nid != self.owner
            and e.relayed_by is None
            and now - e.last_refresh > timeout
        ]
        for nid in dead:
            entry = self._entries.pop(nid)
            entry.live = False
            if incarnations is not None:
                incarnations[nid] = entry.record.incarnation
        if dead:
            self._version += 1
        return dead

    def _pop_stale_direct(
        self,
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        """Heap-pop equivalent of the direct-entry staleness scan.

        Each live entry has exactly one heap record whose key is a *lower
        bound* on ``last_refresh`` (freshness bumps do not touch the heap).
        When a stale-keyed record surfaces but the entry was refreshed
        since, it is re-keyed at the current ``last_refresh`` and pushed
        back — at most once per timeout window per entry, so a quiet
        period costs O(live entries / timeout periods), not O(refreshes).
        """
        heap = self._direct_heap
        entries = self._entries
        dead: List[Tuple[int, str]] = []
        while heap:
            key, stamp, nid = heap[0]
            entry = entries.get(nid)
            if entry is None or entry.stamp != stamp or entry.relayed_by is not None:
                heapq.heappop(heap)  # orphaned by remove/reclass
                continue
            if not now - key > timeout:
                break  # key <= last_refresh, so the rest is fresh too
            fresh = entry.last_refresh
            if not now - fresh > timeout:  # identical predicate to legacy
                # Refreshed since the record was pushed: re-key, move on.
                heapq.heappop(heap)
                self._stamp += 1
                entry.stamp = self._stamp
                heapq.heappush(heap, (fresh, entry.stamp, nid))
                continue
            heapq.heappop(heap)
            if incarnations is not None:
                incarnations[nid] = entry.record.incarnation
            del entries[nid]
            entry.live = False
            dead.append((entry.order, nid))
        if dead:
            self._version += 1
            dead.sort()
        return [nid for _order, nid in dead]

    def purge_relayed_by(self, leader: str) -> List[str]:
        """Drop every entry vouched for by ``leader`` (leader died).

        Implements the timeout-protocol rule that "membership information
        relayed by a group leader has the same life time as the leader
        itself".
        """
        group = self._relayed_groups.pop(leader, None)
        if not group:
            return []
        entries = self._entries
        # Insertion-rank order matches the legacy full scan's dict order.
        dead = sorted(group, key=lambda nid: entries[nid].order)
        for nid in dead:
            entries.pop(nid).live = False
        self._version += 1
        return dead

    def purge_stale_relayed(
        self,
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        """Remove relayed entries not refreshed or re-vouched in ``timeout``.

        An entry counts as fresh if either it was refreshed directly or its
        relayer vouched (see :meth:`vouch`) within the window.  When
        ``incarnations`` is given it is filled with the purged entries'
        incarnations for after-the-fact remove-update guards.
        """
        if self._use_fast_path:
            return self._purge_stale_relayed_grouped(now, timeout, incarnations)
        dead = []
        for nid, e in self._entries.items():
            if nid == self.owner or e.relayed_by is None:
                continue
            effective = max(e.last_refresh, self._vouch_times.get(e.relayed_by, float("-inf")))
            if now - effective > timeout:
                dead.append(nid)
        for nid in dead:
            if incarnations is not None:
                incarnations[nid] = self._entries[nid].record.incarnation
            entry = self._entries.pop(nid)
            entry.live = False
            if entry.relayed_by is not None:
                self._group_discard(nid, entry.relayed_by)
        if dead:
            self._version += 1
        return dead

    def _purge_stale_relayed_grouped(
        self,
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        """Vouch-gated equivalent of the relayed-entry staleness scan.

        A whole group is provably fresh when its relayer vouched within the
        window (``effective >= vouch time``), so the steady-state cost is
        one comparison per relayer.  A group whose vouch lapsed is scanned
        entry-by-entry with the exact legacy predicate — that only happens
        while a relayer is dying, and ``purge_relayed_by`` usually empties
        the group before this backstop ever sees it.
        """
        entries = self._entries
        vouch = self._vouch_times
        neg_inf = float("-inf")
        doomed: List[Tuple[int, str, _Entry]] = []
        for relayer, group in self._relayed_groups.items():
            vouched = vouch.get(relayer, neg_inf)
            if now - vouched <= timeout:
                continue  # fresh vouch covers every entry in the group
            for nid in group:
                if nid == self.owner:
                    continue  # the owner never expires (legacy parity)
                entry = entries[nid]
                effective = entry.last_refresh
                if effective < vouched:
                    effective = vouched
                if now - effective > timeout:
                    doomed.append((entry.order, nid, entry))
        if not doomed:
            return []
        # Insertion-rank order: identical to the legacy full-scan order
        # (orders are unique, so the sort never compares entries).
        doomed.sort(key=lambda item: item[0])
        dead: List[str] = []
        for _order, nid, entry in doomed:
            if incarnations is not None:
                incarnations[nid] = entry.record.incarnation
            del entries[nid]
            entry.live = False
            self._group_discard(nid, entry.relayed_by)
            dead.append(nid)
        self._version += 1
        return dead

    def vouch(self, relayer: str, now: float) -> None:
        """Record that ``relayer`` is alive, keeping its relayed entries fresh."""
        self._vouch_times[relayer] = now

    def reattribute(self, old_relayer: str, new_relayer: str) -> int:
        """Move vouching responsibility from ``old_relayer`` to ``new_relayer``.

        Called on leader failover: the new leader inherits the old one's
        vouched entries so they survive until it re-syncs.  Returns the
        number of entries moved.
        """
        group = self._relayed_groups.pop(old_relayer, None)
        if not group:
            return 0
        entries = self._entries
        for nid in group:
            entries[nid].relayed_by = new_relayer
        dst = self._relayed_groups.get(new_relayer)
        if dst is None:
            self._relayed_groups[new_relayer] = group
        else:
            dst.update(group)
        moved = len(group)
        if old_relayer in self._vouch_times:
            prev = self._vouch_times[old_relayer]
            self._vouch_times[new_relayer] = max(prev, self._vouch_times.get(new_relayer, prev))
        return moved

    def relayed_entries(self, relayer: str) -> List[str]:
        """Node ids currently vouched for by ``relayer`` (sorted)."""
        return sorted(self._relayed_groups.get(relayer, ()))

    def clear(self) -> None:
        for entry in self._entries.values():
            entry.live = False
        self._entries.clear()
        self._vouch_times.clear()
        self._direct_heap.clear()
        self._relayed_groups.clear()
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node_id: str) -> bool:
        return node_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, node_id: str) -> Optional[NodeRecord]:
        entry = self._entries.get(node_id)
        return entry.record if entry else None

    def last_refresh(self, node_id: str) -> Optional[float]:
        entry = self._entries.get(node_id)
        return entry.last_refresh if entry else None

    def relayed_by(self, node_id: str) -> Optional[str]:
        entry = self._entries.get(node_id)
        return entry.relayed_by if entry else None

    def entry_view(self, node_id: str) -> Optional[_Entry]:
        """The live entry for ``node_id``, or None — single-lookup peek.

        Serves the informer's absorb hot path, which needs the stored
        record *and* its relayer for every op of every update message.
        Callers may retain the reference as a cache, but must check
        ``entry.live`` before every use and re-probe when it is False —
        removal is the only event that invalidates a cached entry (a
        re-added node always gets a fresh entry object).
        """
        return self._entries.get(node_id)

    def members(self) -> Tuple[str, ...]:
        """All known node ids, sorted (deterministic iteration).

        Served from a cache validated against :attr:`version`; rebuilding
        only happens after a structural change, not per heartbeat tick.
        """
        ver, cached = self._members_cache
        if ver != self._version:
            cached = tuple(sorted(self._entries))
            self._members_cache = (self._version, cached)
        return cached

    def records(self) -> Tuple[NodeRecord, ...]:
        """All records in ``members()`` order, cached like :meth:`members`."""
        ver, cached = self._records_cache
        if ver != self._version:
            entries = self._entries
            cached = tuple(entries[nid].record for nid in self.members())
            self._records_cache = (self._version, cached)
        return cached

    def snapshot(self) -> Dict[str, NodeRecord]:
        """Copy of the table, for bootstrap transfers and assertions.

        The returned dict is the caller's to mutate; it is materialised
        from a version-validated cache.
        """
        ver, cached = self._snapshot_cache
        if ver != self._version:
            cached = {nid: e.record for nid, e in self._entries.items()}
            self._snapshot_cache = (self._version, cached)
        return dict(cached)

    def lookup_service(
        self,
        service: str,
        partition: Optional[str] = None,
    ) -> List[NodeRecord]:
        """Find nodes providing ``service`` (regex) on ``partition``.

        ``partition`` may be ``None`` (any), a range list like ``"1-3,5"``
        (matches nodes hosting *any* listed partition), or a regular
        expression matched against individual partition numbers.
        """
        svc_re = re.compile(service)
        wanted: Optional[FrozenSet[int]] = None
        part_re: Optional[re.Pattern[str]] = None
        if partition is not None:
            if _RANGE_SPEC.match(partition):
                wanted = parse_partitions(partition)
            else:
                part_re = re.compile(partition)
        out: List[NodeRecord] = []
        for record in self.records():
            for name, parts in record.services.items():
                if not svc_re.fullmatch(name):
                    continue
                if wanted is not None and not (parts & wanted):
                    continue
                if part_re is not None and not any(
                    part_re.fullmatch(str(p)) for p in parts
                ):
                    continue
                out.append(record)
                break
        return out
