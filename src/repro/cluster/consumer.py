"""The consumer module: location-transparent service invocation.

The Neptune consumer module "automatically routes each request to an
appropriate node based on the service availability and runtime workload".
Here that means: look the service up in the node-local yellow-page
directory, optionally run a random-polling round, dispatch, and wait for
the reply under a timeout.

When the directory has **no** live provider, the consumer consults its
``unavailable_handler`` — the hook the membership proxy protocol plugs into
to forward the request to another data center (paper Fig. 6, step 1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.cluster.directory import Directory
from repro.cluster.loadbalance import LoadBalancer, RandomChoice
from repro.cluster.provider import POLL_SIZE, REQUEST_SIZE, SERVICE_PORT
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.process import Event

__all__ = ["ConsumerModule", "InvocationResult"]

_req_ids = itertools.count()

CONSUMER_PORT = "consumer"


@dataclass(frozen=True)
class InvocationResult:
    """Outcome of one service invocation.

    ``ok`` is False on timeout, unavailability, or a provider-side error;
    ``error`` then holds a short reason code.  ``latency`` is the wall time
    between ``invoke`` and completion, including any polling round.
    """

    ok: bool
    value: Any
    error: Optional[str]
    latency: float
    server: Optional[str]


@dataclass
class _Pending:
    completion: Event
    started: float
    timer: Any
    server: Optional[str] = None
    service: str = ""
    partition: Optional[int] = None
    data: Any = None
    retries_left: int = 0


class ConsumerModule:
    """Issues service requests from one node.

    Parameters
    ----------
    network, host:
        Transport endpoint.
    directory:
        The node-local yellow pages maintained by a membership protocol.
    balancer:
        Replica-selection policy (default uniform random).
    request_timeout:
        Seconds before an in-flight request is declared failed.
    poll_timeout:
        How long a random-polling round waits for load replies (the round
        finishes early once every polled replica has answered).
    retries:
        Failure shielding: on timeout the failed server is blacklisted for
        ``blacklist_ttl`` seconds and the request is re-dispatched to
        another replica, up to this many times.
    """

    def __init__(
        self,
        network: Network,
        host: str,
        directory: Directory,
        balancer: Optional[LoadBalancer] = None,
        request_timeout: float = 1.0,
        poll_timeout: float = 0.05,
        retries: int = 0,
        blacklist_ttl: float = 10.0,
    ) -> None:
        self.network = network
        self.host = host
        self.directory = directory
        self.balancer = balancer if balancer is not None else RandomChoice()
        self.request_timeout = request_timeout
        self.poll_timeout = poll_timeout
        self.retries = retries
        self.blacklist_ttl = blacklist_ttl
        self.rng = network.rng.stream(f"consumer.{host}")
        self._pending: Dict[int, _Pending] = {}
        self._polls: Dict[int, Dict[str, Any]] = {}
        self._blacklist: Dict[str, float] = {}
        #: hook(service, partition, data, completion_event) -> bool handled
        self.unavailable_handler: Optional[
            Callable[[str, Optional[int], Any, Event], bool]
        ] = None
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.network.bind(self.host, CONSUMER_PORT, self._on_packet)
        self._running = True

    def stop(self) -> None:
        self.network.transport.unbind(self.host, CONSUMER_PORT)
        for pending in self._pending.values():
            pending.timer.cancel()
        for poll in self._polls.values():
            poll["timer"].cancel()
        self._pending.clear()
        self._polls.clear()
        self._blacklist.clear()
        self._running = False

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def invoke(
        self,
        service: str,
        partition: Optional[int] = None,
        data: Any = None,
    ) -> Event:
        """Invoke ``(service, partition)``; returns an Event.

        The event succeeds with an :class:`InvocationResult` — including on
        failure, so callers always get exactly one completion.
        """
        completion = Event(self.network.sim)
        self._attempt(service, partition, data, completion, self.network.now, self.retries)
        return completion

    def _candidates(self, service: str, partition: Optional[int]) -> list[str]:
        part_spec = None if partition is None else str(partition)
        now = self.network.now
        out = []
        for rec in self.directory.lookup_service(service, part_spec):
            until = self._blacklist.get(rec.node_id)
            if until is not None:
                if until > now:
                    continue
                del self._blacklist[rec.node_id]
            out.append(rec.node_id)
        return out

    def _attempt(
        self,
        service: str,
        partition: Optional[int],
        data: Any,
        completion: Event,
        started: float,
        retries_left: int,
    ) -> None:
        candidates = self._candidates(service, partition)
        if not candidates:
            if self.unavailable_handler is not None and self.unavailable_handler(
                service, partition, data, completion
            ):
                return
            completion.succeed(
                InvocationResult(
                    False, None, "unavailable", self.network.now - started, None
                )
            )
            return
        if self.balancer.polls and len(candidates) > 1:
            self._start_poll_round(
                service, partition, data, candidates, completion, started, retries_left
            )
        else:
            target = self.balancer.choose(candidates, self.rng)
            self._dispatch(
                target, service, partition, data, completion, started, retries_left
            )

    # ------------------------------------------------------------------
    # Random polling round
    # ------------------------------------------------------------------
    def _start_poll_round(
        self,
        service: str,
        partition: Optional[int],
        data: Any,
        candidates: list[str],
        completion: Event,
        started: float,
        retries_left: int,
    ) -> None:
        poll_id = next(_req_ids)
        targets = self.balancer.poll_targets(candidates, self.rng)
        timer = self.network.sim.call_after(
            self.poll_timeout, self._finish_poll_round, poll_id
        )
        self._polls[poll_id] = {
            "loads": {},
            "expected": len(targets),
            "timer": timer,
            "args": (service, partition, data, candidates, completion, started, retries_left),
        }
        for target in targets:
            self.network.unicast(
                self.host,
                target,
                kind="load_poll",
                payload={"poll_id": poll_id, "reply_to": self.host, "reply_port": CONSUMER_PORT},
                size=POLL_SIZE,
                port=SERVICE_PORT,
            )

    def _finish_poll_round(self, poll_id: int) -> None:
        poll = self._polls.pop(poll_id, None)
        if poll is None:
            return
        poll["timer"].cancel()
        service, partition, data, candidates, completion, started, retries_left = poll["args"]
        target = self.balancer.pick_from_loads(poll["loads"], candidates, self.rng)
        self._dispatch(
            target, service, partition, data, completion, started, retries_left
        )

    # ------------------------------------------------------------------
    # Dispatch and replies
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        target: str,
        service: str,
        partition: Optional[int],
        data: Any,
        completion: Event,
        started: float,
        retries_left: int,
    ) -> None:
        req_id = next(_req_ids)
        timer = self.network.sim.call_after(self.request_timeout, self._on_timeout, req_id)
        self._pending[req_id] = _Pending(
            completion, started, timer, target, service, partition, data, retries_left
        )
        self.network.unicast(
            self.host,
            target,
            kind="svc_request",
            payload={
                "req_id": req_id,
                "service": service,
                "partition": partition,
                "data": data,
                "reply_to": self.host,
                "reply_port": CONSUMER_PORT,
            },
            size=REQUEST_SIZE,
            port=SERVICE_PORT,
        )

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "svc_reply":
            self._on_reply(packet)
        elif packet.kind == "load_reply":
            poll_id = packet.payload["poll_id"]
            poll = self._polls.get(poll_id)
            if poll is not None:
                poll["loads"][packet.payload["host"]] = packet.payload["load"]
                if len(poll["loads"]) >= poll["expected"]:
                    # All replies in: don't sit out the rest of the window.
                    self._finish_poll_round(poll_id)

    def _on_reply(self, packet: Packet) -> None:
        payload = packet.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return  # reply raced with timeout; already resolved
        pending.timer.cancel()
        pending.completion.succeed(
            InvocationResult(
                ok=payload["ok"],
                value=payload["value"],
                error=payload["error"],
                latency=self.network.now - pending.started,
                server=payload["server"],
            )
        )

    def _on_timeout(self, req_id: int) -> None:
        pending = self._pending.pop(req_id, None)
        if pending is None:
            return
        if pending.server is not None and self.retries > 0:
            # Failure shielding: remember the silent server regardless of
            # whether this particular request can still retry.
            self._blacklist[pending.server] = self.network.now + self.blacklist_ttl
        if pending.retries_left > 0 and pending.server is not None:
            self._attempt(
                pending.service,
                pending.partition,
                pending.data,
                pending.completion,
                pending.started,
                pending.retries_left - 1,
            )
            return
        pending.completion.succeed(
            InvocationResult(
                ok=False,
                value=None,
                error="timeout",
                latency=self.network.now - pending.started,
                server=pending.server,
            )
        )
