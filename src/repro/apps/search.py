"""The prototype document search service (paper Fig. 1).

A query enters through a protocol gateway, which

1. contacts an **index server** partition to retrieve the identifications
   of documents relevant to the query, then
2. contacts the **document server** partitions that translate those
   identifications into human-readable descriptions, and
3. compiles the final result.

Index and document data are partitioned and replicated; replicas are
discovered through the membership directory and balanced with random
polling.  For the Fig. 14 experiment the same engine runs in two data
centers: when the document-retrieval service fails in one, gateways reach
the other data center through the membership proxies.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.consumer import ConsumerModule, InvocationResult
from repro.cluster.loadbalance import LoadBalancer, RandomPolling
from repro.cluster.provider import ProviderModule
from repro.cluster.service import ServiceSpec
from repro.core.node import HierarchicalNode
from repro.core.proxy import MembershipProxy, install_proxy_forwarding
from repro.net.builders import build_two_datacenters
from repro.net.network import Network
from repro.protocols.base import deploy
from repro.sim.process import Event

__all__ = ["SearchWorkload", "SearchCluster", "SearchDeployment", "QueryResult"]

INDEX_SERVICE = "index"
DOC_SERVICE = "doc"


@dataclass(frozen=True)
class SearchWorkload:
    """Shape of the search service and its queries.

    ``docs_per_query`` document-server calls follow each index call
    (sequentially, like the paper's gateway workflow stepping through the
    partitions holding the result set).
    """

    index_partitions: int = 2
    doc_partitions: int = 3
    docs_per_query: int = 2
    index_service_time: float = 0.030
    doc_service_time: float = 0.010

    def index_partition(self, query: str) -> int:
        digest = hashlib.sha256(query.encode()).digest()
        return digest[0] % self.index_partitions

    def doc_partitions_for(self, query: str) -> List[int]:
        digest = hashlib.sha256(query.encode()).digest()
        count = min(self.docs_per_query, self.doc_partitions)
        start = digest[1] % self.doc_partitions
        return [(start + i) % self.doc_partitions for i in range(count)]


@dataclass(frozen=True)
class QueryResult:
    """Final compiled result of one search query (gateway step 4)."""

    ok: bool
    latency: float
    value: Optional[Dict[str, Any]]
    error: Optional[str]


def _index_handler(partition: int, data: Any) -> Dict[str, Any]:
    """Synthetic index lookup: deterministic doc ids for the query."""
    query = data["query"]
    digest = hashlib.sha256(f"{partition}:{query}".encode()).hexdigest()
    return {"doc_ids": [f"{partition}-{digest[i:i + 4]}" for i in range(0, 12, 4)]}


def _doc_handler(partition: int, data: Any) -> Dict[str, Any]:
    """Synthetic description fetch for a list of doc ids."""
    return {
        "descriptions": {doc_id: f"desc({doc_id})@p{partition}" for doc_id in data["doc_ids"]}
    }


class QueryEngine:
    """Per-gateway query orchestration (paper Fig. 1 steps 1-4)."""

    def __init__(
        self,
        network: Network,
        host: str,
        member_node: HierarchicalNode,
        workload: SearchWorkload,
        balancer: Optional[LoadBalancer] = None,
        proxy_addr: Optional[str] = None,
        request_timeout: float = 1.0,
    ) -> None:
        self.network = network
        self.host = host
        self.workload = workload
        self.consumer = ConsumerModule(
            network,
            host,
            member_node.directory,
            balancer=balancer if balancer is not None else RandomPolling(d=2),
            request_timeout=request_timeout,
            retries=3,
            blacklist_ttl=15.0,
        )
        self.consumer.start()
        if proxy_addr is not None:
            install_proxy_forwarding(self.consumer, proxy_addr)

    def query(self, query: str) -> Event:
        """Run one search query; resolves to a :class:`QueryResult`."""
        completion = Event(self.network.sim)
        started = self.network.now
        state: Dict[str, Any] = {"descriptions": {}}

        def fail(error: str) -> None:
            completion.succeed(
                QueryResult(False, self.network.now - started, None, error)
            )

        def on_index(result: InvocationResult) -> None:
            if not result.ok:
                fail(f"index:{result.error}")
                return
            state["doc_ids"] = result.value["doc_ids"]
            doc_parts = self.workload.doc_partitions_for(query)
            step_docs(doc_parts, 0)

        def step_docs(parts: List[int], idx: int) -> None:
            if idx >= len(parts):
                completion.succeed(
                    QueryResult(
                        True,
                        self.network.now - started,
                        {"query": query, "descriptions": dict(state["descriptions"])},
                        None,
                    )
                )
                return
            ev = self.consumer.invoke(
                DOC_SERVICE, parts[idx], {"doc_ids": state["doc_ids"]}
            )

            def on_doc(result: InvocationResult, parts=parts, idx=idx) -> None:
                if not result.ok:
                    fail(f"doc:{result.error}")
                    return
                state["descriptions"].update(result.value["descriptions"])
                step_docs(parts, idx + 1)

            ev._add_waiter(on_doc)

        ev = self.consumer.invoke(
            INDEX_SERVICE,
            self.workload.index_partition(query),
            {"query": query},
        )
        ev._add_waiter(on_index)
        return completion


@dataclass
class SearchCluster:
    """The search backend inside one data center.

    Index and doc providers are placed round-robin on their host lists and
    registered with the co-located membership nodes, so availability flows
    through the membership protocol like any other service.
    """

    network: Network
    nodes: Dict[str, HierarchicalNode]
    index_hosts: Sequence[str]
    doc_hosts: Sequence[str]
    workload: SearchWorkload = field(default_factory=SearchWorkload)
    providers: Dict[str, ProviderModule] = field(default_factory=dict)

    def deploy(self) -> None:
        """Start providers and publish services through membership."""
        for i, host in enumerate(self.index_hosts):
            partition = i % self.workload.index_partitions
            self._provide(
                host,
                ServiceSpec.make(
                    INDEX_SERVICE, str(partition), service_time=self.workload.index_service_time
                ),
                _index_handler,
            )
        for i, host in enumerate(self.doc_hosts):
            partition = i % self.workload.doc_partitions
            self._provide(
                host,
                ServiceSpec.make(
                    DOC_SERVICE, str(partition), service_time=self.workload.doc_service_time
                ),
                _doc_handler,
            )

    def _provide(self, host: str, spec: ServiceSpec, handler) -> None:
        provider = self.providers.get(host)
        if provider is None:
            provider = ProviderModule(self.network, host)
            provider.start()
            self.providers[host] = provider
        provider.register(spec, handler)
        self.nodes[host].register_service(spec)

    # ------------------------------------------------------------------
    # Failure injection for the Fig. 14 scenario
    # ------------------------------------------------------------------
    def fail_service_hosts(self, hosts: Sequence[str]) -> None:
        """Kill the given backend hosts (provider + membership daemon)."""
        for host in hosts:
            provider = self.providers.get(host)
            if provider is not None:
                provider.stop()
            self.nodes[host].stop()
            self.network.crash_host(host)

    def recover_service_hosts(self, hosts: Sequence[str]) -> None:
        for host in hosts:
            self.network.recover_host(host)
            self.nodes[host].start()
            provider = self.providers.get(host)
            if provider is not None:
                provider.start()


class SearchDeployment:
    """A complete two-data-center search deployment (Fig. 14 scenario).

    Layout per data center (``hosts_per_network`` hosts x ``networks``):
    the first two hosts run membership proxies, the next ones run index
    and doc servers, and the last host runs the protocol gateway.
    """

    VIP = {"dcA": "vip-dcA", "dcB": "vip-dcB"}

    def __init__(
        self,
        networks: int = 2,
        hosts_per_network: int = 5,
        seed: int = 0,
        workload: Optional[SearchWorkload] = None,
        index_replicas: int = 2,
        doc_replicas: int = 3,
        gateway_timeout: float = 1.0,
    ) -> None:
        self.workload = workload if workload is not None else SearchWorkload()
        topo, dca, dcb = build_two_datacenters(networks, hosts_per_network)
        self.network = Network(topo, seed=seed)
        self.hosts = {"dcA": dca, "dcB": dcb}
        self.nodes: Dict[str, HierarchicalNode] = {}
        self.clusters: Dict[str, SearchCluster] = {}
        self.proxies: List[MembershipProxy] = []
        self.engines: Dict[str, QueryEngine] = {}

        for dc, hostlist in self.hosts.items():
            self.nodes.update(deploy(HierarchicalNode, self.network, hostlist))
        for dc, hostlist in self.hosts.items():
            n_index = self.workload.index_partitions * index_replicas
            n_doc = self.workload.doc_partitions * doc_replicas
            needed = 2 + n_index + n_doc + 1
            if len(hostlist) < needed:
                raise ValueError(
                    f"{dc} needs at least {needed} hosts "
                    f"(2 proxies + {n_index} index + {n_doc} doc + 1 gateway)"
                )
            proxy_hosts = hostlist[:2]
            index_hosts = hostlist[2 : 2 + n_index]
            doc_hosts = hostlist[2 + n_index : 2 + n_index + n_doc]
            gateway_host = hostlist[-1]
            cluster = SearchCluster(
                self.network, self.nodes, index_hosts, doc_hosts, self.workload
            )
            cluster.deploy()
            self.clusters[dc] = cluster
            for h in proxy_hosts:
                proxy = MembershipProxy(
                    self.network, h, dc, self.VIP[dc], self.VIP, self.nodes[h]
                )
                proxy.start()
                self.proxies.append(proxy)
            self.engines[dc] = QueryEngine(
                self.network,
                gateway_host,
                self.nodes[gateway_host],
                self.workload,
                proxy_addr=self.VIP[dc],
                request_timeout=gateway_timeout,
            )

    # ------------------------------------------------------------------
    def doc_hosts(self, dc: str) -> List[str]:
        return list(self.clusters[dc].doc_hosts)

    def fail_doc_service(self, dc: str) -> None:
        """The paper's t=20 s event: the retrieval service in one DC dies."""
        self.clusters[dc].fail_service_hosts(self.doc_hosts(dc))

    def recover_doc_service(self, dc: str) -> None:
        self.clusters[dc].recover_service_hosts(self.doc_hosts(dc))

    def warm_up(self, duration: float = 12.0) -> None:
        """Let membership and proxies converge before measuring."""
        self.network.run(until=self.network.now + duration)
