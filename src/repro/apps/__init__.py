"""Example applications built on the membership service.

:mod:`repro.apps.search` reproduces the paper's prototype document search
engine (Fig. 1): protocol gateways, partitioned/replicated index servers
and document servers, random-polling load balancing, and (for the Fig. 14
experiment) multi-data-center failover through membership proxies.
"""

from repro.apps.search import SearchCluster, SearchDeployment, SearchWorkload

__all__ = ["SearchCluster", "SearchDeployment", "SearchWorkload"]
