"""Scripted comparative experiments over the three membership schemes.

:class:`FailureExperiment` reproduces the Section 6 methodology on any of
the schemes: build the testbed topology (k networks x m hosts behind one
router), start the protocol everywhere, warm up, optionally measure a
steady-state bandwidth window, kill one node, and extract detection /
convergence times from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.core.config import HierarchicalConfig
from repro.core.node import HierarchicalNode
from repro.metrics.collectors import (
    BandwidthStats,
    bandwidth_stats,
    convergence_time,
    detection_time,
)
from repro.net.builders import build_switched_cluster
from repro.net.network import Network
from repro.protocols.alltoall import AllToAllNode
from repro.protocols.base import MembershipNode, ProtocolConfig, deploy
from repro.protocols.gossip import GossipNode

__all__ = ["SCHEMES", "make_scheme_cluster", "FailureExperiment", "FailureResult"]

#: scheme name -> node class, as compared in the paper's Section 6.
SCHEMES: Dict[str, Type[MembershipNode]] = {
    "all-to-all": AllToAllNode,
    "gossip": GossipNode,
    "hierarchical": HierarchicalNode,
}


def make_scheme_cluster(
    scheme: str,
    networks: int,
    hosts_per_network: int,
    seed: int = 0,
    loss_rate: float = 0.0,
    config: Optional[ProtocolConfig] = None,
    **node_kwargs: object,
) -> Tuple[Network, List[str], Dict[str, MembershipNode]]:
    """Deploy one scheme on the paper's testbed shape.

    The evaluation's emulation maps each multicast channel to one network
    of 20 hosts ("Each multicast channel hosts 20 nodes... five networks
    for 100 nodes", Section 6.2).  Extra keyword arguments are forwarded
    to the node constructor (e.g. ``use_fast_path=False`` for A/B runs).
    """
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)}")
    topo, hosts = build_switched_cluster(networks, hosts_per_network)
    net = Network(topo, seed=seed, loss_rate=loss_rate)
    cls = SCHEMES[scheme]
    kwargs: Dict[str, object] = dict(node_kwargs)
    if scheme == "gossip":
        kwargs["seeds"] = hosts
    if config is None and scheme == "hierarchical":
        config = HierarchicalConfig()
    nodes = deploy(cls, net, hosts, config=config, **kwargs)
    return net, hosts, nodes


@dataclass(frozen=True)
class FailureResult:
    """Outcome of one kill-one-node run."""

    scheme: str
    num_nodes: int
    detection: Optional[float]
    convergence: Optional[float]
    bandwidth: Optional[BandwidthStats]
    victim: str
    observers: int


@dataclass
class FailureExperiment:
    """One run: warm up, (measure bandwidth), kill a node, observe.

    Parameters mirror Section 6.2: 1 Hz heartbeats, MAX_LOSS 5, 228-byte
    member descriptions, 20 nodes per network.
    """

    scheme: str
    networks: int
    hosts_per_network: int
    seed: int = 0
    loss_rate: float = 0.0
    warmup: float = 20.0
    bandwidth_window: float = 10.0
    observe: float = 40.0
    config: Optional[ProtocolConfig] = None
    measure_bandwidth: bool = True
    kill_leader: bool = False

    def run(self) -> FailureResult:
        net, hosts, nodes = make_scheme_cluster(
            self.scheme,
            self.networks,
            self.hosts_per_network,
            seed=self.seed,
            loss_rate=self.loss_rate,
            config=self.config,
        )
        net.run(until=self.warmup)
        stats: Optional[BandwidthStats] = None
        if self.measure_bandwidth:
            net.meter.reset()
            net.run(until=net.now + self.bandwidth_window)
            stats = bandwidth_stats(net.meter, self.bandwidth_window, len(hosts))

        victim = self._pick_victim(hosts, nodes)
        nodes[victim].stop()
        net.crash_host(victim)
        kill_time = net.now
        net.run(until=kill_time + self.observe)

        survivors = [h for h in hosts if h != victim]
        return FailureResult(
            scheme=self.scheme,
            num_nodes=len(hosts),
            detection=detection_time(net.trace, victim, kill_time),
            convergence=convergence_time(
                net.trace, victim, kill_time, expected_observers=survivors
            ),
            bandwidth=stats,
            victim=victim,
            observers=len(
                {
                    r.node
                    for r in net.trace.records(kind="member_down", since=kill_time)
                    if r.data.get("target") == victim
                }
            ),
        )

    def _pick_victim(self, hosts: List[str], nodes: Dict[str, MembershipNode]) -> str:
        """Middle-of-a-network host; optionally a group leader instead.

        The paper kills an ordinary node; for the hierarchical scheme we
        additionally avoid group leaders unless ``kill_leader`` is set (a
        leader death exercises failover, a different scenario).
        """
        candidates = list(hosts)
        if self.scheme == "hierarchical":
            leaders = {
                h for h, n in nodes.items() if isinstance(n, HierarchicalNode) and n.levels() != [0]
            }
            pool = [h for h in candidates if (h in leaders) == self.kill_leader]
            if pool:
                candidates = pool
        return candidates[len(candidates) // 2]
