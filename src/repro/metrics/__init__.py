"""Measurement harness for the evaluation experiments.

:mod:`repro.metrics.collectors` computes the paper's three protocol
metrics — failure-detection time, view-convergence time, and bandwidth
consumption — from traces and the bandwidth meter, plus a membership
**accuracy** time-series (fraction of directory entries matching ground
truth) used by the extended analyses.

:mod:`repro.metrics.experiment` runs scripted scenarios (warm-up, kill,
observe) for any of the three membership schemes, producing the data
behind Figs. 11, 12 and 13.
"""

from repro.metrics.collectors import (
    accuracy_timeseries,
    bandwidth_stats,
    convergence_time,
    detection_time,
    view_change_curve,
)
from repro.metrics.experiment import (
    FailureExperiment,
    FailureResult,
    SCHEMES,
    make_scheme_cluster,
)

__all__ = [
    "accuracy_timeseries",
    "bandwidth_stats",
    "convergence_time",
    "detection_time",
    "FailureExperiment",
    "FailureResult",
    "SCHEMES",
    "make_scheme_cluster",
    "view_change_curve",
]
