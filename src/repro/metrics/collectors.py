"""Metric computation from traces and bandwidth meters.

The definitions follow the paper's Section 4 and the measurement method of
Section 6.4: "we find the earliest time when the failure is recorded in
these log files as the failure detection time, and the latest record time
of the failure as the view convergence time."  Our trace records are the
log files, with exact virtual timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.bandwidth import BandwidthMeter
from repro.sim.trace import Trace

__all__ = [
    "detection_time",
    "convergence_time",
    "bandwidth_stats",
    "BandwidthStats",
    "accuracy_timeseries",
    "view_change_curve",
]


def _down_times(trace: Trace, target: str, since: float) -> List[float]:
    return [
        r.time
        for r in trace.records(kind="member_down", since=since)
        if r.data.get("target") == target
    ]


def detection_time(trace: Trace, target: str, kill_time: float) -> Optional[float]:
    """Earliest time any node recorded ``target``'s failure, minus kill time.

    Returns ``None`` if no node ever detected the failure.
    """
    times = _down_times(trace, target, kill_time)
    return min(times) - kill_time if times else None


def convergence_time(
    trace: Trace,
    target: str,
    kill_time: float,
    expected_observers: Optional[Iterable[str]] = None,
) -> Optional[float]:
    """Latest failure-record time across nodes, minus kill time.

    With ``expected_observers`` the result is ``None`` unless every listed
    node recorded the failure — an incomplete view must not masquerade as
    fast convergence.
    """
    records = [
        r
        for r in trace.records(kind="member_down", since=kill_time)
        if r.data.get("target") == target
    ]
    if not records:
        return None
    if expected_observers is not None:
        observed = {r.node for r in records}
        if not set(expected_observers) <= observed:
            return None
    return max(r.time for r in records) - kill_time


def view_change_curve(
    trace: Trace,
    target: str,
    observers: Iterable[str],
    since: float,
    kind: str = "member_down",
) -> List[Tuple[float, int]]:
    """Cumulative count of observers that recorded ``kind`` for ``target``.

    The Fig. 13/14 recovery curves: x = seconds after the event at
    ``since``, y = how many of ``observers`` have logged the view change
    by then.  Each observer counts once, at its earliest record.
    """
    watch = set(observers)
    firsts: Dict[str, float] = {}
    for rec in trace.records(kind=kind, since=since):
        if rec.data.get("target") != target or rec.node not in watch:
            continue
        if rec.node not in firsts or rec.time < firsts[rec.node]:
            firsts[rec.node] = rec.time
    curve: List[Tuple[float, int]] = []
    for i, t in enumerate(sorted(firsts.values()), start=1):
        curve.append((t - since, i))
    return curve


@dataclass(frozen=True)
class BandwidthStats:
    """Aggregate traffic over a measurement window (paper Fig. 11 method)."""

    duration: float
    total_rx_bytes: int
    total_rx_packets: int
    aggregate_rate: float  # bytes/second summed over all nodes
    per_node_rate: float  # mean bytes/second per node
    packet_rate: float  # packets/second summed over all nodes


def bandwidth_stats(meter: BandwidthMeter, duration: float, num_nodes: int) -> BandwidthStats:
    """Summarise a meter over an exact window (reset it at window start)."""
    total_bytes = meter.bytes(direction="rx")
    total_packets = meter.packets(direction="rx")
    rate = total_bytes / duration if duration > 0 else 0.0
    return BandwidthStats(
        duration=duration,
        total_rx_bytes=total_bytes,
        total_rx_packets=total_packets,
        aggregate_rate=rate,
        per_node_rate=rate / num_nodes if num_nodes else 0.0,
        packet_rate=total_packets / duration if duration > 0 else 0.0,
    )


def accuracy_timeseries(
    trace: Trace,
    all_hosts: List[str],
    alive_intervals: Dict[str, List[Tuple[float, float]]],
    horizon: float,
    step: float = 1.0,
) -> List[Tuple[float, float]]:
    """Mean membership accuracy over time across all live observers.

    ``alive_intervals`` maps each host to the [start, end) intervals during
    which it was actually up.  Accuracy for an observer at time *t* is the
    Jaccard similarity between its directory view (reconstructed from
    member_up/member_down trace events) and the ground-truth live set.
    """

    def alive(host: str, t: float) -> bool:
        return any(lo <= t < hi for lo, hi in alive_intervals.get(host, []))

    # Reconstruct view deltas per observer.  "view_reset" marks a daemon
    # (re)start wiping the directory — without it a restarted node would
    # appear to still hold its pre-crash view.
    events: Dict[str, List[Tuple[float, str, str]]] = {h: [] for h in all_hosts}
    for rec in trace.records(kind="member_up"):
        if rec.node in events:
            events[rec.node].append((rec.time, "up", rec.data["target"]))
    for rec in trace.records(kind="member_down"):
        if rec.node in events:
            events[rec.node].append((rec.time, "down", rec.data["target"]))
    for rec in trace.records(kind="view_reset"):
        if rec.node in events:
            events[rec.node].append((rec.time, "reset", ""))
    for host in events:
        events[host].sort()

    out: List[Tuple[float, float]] = []
    cursors = {h: 0 for h in all_hosts}
    views: Dict[str, set] = {h: {h} for h in all_hosts}
    t = 0.0
    while t <= horizon:
        truth = {h for h in all_hosts if alive(h, t)}
        scores = []
        for host in all_hosts:
            if not alive(host, t):
                continue
            evs = events[host]
            i = cursors[host]
            while i < len(evs) and evs[i][0] <= t:
                _time, op, target = evs[i]
                if op == "up":
                    views[host].add(target)
                elif op == "reset":
                    views[host] = {host}
                else:
                    views[host].discard(target)
                i += 1
            cursors[host] = i
            view = views[host] | {host}
            union = view | truth
            scores.append(len(view & truth) / len(union) if union else 1.0)
        out.append((t, sum(scores) / len(scores) if scores else 1.0))
        t += step
    return out
