"""SWIM-style failure detection (Das, Gupta & Motivala, DSN 2002).

Each probe round, pick one uniformly-random member and ping it directly;
if no ack lands within ``probe_timeout``, ask ``indirect_probes`` random
relays to ping it on our behalf (the ack still comes straight back to
us); if the second timeout also lapses, *suspect* the peer rather than
declare it — suspicion converts to a death declaration only after
``suspicion_timeout`` more seconds with no proof of life.  Any heartbeat
or ack from the peer meanwhile refutes the suspicion; a heartbeat with
an incarnation at least as new as a standing *declaration* clears that
too (the protocol layer's refute-death bump rides in on exactly such a
heartbeat).

Determinism: targets and relays come from the dedicated RNG stream
``detect.swim.<node>`` (named streams are independently seeded, so
adding this one never perturbs existing draws), rounds ride
``call_every`` with a stream-drawn phase, and the probe timeouts are
epoch-guarded ``call_once`` timers tracked so :meth:`SwimDetector.stop`
cancels every one of them.

Scheme integration: probes travel as unicast ``probe``/``probe-req``/
``probe-ack`` datagrams (:class:`~repro.detect.base.UnicastProber`) on
the scheme's chosen port; group queries honour plain channel silence as
a fallback deadline, so hierarchical semantics built on per-channel
silence (leader abdication vs. death) are preserved — SWIM only ever
*adds* earlier, probe-driven declarations on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.detect.base import FailureDetector, Scope

if TYPE_CHECKING:
    import random

    from repro.core.groups import GroupState, PeerState
    from repro.protocols.base import ProtocolConfig
    from repro.runtime.ports import NodeRuntime, TimerHandle

__all__ = ["SwimDetector"]


class SwimDetector(FailureDetector):
    """Ping / indirect ping-req / suspicion detector."""

    name = "swim"
    passive = False
    uses_probes = True

    def __init__(self, config: "ProtocolConfig", runtime: "NodeRuntime") -> None:
        super().__init__(config, runtime)
        self._rng: Optional["random.Random"] = None
        self._round: Optional["TimerHandle"] = None
        #: live probe-timeout one-shots, keyed by (target, seq) so stop()
        #: can cancel them all (runtime.deactivate would too, but the
        #: detector must be stoppable independently of the node's life).
        self._timers: Dict[Tuple[str, int], "TimerHandle"] = {}
        #: in-flight probe sequence per target; an ack/heartbeat clears it
        self._pending: Dict[str, int] = {}
        self._seq = 0
        #: peer -> (suspected incarnation, declaration deadline)
        self._suspects: Dict[str, Tuple[int, float]] = {}
        #: peer -> incarnation it was declared dead at
        self._declared: Dict[str, int] = {}
        #: best known incarnation per peer (from heartbeat observations)
        self._incarnations: Dict[str, int] = {}
        #: last heartbeat time per peer — the flat schemes have no
        #: PeerState stamps, so the silence fallback reads this map
        self._last_heard: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._clear()
        rng = self.runtime.rng_stream(f"detect.swim.{self.runtime.node_id}")
        self._rng = rng
        period = self.config.probe_period
        self._round = self.runtime.call_every(
            period, self._probe_round, first_delay=rng.uniform(0, period)
        )

    def stop(self) -> None:
        if self._round is not None:
            self._round.cancel()
            self._round = None
        for handle in self._timers.values():
            handle.cancel()
        self._clear()

    def _clear(self) -> None:
        self._timers.clear()
        self._pending.clear()
        self._suspects.clear()
        self._declared.clear()
        self._incarnations.clear()
        self._last_heard.clear()
        self._seq = 0

    # ------------------------------------------------------------------
    # Probe machinery
    # ------------------------------------------------------------------
    def _candidates(self) -> List[str]:
        return [m for m in self._members() if m not in self._declared]

    def _probe_round(self) -> None:
        prober = self.prober
        rng = self._rng
        if prober is None or rng is None:
            return
        pool = self._candidates()
        if not pool:
            return
        target = rng.choice(pool)
        if target in self._pending:
            return  # previous probe of this peer still in flight
        self._seq += 1
        seq = self._seq
        self._pending[target] = seq
        prober.ping(target)
        self._timers[(target, seq)] = self.runtime.call_once(
            self.config.probe_timeout, self._direct_timeout, target, seq
        )

    def _direct_timeout(self, target: str, seq: int) -> None:
        self._timers.pop((target, seq), None)
        if self._pending.get(target) != seq:
            return  # acked (or refuted by a heartbeat) in the meantime
        prober = self.prober
        rng = self._rng
        relays = [m for m in self._candidates() if m != target]
        k = min(self.config.indirect_probes, len(relays))
        if prober is None or rng is None or k == 0:
            self._pending.pop(target, None)
            self._suspect(target)
            return
        for relay in rng.sample(relays, k):
            prober.ping_req(relay, target)
        self._timers[(target, seq)] = self.runtime.call_once(
            self.config.probe_timeout, self._indirect_timeout, target, seq
        )

    def _indirect_timeout(self, target: str, seq: int) -> None:
        self._timers.pop((target, seq), None)
        if self._pending.get(target) != seq:
            return
        self._pending.pop(target, None)
        self._suspect(target)

    def _suspect(self, target: str) -> None:
        if target in self._suspects or target in self._declared:
            return  # keep the earliest deadline; never re-arm per round
        inc = self._incarnations.get(target, 0)
        deadline = self.runtime.now + self.config.suspicion_timeout
        self._suspects[target] = (inc, deadline)
        self.runtime.emit("suspect", target=target, incarnation=inc)

    def _promote_suspects(self, now: float) -> None:
        """Expired suspicions become declarations (checked at query time)."""
        expired = [t for t, (_, deadline) in self._suspects.items() if now >= deadline]
        for target in expired:
            inc, _ = self._suspects.pop(target)
            self._declared[target] = inc
            self.runtime.emit("suspect_expired", target=target, incarnation=inc)

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def observe_heartbeat(
        self, scope: Scope, peer_id: str, now: float, incarnation: int = 0
    ) -> None:
        self._last_heard[peer_id] = now
        known = self._incarnations.get(peer_id)
        if known is None or incarnation > known:
            self._incarnations[peer_id] = incarnation
        self._pending.pop(peer_id, None)
        suspected = self._suspects.get(peer_id)
        if suspected is not None and incarnation >= suspected[0]:
            del self._suspects[peer_id]
            self.runtime.emit("suspect_refuted", target=peer_id, incarnation=incarnation)
        declared = self._declared.get(peer_id)
        if declared is not None and incarnation >= declared:
            # Direct proof of life beats our local declaration; a refuted
            # node announces a bumped incarnation, but even a same-inc
            # heartbeat is our own first-hand evidence, not a rumor.
            del self._declared[peer_id]

    def observe_ack(self, peer_id: str, now: float) -> None:
        self._pending.pop(peer_id, None)
        if peer_id in self._suspects:
            del self._suspects[peer_id]
            self.runtime.emit("suspect_refuted", target=peer_id, incarnation=-1)

    def forget(self, peer_id: str, scope: Optional[Scope] = None) -> None:
        self._pending.pop(peer_id, None)
        self._suspects.pop(peer_id, None)
        self._declared.pop(peer_id, None)
        self._incarnations.pop(peer_id, None)
        self._last_heard.pop(peer_id, None)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def silent_peers(
        self, scope: Scope, group: "GroupState", now: float, timeout: float
    ) -> List["PeerState"]:
        self._promote_suspects(now)
        declared = self._declared
        return [
            p
            for p in group.peers.values()
            if p.node_id in declared or now - p.last_heard > timeout
        ]

    def silent_ids(
        self, scope: Scope, candidates: Sequence[str], now: float, timeout: float
    ) -> List[str]:
        self._promote_suspects(now)
        declared = self._declared
        last = self._last_heard
        return [
            nid
            for nid in candidates
            if nid in declared
            or (lh := last.get(nid)) is not None
            and now - lh > timeout
        ]
