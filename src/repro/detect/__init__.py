"""Pluggable failure detection — the repo's third swappable axis.

The paper's protocol welds one detector into its roles: a peer is dead
after ``MAX_LOSS`` consecutive missed heartbeats.  This package extracts
that decision behind a small strategy interface so the *detector* varies
independently of the *dissemination scheme* (hierarchical / all-to-all /
gossip) and of the *runtime* (simulated / asyncio UDP):

===================  ========================================================
``counter``          :class:`~repro.detect.counter.CounterDetector` — the
                     paper's MAX_LOSS deadline, passive, byte-identical to
                     the pre-refactor code paths (golden traces pin this)
``swim``             :class:`~repro.detect.swim.SwimDetector` — SWIM-style
                     direct ping, *k* indirect ping-req relays, suspicion
                     with incarnation refutation
``phi-accrual``      :class:`~repro.detect.phi.PhiAccrualDetector` — adaptive
                     inter-arrival window, configurable φ threshold
===================  ========================================================

Detectors speak only :class:`~repro.runtime.ports.NodeRuntime` ports, so
every strategy runs unchanged under ``SimRuntime`` and ``AsyncRuntime``.
``repro.chaos.lab`` runs the full (detector × scheme) BDT/BCT matrix of
the paper's Section 4 analysis; ``docs/DETECTORS.md`` has the contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

from repro.detect.base import (
    FailureDetector,
    Prober,
    UnicastProber,
    handle_probe_packet,
)
from repro.detect.bounds import config_detection_bound, detection_bound
from repro.detect.counter import CounterDetector
from repro.detect.phi import PhiAccrualDetector
from repro.detect.swim import SwimDetector

if TYPE_CHECKING:
    from repro.protocols.base import ProtocolConfig
    from repro.runtime.ports import NodeRuntime

__all__ = [
    "DETECTORS",
    "FailureDetector",
    "Prober",
    "UnicastProber",
    "CounterDetector",
    "SwimDetector",
    "PhiAccrualDetector",
    "make_detector",
    "detection_bound",
    "config_detection_bound",
    "handle_probe_packet",
]

#: detector name -> strategy class (the names the config layer accepts).
DETECTORS: Dict[str, Type[FailureDetector]] = {
    CounterDetector.name: CounterDetector,
    SwimDetector.name: SwimDetector,
    PhiAccrualDetector.name: PhiAccrualDetector,
}


def make_detector(config: "ProtocolConfig", runtime: "NodeRuntime") -> FailureDetector:
    """Instantiate the detector named by ``config.detector``.

    Raised loudly on typos: a silently-defaulted detector would make every
    comparison in the BDT/BCT lab a lie.
    """
    cls = DETECTORS.get(config.detector)
    if cls is None:
        raise ValueError(
            f"unknown detector {config.detector!r}; pick one of {sorted(DETECTORS)}"
        )
    return cls(config, runtime)
