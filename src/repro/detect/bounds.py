"""Advertised detection bounds — one formula source for every consumer.

The paper's Section 4 analysis multiplies bandwidth by *detection time*;
with the detector now pluggable, that time depends on the strategy, not
just ``max_loss``.  Everything that quotes a detection time — the
closed-form models in :mod:`repro.analysis.models`,
``ProtocolConfig.detection_time``, the chaos lab's per-pair gates —
routes through :func:`detection_bound` so the plots, the JSON artifacts
and the CI checks can never disagree about what a strategy promises.

Formulas (worst-typical seconds from failure to first declaration):

``counter``
    ``max_loss / freq`` — the paper's constant bound; for the gossip
    scheme the counter deadline is the van Renesse ``t_fail`` and grows
    as ``O(log n)`` (:func:`repro.protocols.gossip.gossip_fail_time`).
``swim``
    expected wait until some member's next probe round picks the dead
    node (``probe_period / (1 - e^-1)`` with every member probing one
    uniformly-random peer per round), plus the direct and indirect probe
    timeouts, plus the suspicion deadline.
``phi-accrual``
    under the exponential inter-arrival model, ``φ(t) = t / (mean·ln 10)``
    crosses the threshold after ``phi_threshold · ln 10 · mean`` seconds
    of silence; with a healthy peer ``mean ≈ heartbeat_period``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.protocols.base import ProtocolConfig

__all__ = ["detection_bound", "config_detection_bound"]

#: 1 - e^-1: per-round probability a given peer is probed by at least one
#: of n-1 members each probing one uniform target, in the large-n limit.
_PICK_PROB = 1.0 - math.exp(-1.0)

LN10 = math.log(10.0)

#: bursty epidemic arrivals roughly double the inter-observation mean a
#: φ window learns under the gossip scheme (see the phi branch below).
_GOSSIP_ARRIVAL_DISPERSION = 2.0


def detection_bound(
    detector: str,
    *,
    period: float,
    max_loss: int,
    n: int = 2,
    scheme: str = "hierarchical",
    phi_threshold: float = 8.0,
    suspicion_timeout: float = 2.0,
    probe_timeout: float = 0.5,
    probe_period: Optional[float] = None,
    gossip_mistake_prob: float = 0.001,
) -> float:
    """Advertised detection bound of ``detector`` at cluster size ``n``.

    ``scheme`` only matters for the counter strategy, whose deadline under
    gossip is the log-growing ``t_fail`` rather than ``max_loss × period``.
    """
    if detector == "counter":
        if scheme == "gossip":
            from repro.protocols.gossip import gossip_fail_time

            return gossip_fail_time(n, period, gossip_mistake_prob)
        return max_loss * period
    if detector == "swim":
        pp = probe_period if probe_period is not None else period
        return pp / _PICK_PROB + 2.0 * probe_timeout + suspicion_timeout
    if detector == "phi-accrual":
        if scheme == "gossip":
            # Gossip feeds φ with merged counter-increase arrivals, not
            # raw heartbeats: the epidemic delivers increases in bursts
            # (a merge can jump a counter by several steps but counts as
            # one observation), roughly doubling the effective mean
            # inter-arrival the window learns.
            return phi_threshold * LN10 * period * _GOSSIP_ARRIVAL_DISPERSION
        return phi_threshold * LN10 * period
    raise ValueError(f"unknown detector {detector!r}")


def config_detection_bound(
    config: "ProtocolConfig", n: int = 2, scheme: str = "hierarchical"
) -> float:
    """:func:`detection_bound` with every knob read off a protocol config."""
    return detection_bound(
        config.detector,
        period=config.heartbeat_period,
        max_loss=config.max_loss,
        n=n,
        scheme=scheme,
        phi_threshold=config.phi_threshold,
        suspicion_timeout=config.suspicion_timeout,
        probe_timeout=config.probe_timeout,
        probe_period=config.probe_period,
        gossip_mistake_prob=config.gossip_mistake_prob,
    )
