"""The failure-detector strategy interface and its probe wire helpers.

A :class:`FailureDetector` answers one question for the roles that own
liveness bookkeeping — *which of these peers should be declared dead
now?* — and is fed two kinds of evidence: heartbeat observations from
the scheme's receive path and ack observations from its own probe
traffic.  The split mirrors the repo's other port layers: schemes keep
their freshness bookkeeping (``PeerState.last_heard``, directory
refresh times) and delegate the *decision*; detectors keep their own
soft state (suspicions, inter-arrival windows) and never touch scheme
structures beyond the read-only views passed into the query methods.

Scopes
------
Every observation and query carries a ``scope`` — the hierarchical
scheme passes the channel level (an ``int``), the flat schemes pass a
constant string.  Passive detectors may ignore it; adaptive ones key
their per-peer state on ``(scope, peer)`` so one peer's cadence on a
level-0 channel never pollutes its model on a level-1 channel.

Determinism contract
--------------------
The default :class:`~repro.detect.counter.CounterDetector` is *passive*:
its hooks are never called on the hot receive path, it owns no timers
and draws no randomness, which is what keeps the five golden SHA-256
traces byte-identical across the refactor.  Active detectors schedule
probes through the epoch-guarded :class:`~repro.runtime.ports.NodeRuntime`
timers and draw targets from a dedicated named RNG stream
(``detect.<name>.<node>``), so seeded runs stay deterministic without
perturbing any pre-existing stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
)

if TYPE_CHECKING:
    from repro.cluster.directory import Directory
    from repro.core.groups import GroupState, PeerState
    from repro.net.packet import Packet
    from repro.protocols.base import ProtocolConfig
    from repro.runtime.ports import NodeRuntime

__all__ = ["Scope", "Prober", "FailureDetector", "UnicastProber", "handle_probe_packet"]

#: Observation/query scope: a channel level (hierarchical) or a scheme tag.
Scope = Union[int, str]


class Prober(Protocol):
    """Outbound port for detector-initiated traffic (SWIM pings).

    Implementations wrap :meth:`~repro.runtime.ports.NodeRuntime.send`
    on a scheme-chosen unicast port; the return value is the transport's
    *accepted-for-send* verdict, never a delivery report.
    """

    def ping(self, target: str) -> bool:
        """Direct liveness probe; the target acks the origin."""
        ...

    def ping_req(self, relay: str, target: str) -> bool:
        """Ask ``relay`` to probe ``target`` on our behalf (SWIM ping-req)."""
        ...


class FailureDetector(ABC):
    """Strategy deciding when silence becomes a death declaration.

    Lifecycle: constructed with the node's config and runtime, optionally
    :meth:`attach`-ed to a prober and membership provider by the scheme,
    then :meth:`start`-ed/:meth:`stop`-ped in lockstep with the node.
    ``stop()`` must cancel every timer the detector created and drop all
    soft state — a detector outliving its node's life would probe ghosts.
    """

    #: registry name (``config.detector`` value selecting this strategy)
    name: ClassVar[str] = ""
    #: passive detectors piggyback on the scheme's own freshness
    #: bookkeeping; the receive paths skip their observation hooks
    #: entirely (the golden-trace byte-identity guarantee hangs on this).
    passive: ClassVar[bool] = True
    #: whether the detector originates probe traffic (needs a Prober and,
    #: for the flat schemes, a dedicated unicast port binding).
    uses_probes: ClassVar[bool] = False

    def __init__(self, config: "ProtocolConfig", runtime: "NodeRuntime") -> None:
        self.config = config
        self.runtime = runtime
        self.prober: Optional[Prober] = None
        self._members: Callable[[], List[str]] = list

    # ------------------------------------------------------------------
    # Wiring and lifecycle
    # ------------------------------------------------------------------
    def attach(
        self,
        prober: Optional[Prober] = None,
        members: Optional[Callable[[], List[str]]] = None,
    ) -> None:
        """Give the detector its scheme-provided ports.

        ``members`` returns the sorted probe-candidate ids (never
        including the node itself) — called lazily at each probe round so
        the detector always sees the scheme's current peer set.
        """
        if prober is not None:
            self.prober = prober
        if members is not None:
            self._members = members

    def start(self) -> None:
        """Reset soft state and (for active detectors) arm probe timers."""

    def stop(self) -> None:
        """Cancel every detector-owned timer and drop soft state."""

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def observe_heartbeat(
        self, scope: Scope, peer_id: str, now: float, incarnation: int = 0
    ) -> None:
        """A heartbeat (or counter increase) from ``peer_id`` arrived.

        Called by the scheme's receive path **only when ``passive`` is
        False** — the hot path pre-resolves the hook once per channel
        join, so the default detector costs zero loads per delivery.
        """

    def observe_ack(self, peer_id: str, now: float) -> None:
        """A probe ack from ``peer_id`` arrived (active detectors only)."""

    def forget(self, peer_id: str, scope: Optional[Scope] = None) -> None:
        """Drop soft state about ``peer_id`` (after a purge or departure).

        With ``scope`` given only that scope's state goes; global
        suspicion/declaration state goes in either case — the peer is no
        longer the scheme's concern, so a stale verdict must not outlive
        it and re-kill the node the moment it reappears.
        """

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def silent_peers(
        self, scope: Scope, group: "GroupState", now: float, timeout: float
    ) -> List["PeerState"]:
        """Peers of ``group`` to declare dead now (not yet removed).

        ``timeout`` is the scheme's per-scope deadline (the counter
        semantics); adaptive detectors may declare earlier on their own
        evidence but must honour plain channel silence as a fallback so
        scheme semantics built on it (leader abdication vs. death) hold.
        The caller removes the returned peers via
        :meth:`~repro.core.groups.GroupState.purge_peers`.
        """

    @abstractmethod
    def silent_ids(
        self, scope: Scope, candidates: Sequence[str], now: float, timeout: float
    ) -> List[str]:
        """Subset of ``candidates`` to declare dead now (id-keyed schemes)."""

    def purge_directory(
        self,
        scope: Scope,
        directory: "Directory",
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        """Remove dead entries from a flat scheme's directory.

        Default implementation for active detectors: judge every non-owner
        entry via :meth:`silent_ids`, then remove.  The counter strategy
        overrides this with the directory's own deadline purge (the
        deadline-heap fast path the pre-refactor code used).
        """
        candidates = [nid for nid in directory.members() if nid != directory.owner]
        dead = self.silent_ids(scope, candidates, now, timeout)
        for nid in dead:
            record = directory.get(nid)
            if incarnations is not None and record is not None:
                incarnations[nid] = record.incarnation
            directory.remove(nid)
            self.forget(nid, scope)
        return dead

    # ------------------------------------------------------------------
    # Advertised bound
    # ------------------------------------------------------------------
    def detection_bound(self, n: int = 2, scheme: str = "hierarchical") -> float:
        """Advertised worst-typical seconds from failure to declaration.

        Routed through :func:`repro.detect.bounds.detection_bound` so the
        analysis models, ``ProtocolConfig.detection_time`` and the lab
        all quote the same formula per strategy.
        """
        from repro.detect.bounds import config_detection_bound

        return config_detection_bound(self.config, n=n, scheme=scheme)


class UnicastProber:
    """The standard :class:`Prober`: probe datagrams on a unicast port.

    Shared by all three schemes (each passes its own port).  Probe wire
    format, sized like real SWIM probes (a header plus the origin id):

    =============  =====================================================
    ``probe``      payload ``{"origin": id}`` — direct or relayed ping;
                   the receiver acks the *origin*, not the last hop
    ``probe-req``  payload ``{"target": id, "origin": id}`` — indirect
                   probe request; the relay forwards a ``probe``
    ``probe-ack``  payload ``{}`` — liveness proof from ``packet.src``
    =============  =====================================================
    """

    def __init__(self, runtime: "NodeRuntime", port: str, header_size: int) -> None:
        self.runtime = runtime
        self.port = port
        self.probe_size = header_size + 16
        self.ack_size = header_size + 8

    def ping(self, target: str) -> bool:
        return self.runtime.send(
            target,
            kind="probe",
            payload={"origin": self.runtime.node_id},
            size=self.probe_size,
            port=self.port,
        )

    def ping_req(self, relay: str, target: str) -> bool:
        return self.runtime.send(
            relay,
            kind="probe-req",
            payload={"target": target, "origin": self.runtime.node_id},
            size=self.probe_size,
            port=self.port,
        )


def handle_probe_packet(
    runtime: "NodeRuntime",
    detector: FailureDetector,
    packet: "Packet",
    port: str,
    header_size: int,
) -> bool:
    """Serve the probe wire protocol; True when the packet was consumed.

    One implementation for every scheme's unicast handler: answer pings,
    forward ping-reqs (the ack goes straight back to the origin, so a
    relay never tracks in-flight probes), and feed acks to the detector.
    Payloads are plain scalars/dicts, so the same handler works across
    the wire codec under :class:`~repro.runtime.anet.AsyncRuntime`.
    """
    kind = packet.kind
    if kind == "probe":
        payload = packet.payload
        origin = payload.get("origin", packet.src) if isinstance(payload, dict) else packet.src
        runtime.send(
            str(origin),
            kind="probe-ack",
            payload={},
            size=header_size + 8,
            port=port,
        )
        return True
    if kind == "probe-req":
        payload = packet.payload
        if isinstance(payload, dict) and "target" in payload:
            runtime.send(
                str(payload["target"]),
                kind="probe",
                payload={"origin": payload.get("origin", packet.src)},
                size=header_size + 16,
                port=port,
            )
        return True
    if kind == "probe-ack":
        detector.observe_ack(packet.src, runtime.now)
        return True
    return False
