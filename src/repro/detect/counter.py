"""The paper's MAX_LOSS missed-heartbeat counter, as a strategy.

This is the pre-refactor detector verbatim: a peer is dead after
``timeout`` seconds of silence (``max_loss × heartbeat_period`` at the
base level), judged off the freshness stamps the schemes already keep —
``PeerState.last_heard`` for channel groups, the directory's refresh
deadline heap for the flat all-to-all view, and a last-increase map for
gossip counters.  It is **passive** (no observation hook on the hot
receive path for group/directory scopes), owns no timers, draws no
randomness and sends nothing, which is what keeps the five golden
SHA-256 seeded traces byte-identical across the strategy-layer refactor.

The one observation it does record is the gossip scheme's
counter-increase time (gossip has no other freshness stamp to delegate
to); those calls happen on the gossip merge path only, in the exact
places the scheme's own ``_last_increase`` bookkeeping used to live.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.detect.base import FailureDetector, Scope

if TYPE_CHECKING:
    from repro.cluster.directory import Directory
    from repro.core.groups import GroupState, PeerState
    from repro.protocols.base import ProtocolConfig
    from repro.runtime.ports import NodeRuntime

__all__ = ["CounterDetector"]


class CounterDetector(FailureDetector):
    """Deadline detector: silent for ``timeout`` seconds ⇒ dead."""

    name = "counter"
    passive = True
    uses_probes = False

    def __init__(self, config: "ProtocolConfig", runtime: "NodeRuntime") -> None:
        super().__init__(config, runtime)
        #: (scope, peer) -> last observation time; only the gossip scheme
        #: feeds this (its counter-increase clock), group and directory
        #: scopes keep their own stamps.
        self._last_seen: Dict[Tuple[Scope, str], float] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._last_seen.clear()

    def stop(self) -> None:
        self._last_seen.clear()

    def observe_heartbeat(
        self, scope: Scope, peer_id: str, now: float, incarnation: int = 0
    ) -> None:
        self._last_seen[(scope, peer_id)] = now

    def forget(self, peer_id: str, scope: Optional[Scope] = None) -> None:
        if scope is not None:
            self._last_seen.pop((scope, peer_id), None)
        else:
            for key in [k for k in self._last_seen if k[1] == peer_id]:
                del self._last_seen[key]

    # ------------------------------------------------------------------
    def silent_peers(
        self, scope: Scope, group: "GroupState", now: float, timeout: float
    ) -> List["PeerState"]:
        # Exactly GroupState.purge_silent's predicate, over the same
        # insertion-ordered iteration (byte-identity depends on it).
        return [p for p in group.peers.values() if now - p.last_heard > timeout]

    def silent_ids(
        self, scope: Scope, candidates: Sequence[str], now: float, timeout: float
    ) -> List[str]:
        last = self._last_seen
        return [
            nid for nid in candidates if now - last.get((scope, nid), now) > timeout
        ]

    def purge_directory(
        self,
        scope: Scope,
        directory: "Directory",
        now: float,
        timeout: float,
        incarnations: Optional[Dict[str, int]] = None,
    ) -> List[str]:
        # Delegate to the directory's own deadline purge (the deadline-heap
        # fast path) — the exact call the all-to-all tick used to make.
        return directory.purge_stale(now, timeout, incarnations=incarnations)
