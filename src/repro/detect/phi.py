"""φ-accrual failure detection (Hayashibara et al., SRDS 2004), simplified.

Instead of a fixed deadline, accrue *suspicion* continuously: keep a
sliding window of heartbeat inter-arrival times per ``(scope, peer)``
and ask how implausible the current silence is under the observed
cadence.  With the exponential inter-arrival model the suspicion level
is

    ``φ(t) = t_since_last / (mean_interval · ln 10)``

(φ = 1 means "90% sure it's dead", φ = 2 "99%", ...); a peer is declared
once ``φ > phi_threshold``.  The detector therefore *adapts*: a peer
whose heartbeats arrive jittered or thinned by loss grows a larger mean
and earns proportionally more patience, which is exactly what bounds
false positives under the chaos fabric's loss regimes without retuning
``max_loss`` per link.

Until a window has ``min_samples`` intervals the strategy falls back to
the scheme's counter deadline (a fresh peer has no cadence yet).  The
detector is active (the receive paths feed it observations) but sends
no probes and owns no timers — scoring happens at query time, so there
is nothing to cancel on :meth:`PhiAccrualDetector.stop`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from repro.detect.base import FailureDetector, Scope
from repro.detect.bounds import LN10

if TYPE_CHECKING:
    from repro.core.groups import GroupState, PeerState
    from repro.protocols.base import ProtocolConfig
    from repro.runtime.ports import NodeRuntime

__all__ = ["PhiAccrualDetector"]

#: intervals required before φ scoring replaces the deadline fallback
MIN_SAMPLES = 3

#: ignore implausibly small means: a burst of duplicated heartbeats must
#: not teach the detector a microsecond cadence and kill everyone
MIN_MEAN = 1e-3


class _ArrivalWindow:
    """Inter-arrival statistics for one (scope, peer) stream."""

    __slots__ = ("last", "intervals", "total")

    def __init__(self, maxlen: int) -> None:
        self.last: Optional[float] = None
        self.intervals: Deque[float] = deque(maxlen=maxlen)
        self.total = 0.0

    def observe(self, now: float) -> None:
        last = self.last
        if last is not None:
            interval = now - last
            if interval > 0.0:
                if len(self.intervals) == self.intervals.maxlen:
                    self.total -= self.intervals[0]
                self.intervals.append(interval)
                self.total += interval
        self.last = now

    def phi(self, now: float) -> Optional[float]:
        """Current suspicion level, or None while the window is warming up."""
        if self.last is None or len(self.intervals) < MIN_SAMPLES:
            return None
        mean = max(self.total / len(self.intervals), MIN_MEAN)
        return (now - self.last) / (mean * LN10)


class PhiAccrualDetector(FailureDetector):
    """Adaptive inter-arrival detector with a configurable φ threshold."""

    name = "phi-accrual"
    passive = False
    uses_probes = False

    def __init__(self, config: "ProtocolConfig", runtime: "NodeRuntime") -> None:
        super().__init__(config, runtime)
        self._windows: Dict[Tuple[Scope, str], _ArrivalWindow] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._windows.clear()

    def stop(self) -> None:
        self._windows.clear()

    def observe_heartbeat(
        self, scope: Scope, peer_id: str, now: float, incarnation: int = 0
    ) -> None:
        key = (scope, peer_id)
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _ArrivalWindow(self.config.phi_window)
        window.observe(now)

    def forget(self, peer_id: str, scope: Optional[Scope] = None) -> None:
        if scope is not None:
            self._windows.pop((scope, peer_id), None)
        else:
            for key in [k for k in self._windows if k[1] == peer_id]:
                del self._windows[key]

    # ------------------------------------------------------------------
    def phi(self, scope: Scope, peer_id: str, now: float) -> Optional[float]:
        """Suspicion level for one peer (None while warming up)."""
        window = self._windows.get((scope, peer_id))
        return window.phi(now) if window is not None else None

    def _is_dead(
        self, scope: Scope, peer_id: str, last_heard: Optional[float], now: float, timeout: float
    ) -> bool:
        score = self.phi(scope, peer_id, now)
        if score is not None:
            return score > self.config.phi_threshold
        # Warm-up fallback: the scheme's counter deadline.
        return last_heard is not None and now - last_heard > timeout

    def silent_peers(
        self, scope: Scope, group: "GroupState", now: float, timeout: float
    ) -> List["PeerState"]:
        return [
            p
            for p in group.peers.values()
            if self._is_dead(scope, p.node_id, p.last_heard, now, timeout)
        ]

    def silent_ids(
        self, scope: Scope, candidates: Sequence[str], now: float, timeout: float
    ) -> List[str]:
        dead = []
        for nid in candidates:
            window = self._windows.get((scope, nid))
            last = window.last if window is not None else None
            if self._is_dead(scope, nid, last, now, timeout):
                dead.append(nid)
        return dead
