"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro.cli compare --networks 3 --hosts 20
    python -m repro.cli detect --scheme gossip --networks 5 --hosts 20
    python -m repro.cli formation --networks 2 --hosts 5
    python -m repro.cli failover --rate 10
    python -m repro.cli analysis --sizes 100 1000 4000
    python -m repro.cli obs --networks 3 --hosts 8 --format prometheus
    python -m repro.cli shard --shards 4 --networks 3 --hosts 10 --check-invariance
    python -m repro.cli daemon --spec cluster.json --node n0
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis import MODELS, AnalysisParams
from repro.apps import SearchDeployment
from repro.cluster.gateway import Gateway
from repro.core import HierarchicalNode
from repro.metrics import SCHEMES, FailureExperiment, make_scheme_cluster
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    enable_observability,
    to_json_str,
)

__all__ = ["main"]


def _cmd_compare(args: argparse.Namespace) -> int:
    print(f"{'scheme':<14} {'agg KB/s':>10} {'per-node':>9} {'detect':>8} {'converge':>9}")
    print("-" * 56)
    for scheme in sorted(SCHEMES):
        res = FailureExperiment(
            scheme,
            args.networks,
            args.hosts,
            seed=args.seed,
            warmup=25.0,
            bandwidth_window=10.0,
            observe=args.observe,
        ).run()
        print(
            f"{scheme:<14} {res.bandwidth.aggregate_rate / 1e3:>10.1f} "
            f"{res.bandwidth.per_node_rate / 1e3:>8.2f}K "
            f"{res.detection:>7.2f}s {res.convergence:>8.2f}s"
        )
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    res = FailureExperiment(
        args.scheme,
        args.networks,
        args.hosts,
        seed=args.seed,
        warmup=25.0,
        observe=args.observe,
        measure_bandwidth=False,
        kill_leader=args.kill_leader,
    ).run()
    print(f"scheme      : {res.scheme}")
    print(f"nodes       : {res.num_nodes}")
    print(f"victim      : {res.victim}" + (" (leader)" if args.kill_leader else ""))
    print(f"detection   : {res.detection:.3f} s" if res.detection else "detection   : never")
    print(
        f"convergence : {res.convergence:.3f} s"
        if res.convergence
        else "convergence : incomplete"
    )
    print(f"observers   : {res.observers}/{res.num_nodes - 1}")
    return 0


def _cmd_formation(args: argparse.Namespace) -> int:
    net, hosts, nodes = make_scheme_cluster(
        "hierarchical", args.networks, args.hosts, seed=args.seed
    )
    net.run(until=args.warmup)
    for host in sorted(nodes):
        node = nodes[host]
        assert isinstance(node, HierarchicalNode)
        roles = []
        for level in node.levels():
            roles.append(
                f"L{level}:{'leader' if node.is_leader(level) else node.leader_of(level)}"
            )
        print(f"{host:<18} view={len(node.view()):>4}  {'  '.join(roles)}")
    return 0


def _cmd_failover(args: argparse.Namespace) -> int:
    warmup = 15.0
    dep = SearchDeployment(networks=3, hosts_per_network=6, seed=args.seed)
    net = dep.network
    dep.warm_up(warmup)
    engine = dep.engines["dcA"]
    gw = Gateway(
        net.sim,
        executor=lambda query: engine.query(query),
        workload=lambda seq: {"query": f"q{seq}"},
        rate=args.rate,
    )
    gw.start()
    net.sim.call_at(warmup + 20.0, dep.fail_doc_service, "dcA")
    net.sim.call_at(warmup + 40.0, dep.recover_doc_service, "dcA")
    net.run(until=warmup + 60.0)
    gw.stop()
    rt = {int(s - warmup): v for s, v in gw.stats.response_time_series()}
    thr = {int(s - warmup): v for s, v in gw.stats.throughput_series()}
    print(" sec | resp (ms) | req/s")
    for sec in range(0, 60, 2):
        ms = f"{1000 * rt[sec]:8.1f}" if sec in rt else "       -"
        print(f" {sec:3d} | {ms}  | {thr.get(sec, 0):3.0f}")
    print(f"issued={gw.stats.issued} completed={gw.stats.completed} failed={gw.stats.failed}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Instrumented formation run: converge a cluster, export its metrics."""
    net, hosts, nodes = make_scheme_cluster(
        args.scheme, args.networks, args.hosts, seed=args.seed
    )
    registry = MetricsRegistry()
    handle = enable_observability(net, registry)
    sink = None
    if args.trace_out:
        sink = net.trace.attach_sink(JsonlTraceSink(args.trace_out))
    net.run(until=args.observe)
    if sink is not None:
        sink.close()
        print(f"# wrote {sink.records_written} trace records to {args.trace_out}",
              file=sys.stderr)
    if args.format == "json":
        print(to_json_str(registry, indent=2))
    else:
        print(handle.to_prometheus(), end="")
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    """Run ONE real membership daemon: asyncio/UDP runtime + HTTP endpoint.

    This is the real-network counterpart of a simulated node: the same
    :class:`~repro.core.HierarchicalNode` protocol stack, executed over
    :class:`~repro.runtime.anet.AsyncRuntime` with datagrams framed by
    :mod:`repro.runtime.wire` and multicast scoped by the channel relay.
    Each daemon serves ``/metrics`` (Prometheus text), ``/view`` (JSON
    membership view) and ``/healthz`` over plain HTTP.
    """
    import asyncio
    import dataclasses
    import json
    import os
    import signal

    from repro.core.config import HierarchicalConfig, detector_overrides_from_env
    from repro.obs.wiring import Instruments
    from repro.runtime.anet import AsyncRuntime, ClusterSpec

    spec = ClusterSpec.load(args.spec)
    config = HierarchicalConfig()
    if spec.config:
        config = dataclasses.replace(config, **spec.config)
    # Detector overrides, lowest to highest precedence: spec < env < flags.
    overrides = detector_overrides_from_env(os.environ)
    for attr in ("detector", "probe_period", "probe_timeout", "indirect_probes",
                 "suspicion_timeout", "phi_threshold", "phi_window"):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[attr] = value
    if overrides:
        config = dataclasses.replace(config, **overrides)

    async def _serve_http(
        node: HierarchicalNode, handle_registry, runtime: "AsyncRuntime"
    ) -> asyncio.AbstractServer:
        from repro.obs import to_prometheus

        def view_body() -> str:
            return json.dumps(
                {
                    "node": node.node_id,
                    "running": node.running,
                    "count": len(node.view()),
                    "members": node.view(),
                    "levels": {
                        str(level): {
                            "leader": node.leader_of(level),
                            "i_am_leader": node.is_leader(level),
                        }
                        for level in node.levels()
                    },
                    "relay": {
                        "active_index": runtime.relay_index,
                        "fallback": runtime.relay_fallback,
                        "failovers": runtime.relay_failovers,
                        "send_errors": runtime.send_errors,
                        "wire_errors": runtime.wire_errors,
                        "frag_drops": runtime.frag_drops,
                    },
                }
            )

        routes = {
            "/metrics": lambda: ("text/plain; version=0.0.4", to_prometheus(handle_registry)),
            "/view": lambda: ("application/json", view_body()),
            "/healthz": lambda: ("text/plain", "ok\n"),
        }

        async def handler(reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter") -> None:
            try:
                request = await reader.readline()
                while True:  # drain headers; we never read a body
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                parts = request.decode("latin-1").split()
                path = parts[1] if len(parts) >= 2 else "/"
                route = routes.get(path)
                if route is None:
                    status, ctype, body = "404 Not Found", "text/plain", "not found\n"
                else:
                    ctype, body = route()
                    status = "200 OK"
                raw = body.encode("utf-8")
                head = (
                    f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
                    f"Content-Length: {len(raw)}\r\nConnection: close\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + raw)
                await writer.drain()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        node_spec = spec.nodes[args.node]
        return await asyncio.start_server(handler, node_spec.host, node_spec.http_port)

    async def _run() -> None:
        registry = MetricsRegistry()
        instruments = Instruments(registry)
        runtime = AsyncRuntime(spec, args.node, instruments=instruments, seed=args.seed)
        await runtime.start()
        node = HierarchicalNode(None, args.node, config=config, runtime=runtime)
        node.start()
        server = await _serve_http(node, registry, runtime)
        print(f"daemon {args.node} ready", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        if args.duration is not None:
            loop.call_later(args.duration, stop.set)
        await stop.wait()
        node.stop()
        runtime.close()
        server.close()
        await server.wait_closed()

    asyncio.run(_run())
    return 0


def _cmd_analysis(args: argparse.Namespace) -> int:
    params = AnalysisParams(group_size=args.group_size)
    models = {name: cls(params) for name, cls in MODELS.items()}
    header = f"{'nodes':>7}"
    for name in sorted(models):
        header += f" | {name + ' MB/s':>17} {name + ' det':>16} {name + ' BDT(MB)':>20}"
    print(header)
    for n in args.sizes:
        row = f"{n:>7}"
        for name in sorted(models):
            m = models[name]
            row += (
                f" | {m.aggregate_bandwidth(n) / 1e6:>17.2f}"
                f" {m.detection_time(n):>15.1f}s"
                f" {m.bdt(n) / 1e6:>20.1f}"
            )
        print(row)
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import time

    from repro.shard import ShardScenario, run_scenario
    from repro.shard.workers import run_scenario_mp

    spec = ShardScenario(
        builder="switched",
        builder_args=(args.networks, args.hosts),
        scheme=args.scheme,
        seed=args.seed,
        loss_rate=args.loss,
        run_until=args.until,
    )
    t0 = time.perf_counter()
    if args.processes:
        res = run_scenario_mp(spec, args.shards)
    else:
        res = run_scenario(spec, args.shards)
    wall = time.perf_counter() - t0
    mode = "processes" if args.processes else "in-process"
    print(f"shards={res.shards} ({mode})  hosts={res.summary['hosts']}  "
          f"segments={res.summary['segments']}  lookahead={res.summary['lookahead']:.6f}s")
    print(f"wall={wall:.2f}s  barriers={res.barriers}  "
          f"cross-shard descriptors={res.exchanged}")
    print(f"events per shard: {list(res.events)}")
    print(f"trace records={len(res.trace)}  merged trace sha256={res.hash}")
    if args.check_invariance:
        ref = run_scenario(spec, 1)
        ok = ref.hash == res.hash
        print(f"shards=1 reference sha256={ref.hash}  "
              f"{'MATCH' if ok else 'MISMATCH'}")
        return 0 if ok else 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Reproduction experiments for the topology-adaptive membership paper",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run the command under cProfile and print the top cumulative "
             "entries to stderr (put the flag before the subcommand)",
    )
    parser.add_argument(
        "--profile-top", type=int, default=25, metavar="N",
        help="number of rows in the --profile report (default 25)",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="also dump raw --profile stats for pstats/snakeviz",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compare", help="all three schemes on one scenario (mini Figs. 11-13)")
    p.add_argument("--networks", type=int, default=3)
    p.add_argument("--hosts", type=int, default=20)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--observe", type=float, default=80.0)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("detect", help="single failure-detection run")
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="hierarchical")
    p.add_argument("--networks", type=int, default=3)
    p.add_argument("--hosts", type=int, default=20)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--observe", type=float, default=60.0)
    p.add_argument("--kill-leader", action="store_true")
    p.set_defaults(fn=_cmd_detect)

    p = sub.add_parser("formation", help="show the membership hierarchy")
    p.add_argument("--networks", type=int, default=2)
    p.add_argument("--hosts", type=int, default=5)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warmup", type=float, default=14.0)
    p.set_defaults(fn=_cmd_formation)

    p = sub.add_parser("failover", help="the Fig. 14 two-data-center scenario")
    p.add_argument("--rate", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=4)
    p.set_defaults(fn=_cmd_failover)

    p = sub.add_parser("obs", help="instrumented run: export protocol metrics")
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="hierarchical")
    p.add_argument("--networks", type=int, default=3)
    p.add_argument("--hosts", type=int, default=8)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--observe", type=float, default=40.0)
    p.add_argument("--format", choices=["prometheus", "json"], default="prometheus")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="also stream the trace to a JSONL file")
    p.set_defaults(fn=_cmd_obs)

    p = sub.add_parser("shard", help="sharded-kernel run with deterministic merge")
    p.add_argument("--shards", type=int, default=2)
    p.add_argument("--scheme", choices=sorted(SCHEMES), default="hierarchical")
    p.add_argument("--networks", type=int, default=3)
    p.add_argument("--hosts", type=int, default=10)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--loss", type=float, default=0.02)
    p.add_argument("--until", type=float, default=50.0)
    p.add_argument("--processes", action="store_true",
                   help="one worker process per shard (spawn) instead of in-process")
    p.add_argument("--check-invariance", action="store_true",
                   help="also run shards=1 and fail on a trace-hash mismatch")
    p.set_defaults(fn=_cmd_shard)

    p = sub.add_parser("daemon", help="run one real asyncio/UDP membership daemon")
    p.add_argument("--spec", required=True, metavar="PATH",
                   help="cluster spec JSON (relay + node address book)")
    p.add_argument("--node", required=True, help="this daemon's node id in the spec")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duration", type=float, default=None, metavar="SEC",
                   help="exit after SEC seconds (default: run until SIGTERM)")
    p.add_argument("--detector", choices=["counter", "swim", "phi-accrual"],
                   default=None,
                   help="failure-detection strategy (default: spec/env/counter)")
    p.add_argument("--probe-period", type=float, default=None, metavar="SEC",
                   help="swim: probe round period")
    p.add_argument("--probe-timeout", type=float, default=None, metavar="SEC",
                   help="swim: per-probe ack timeout")
    p.add_argument("--indirect-probes", type=int, default=None, metavar="K",
                   help="swim: number of indirect ping-req relays")
    p.add_argument("--suspicion-timeout", type=float, default=None, metavar="SEC",
                   help="swim: suspicion-to-declaration delay")
    p.add_argument("--phi-threshold", type=float, default=None,
                   help="phi-accrual: declaration threshold")
    p.add_argument("--phi-window", type=int, default=None,
                   help="phi-accrual: inter-arrival window length")
    p.set_defaults(fn=_cmd_daemon)

    p = sub.add_parser("analysis", help="Section 4 closed forms")
    p.add_argument("--sizes", type=int, nargs="+", default=[20, 100, 1000, 4000])
    p.add_argument("--group-size", type=int, default=20)
    p.set_defaults(fn=_cmd_analysis)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.profile:
        return args.fn(args)
    # Perf work starts from data: wrap any subcommand in cProfile so a
    # future optimisation PR can see where a scenario actually spends
    # its time without writing a bespoke harness first.
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        rc = args.fn(args)
    finally:
        prof.disable()
        stats = pstats.Stats(prof, stream=sys.stderr).sort_stats("cumulative")
        stats.print_stats(args.profile_top)
        if args.profile_out:
            prof.dump_stats(args.profile_out)
            print(f"# profile stats dumped to {args.profile_out}", file=sys.stderr)
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
