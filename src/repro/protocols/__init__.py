"""Membership protocols: the two baselines the paper compares against.

* :mod:`repro.protocols.alltoall` — every node multicasts heartbeats to the
  whole cluster and maintains its directory independently (Neptune's
  original small-cluster scheme, Section 2).
* :mod:`repro.protocols.gossip` — the van Renesse et al. gossip-style
  failure-detection service the paper uses as its wide-area baseline.

The paper's own hierarchical protocol lives in :mod:`repro.core`; all three
share the :class:`~repro.protocols.base.MembershipNode` interface so the
experiment harness can run identical scenarios against each scheme.
"""

from repro.protocols.base import MembershipNode, ProtocolConfig, deploy
from repro.protocols.alltoall import AllToAllNode
from repro.protocols.gossip import GossipNode, gossip_fail_time

__all__ = [
    "MembershipNode",
    "ProtocolConfig",
    "deploy",
    "AllToAllNode",
    "GossipNode",
    "gossip_fail_time",
]
