"""The all-to-all multicast membership scheme.

Neptune's original design for small clusters (Section 2): "every node
periodically send[s] its heartbeats to other nodes and collect[s]
heartbeats from other nodes... Every node builds its own membership
directory based on these heartbeat packets."

Each heartbeat carries the sender's full member description (service info +
machine attributes, 228 bytes) and is multicast with a TTL large enough to
cover the whole cluster.  A peer is purged after ``max_loss`` consecutive
missed heartbeats.  Detection is therefore a constant ``~max_loss x
period`` regardless of cluster size, but every node receives ``n - 1``
packets per period — the O(n²) aggregate traffic of Fig. 2/Fig. 11.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.protocols.base import MembershipNode

__all__ = ["AllToAllNode", "ALL_CHANNEL"]

#: The single cluster-wide multicast channel.
ALL_CHANNEL = "all-to-all"


class AllToAllNode(MembershipNode):
    """One node of the all-to-all scheme."""

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.incarnation += 1
        self.directory.clear()
        self.directory.upsert(self.self_record(), self.network.now)
        self._emit_view_reset()
        self.network.subscribe(ALL_CHANNEL, self.node_id, self._on_packet)
        # Desynchronise senders like real daemons started at different
        # moments; the offset is deterministic per (seed, node).
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self._hb_timer = self.network.sim.call_after(phase, self._heartbeat_tick)
        self._check_timer = self.network.sim.call_after(
            self.config.heartbeat_period, self._check_tick
        )

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.network.unsubscribe(ALL_CHANNEL, self.node_id)
        self._hb_timer.cancel()
        self._check_timer.cancel()
        self.directory.clear()

    # ------------------------------------------------------------------
    # Announcer: periodic heartbeat multicast
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        if not self.running:
            return
        self.network.multicast(
            self.node_id,
            ALL_CHANNEL,
            ttl=self.config.max_ttl,
            kind="heartbeat",
            payload=self.self_record(),
            size=self.config.message_size(1),
        )
        self._hb_timer = self.network.sim.call_after(
            self.config.heartbeat_period, self._heartbeat_tick
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if not self.running or packet.kind != "heartbeat":
            return
        record = packet.payload
        is_new = record.node_id not in self.directory
        self.directory.upsert(record, self.network.now)
        self.directory.refresh(record.node_id, self.network.now)
        if is_new:
            self._emit_member_up(record.node_id)

    # ------------------------------------------------------------------
    # Status tracker: purge silent peers
    # ------------------------------------------------------------------
    def _check_tick(self) -> None:
        if not self.running:
            return
        dead = self.directory.purge_stale(self.network.now, self.config.fail_timeout)
        for node_id in dead:
            self._emit_member_down(node_id)
        self._check_timer = self.network.sim.call_after(
            self.config.heartbeat_period, self._check_tick
        )

    def _self_changed(self) -> None:
        super()._self_changed()
        if self.running:
            # Push the change immediately instead of waiting a period.
            self.network.multicast(
                self.node_id,
                ALL_CHANNEL,
                ttl=self.config.max_ttl,
                kind="heartbeat",
                payload=self.self_record(),
                size=self.config.message_size(1),
            )
