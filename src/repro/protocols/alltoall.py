"""The all-to-all multicast membership scheme.

Neptune's original design for small clusters (Section 2): "every node
periodically send[s] its heartbeats to other nodes and collect[s]
heartbeats from other nodes... Every node builds its own membership
directory based on these heartbeat packets."

Each heartbeat carries the sender's full member description (service info +
machine attributes, 228 bytes) and is multicast with a TTL large enough to
cover the whole cluster.  A peer is purged after ``max_loss`` consecutive
missed heartbeats.  Detection is therefore a constant ``~max_loss x
period`` regardless of cluster size, but every node receives ``n - 1``
packets per period — the O(n²) aggregate traffic of Fig. 2/Fig. 11.
"""

from __future__ import annotations

from typing import List

from repro.detect import handle_probe_packet
from repro.net.packet import Packet
from repro.protocols.base import MembershipNode

__all__ = ["AllToAllNode", "ALL_CHANNEL", "ALL_DETECT_PORT", "ALL_SCOPE"]

#: The single cluster-wide multicast channel.
ALL_CHANNEL = "all-to-all"

#: Unicast port for active-detector probe traffic (bound only when the
#: configured strategy probes; the default counter sends nothing).
ALL_DETECT_PORT = "a2a-detect"

#: The scheme's single liveness scope (it has no channel levels).
ALL_SCOPE = "all"


class AllToAllNode(MembershipNode):
    """One node of the all-to-all scheme."""

    scheme = "all-to-all"

    # ------------------------------------------------------------------
    # Failure-detection seam
    # ------------------------------------------------------------------
    def _wire_detector(self) -> None:
        from repro.detect import UnicastProber

        self.detector.attach(
            prober=UnicastProber(
                self.runtime, ALL_DETECT_PORT, self.config.header_size
            ),
            members=self._probe_candidates,
        )

    def _probe_candidates(self) -> List[str]:
        return [nid for nid in self.directory.members() if nid != self.node_id]

    def _on_probe(self, packet: Packet) -> None:
        if not self.running:
            return
        handle_probe_packet(
            self.runtime, self.detector, packet, ALL_DETECT_PORT, self.config.header_size
        )

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        self.runtime.subscribe(ALL_CHANNEL, self._on_packet)
        if self.detector.uses_probes:
            self.runtime.bind(ALL_DETECT_PORT, self._on_probe)
        # Desynchronise senders like real daemons started at different
        # moments; the offset is deterministic per (seed, node).
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self.runtime.call_every(
            self.config.heartbeat_period, self._heartbeat_tick, first_delay=phase
        )
        self.runtime.call_every(self.config.heartbeat_period, self._check_tick)

    def _on_stop(self) -> None:
        self.runtime.unsubscribe(ALL_CHANNEL)
        if self.detector.uses_probes:
            self.runtime.unbind(ALL_DETECT_PORT)

    # ------------------------------------------------------------------
    # Announcer: periodic heartbeat multicast
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        if not self.running:
            return
        self.runtime.publish(
            ALL_CHANNEL,
            ttl=self.config.max_ttl,
            kind="heartbeat",
            payload=self.self_record(),
            size=self.config.message_size(1),
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if not self.running or packet.kind != "heartbeat":
            return
        record = packet.payload
        now = self.runtime.now
        is_new = record.node_id not in self.directory
        self.directory.upsert(record, now)
        self.directory.refresh(record.node_id, now)
        det = self.detector
        if not det.passive:
            det.observe_heartbeat(ALL_SCOPE, record.node_id, now, record.incarnation)
        if is_new:
            self._emit_member_up(record.node_id)

    # ------------------------------------------------------------------
    # Status tracker: purge silent peers
    # ------------------------------------------------------------------
    def _check_tick(self) -> None:
        if not self.running:
            return
        # The counter strategy delegates straight to the directory's
        # deadline-heap purge (the pre-refactor call, byte-identical);
        # active strategies judge the member list themselves.
        dead = self.detector.purge_directory(
            ALL_SCOPE, self.directory, self.runtime.now, self.config.fail_timeout
        )
        for node_id in dead:
            self._emit_member_down(node_id)

    def _self_changed(self) -> None:
        super()._self_changed()
        if self.running:
            # Push the change immediately instead of waiting a period.
            self.runtime.publish(
                ALL_CHANNEL,
                ttl=self.config.max_ttl,
                kind="heartbeat",
                payload=self.self_record(),
                size=self.config.message_size(1),
            )
