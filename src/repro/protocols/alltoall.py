"""The all-to-all multicast membership scheme.

Neptune's original design for small clusters (Section 2): "every node
periodically send[s] its heartbeats to other nodes and collect[s]
heartbeats from other nodes... Every node builds its own membership
directory based on these heartbeat packets."

Each heartbeat carries the sender's full member description (service info +
machine attributes, 228 bytes) and is multicast with a TTL large enough to
cover the whole cluster.  A peer is purged after ``max_loss`` consecutive
missed heartbeats.  Detection is therefore a constant ``~max_loss x
period`` regardless of cluster size, but every node receives ``n - 1``
packets per period — the O(n²) aggregate traffic of Fig. 2/Fig. 11.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.protocols.base import MembershipNode

__all__ = ["AllToAllNode", "ALL_CHANNEL"]

#: The single cluster-wide multicast channel.
ALL_CHANNEL = "all-to-all"


class AllToAllNode(MembershipNode):
    """One node of the all-to-all scheme."""

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        self.runtime.subscribe(ALL_CHANNEL, self._on_packet)
        # Desynchronise senders like real daemons started at different
        # moments; the offset is deterministic per (seed, node).
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self.runtime.call_every(
            self.config.heartbeat_period, self._heartbeat_tick, first_delay=phase
        )
        self.runtime.call_every(self.config.heartbeat_period, self._check_tick)

    def _on_stop(self) -> None:
        self.runtime.unsubscribe(ALL_CHANNEL)

    # ------------------------------------------------------------------
    # Announcer: periodic heartbeat multicast
    # ------------------------------------------------------------------
    def _heartbeat_tick(self) -> None:
        if not self.running:
            return
        self.runtime.publish(
            ALL_CHANNEL,
            ttl=self.config.max_ttl,
            kind="heartbeat",
            payload=self.self_record(),
            size=self.config.message_size(1),
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if not self.running or packet.kind != "heartbeat":
            return
        record = packet.payload
        is_new = record.node_id not in self.directory
        self.directory.upsert(record, self.runtime.now)
        self.directory.refresh(record.node_id, self.runtime.now)
        if is_new:
            self._emit_member_up(record.node_id)

    # ------------------------------------------------------------------
    # Status tracker: purge silent peers
    # ------------------------------------------------------------------
    def _check_tick(self) -> None:
        if not self.running:
            return
        dead = self.directory.purge_stale(self.runtime.now, self.config.fail_timeout)
        for node_id in dead:
            self._emit_member_down(node_id)

    def _self_changed(self) -> None:
        super()._self_changed()
        if self.running:
            # Push the change immediately instead of waiting a period.
            self.runtime.publish(
                ALL_CHANNEL,
                ttl=self.config.max_ttl,
                kind="heartbeat",
                payload=self.self_record(),
                size=self.config.message_size(1),
            )
