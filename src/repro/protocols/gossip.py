"""Gossip-style membership (van Renesse, Minsky & Hayden, Middleware '98).

Each node keeps a heartbeat counter per member.  Every ``period`` it
increments its own counter and sends its full membership view to
``fanout`` randomly-chosen live peers; receivers merge counter-wise maxima.
A member whose counter has not increased for ``t_fail`` seconds is declared
failed; the entry is kept on a *dead list* until ``t_cleanup = 2 x t_fail``
so stale gossip cannot resurrect it.

Sizing ``t_fail``: with fanout 1, a counter increment reaches all *n*
members in ~``log2 n`` rounds w.h.p.; bounding the mistake probability by
``p_mistake`` needs extra safety rounds, giving

    ``t_fail = period * (log2 n + log2 (1 / p_mistake) * safety)``

(:func:`gossip_fail_time`).  This reproduces the two properties the paper
measures: detection time grows **logarithmically** with cluster size
(Fig. 12) and each gossip message carries the whole view, ``n x s`` bytes,
so aggregate bandwidth grows **quadratically** (Fig. 11).  Convergence is
slower than detection because every node times the failure out
independently, spread by the propagation of the last counter increments
(Fig. 13).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.detect import handle_probe_packet
from repro.net.packet import Packet
from repro.protocols.base import MembershipNode

__all__ = [
    "GossipNode",
    "gossip_fail_time",
    "GOSSIP_PORT",
    "GOSSIP_DETECT_PORT",
    "GOSSIP_SCOPE",
]

GOSSIP_PORT = "gossip"

#: Unicast port for active-detector probe traffic (bound only when the
#: configured strategy probes).
GOSSIP_DETECT_PORT = "gossip-detect"

#: The scheme's single liveness scope.
GOSSIP_SCOPE = "gossip"


def gossip_fail_time(
    n: int,
    period: float = 1.0,
    p_mistake: float = 0.001,
    safety: float = 0.5,
) -> float:
    """Failure-declaration threshold for an *n*-member gossip group.

    See the module docstring; ``safety`` scales the extra rounds bought by
    the mistake-probability bound (0.5 matches the loose 0.1% requirement
    the paper grants the gossip baseline).
    """
    if n < 2:
        return period * 2
    rounds = math.log2(n) + safety * math.log2(1.0 / p_mistake)
    return period * rounds


class GossipNode(MembershipNode):
    """One node of the gossip scheme.

    Parameters
    ----------
    seeds:
        Initial member list (the paper's broadcast-based discovery is
        "eliminated under optimization", so nodes start from a seed list,
        as real deployments do).
    """

    scheme = "gossip"

    def __init__(self, *args, seeds: Sequence[str] = (), **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.seeds = [s for s in seeds if s != self.node_id]
        # member -> heartbeat counter.  The *time of last counter
        # increase* — gossip's freshness evidence — lives in the failure
        # detector (scope :data:`GOSSIP_SCOPE`): the merge path reports
        # every increase via ``observe_heartbeat``.
        self._counters: Dict[str, int] = {}
        # dead list: member -> counter at declaration (anti-resurrection)
        self._dead: Dict[str, int] = {}
        self._dead_since: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Derived thresholds
    # ------------------------------------------------------------------
    @property
    def t_fail(self) -> float:
        n = max(len(self._counters), len(self.seeds) + 1, 2)
        return gossip_fail_time(
            n,
            self.config.heartbeat_period,
            self.config.gossip_mistake_prob,
        )

    @property
    def t_cleanup(self) -> float:
        # The dead list must outlive the *slowest* declaring node or a
        # straggler's stale counters resurrect the victim cluster-wide.
        # Under the counter strategy the detector bound IS t_fail (same
        # formula), so this stays 2 x t_fail byte-for-byte; adaptive
        # detectors stretch the quarantine to their advertised bound.
        n = max(len(self._counters), len(self.seeds) + 1, 2)
        return 2.0 * max(
            self.t_fail, self.detector.detection_bound(n=n, scheme="gossip")
        )

    # ------------------------------------------------------------------
    # Failure-detection seam
    # ------------------------------------------------------------------
    def _wire_detector(self) -> None:
        from repro.detect import UnicastProber

        self.detector.attach(
            prober=UnicastProber(
                self.runtime, GOSSIP_DETECT_PORT, self.config.header_size
            ),
            members=self._probe_candidates,
        )

    def _probe_candidates(self) -> List[str]:
        pool = set(self._counters) | set(self.seeds)
        pool.discard(self.node_id)
        pool.difference_update(self._dead)
        return sorted(pool)

    def _on_probe(self, packet: Packet) -> None:
        if not self.running:
            return
        handle_probe_packet(
            self.runtime,
            self.detector,
            packet,
            GOSSIP_DETECT_PORT,
            self.config.header_size,
        )

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _reset_run_state(self) -> None:
        self._counters = {self.node_id: 0}
        self.detector.observe_heartbeat(GOSSIP_SCOPE, self.node_id, self.runtime.now)
        self._dead.clear()
        self._dead_since.clear()

    def _on_start(self) -> None:
        self.runtime.bind(GOSSIP_PORT, self._on_packet)
        if self.detector.uses_probes:
            self.runtime.bind(GOSSIP_DETECT_PORT, self._on_probe)
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self.runtime.call_every(
            self.config.heartbeat_period, self._gossip_tick, first_delay=phase
        )

    def _on_stop(self) -> None:
        self.runtime.unbind(GOSSIP_PORT)
        if self.detector.uses_probes:
            self.runtime.unbind(GOSSIP_DETECT_PORT)
        self._counters.clear()

    # ------------------------------------------------------------------
    # Gossip round
    # ------------------------------------------------------------------
    def _gossip_tick(self) -> None:
        if not self.running:
            return
        now = self.runtime.now
        self._counters[self.node_id] += 1
        self.detector.observe_heartbeat(GOSSIP_SCOPE, self.node_id, now)
        self._expire(now)
        targets = self._pick_targets()
        if targets:
            view = {
                nid: (self._counters[nid], self.directory.get(nid))
                for nid in self._counters
            }
            size = self.config.message_size(len(view))
            for target in targets:
                self.runtime.send(
                    target,
                    kind="gossip",
                    payload={"view": view, "sender": self.node_id},
                    size=size,
                    port=GOSSIP_PORT,
                )

    def _pick_targets(self) -> List[str]:
        # Known members plus the configured seed list: gossiping only to
        # already-known peers can partition the epidemic into cliques.
        # Declared-dead members are excluded until they provably return.
        pool = set(self._counters) | set(self.seeds)
        pool.discard(self.node_id)
        pool.difference_update(self._dead)
        candidates = sorted(pool)
        if not candidates:
            return []
        k = min(self.config.gossip_fanout, len(candidates))
        return self.rng.sample(candidates, k)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def _on_packet(self, packet: Packet) -> None:
        if not self.running or packet.kind != "gossip":
            return
        now = self.runtime.now
        for nid, (counter, record) in packet.payload["view"].items():
            if nid == self.node_id:
                continue
            dead_counter = self._dead.get(nid)
            if dead_counter is not None and counter <= dead_counter:
                continue  # stale news about a node we already declared dead
            if dead_counter is not None:
                # Node genuinely came back (higher counter than at death).
                del self._dead[nid]
                self._dead_since.pop(nid, None)
            known = self._counters.get(nid)
            if known is None or counter > known:
                is_new = nid not in self.directory
                self._counters[nid] = counter
                # A counter increase is gossip's heartbeat observation.
                self.detector.observe_heartbeat(
                    GOSSIP_SCOPE,
                    nid,
                    now,
                    record.incarnation if record is not None else 0,
                )
                if record is not None:
                    self.directory.upsert(record, now)
                    self.directory.refresh(nid, now)
                if is_new and nid in self.directory:
                    self._emit_member_up(nid)

    # ------------------------------------------------------------------
    # Failure declaration
    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        t_fail = self.t_fail
        # Candidate order mirrors the pre-refactor scan (counter-map
        # insertion order minus self); with the counter strategy the
        # verdicts — and thus the traces — are byte-identical.
        candidates = [nid for nid in self._counters if nid != self.node_id]
        for nid in self.detector.silent_ids(GOSSIP_SCOPE, candidates, now, t_fail):
            self._dead[nid] = self._counters.pop(nid)
            self._dead_since[nid] = now
            self.detector.forget(nid, GOSSIP_SCOPE)
            if self.directory.remove(nid):
                self._emit_member_down(nid)
        t_cleanup = self.t_cleanup
        for nid in list(self._dead):
            if now - self._dead_since[nid] > t_cleanup:
                del self._dead[nid]
                del self._dead_since[nid]
