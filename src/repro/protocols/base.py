"""Common interface and configuration for all membership protocols.

Every protocol node owns a :class:`~repro.cluster.directory.Directory` (its
yellow pages), publishes a :class:`~repro.cluster.directory.NodeRecord`
about itself, and emits the trace events the experiment harness keys on:

========================  =====================================================
``member_up``             observer ``node`` added ``target`` to its directory
``member_down``           observer ``node`` removed ``target`` (failure/purge)
========================  =====================================================

Protocol code never touches ``repro.sim`` or ``repro.net`` directly: each
node owns a :class:`~repro.runtime.ports.NodeRuntime` (here the
:class:`~repro.runtime.sim.SimRuntime` adapter) for its clock, timers,
channels, unicast and observability.  The daemon lifecycle is written
once, in :meth:`MembershipNode.start` / :meth:`MembershipNode.stop`:
start bumps the incarnation, activates the runtime (new timer epoch),
resets per-run state and publishes the self record; stop silences the
node, cancels every registered timer wholesale and drops the view.
Schemes fill in the :meth:`_reset_run_state` / :meth:`_on_start` /
:meth:`_on_stop` hooks.

Packet sizing follows the paper's measurement: "The average packet size
carrying the membership information of each node is measured as 228 bytes"
(Section 6.2), so a message carrying *k* member descriptions costs
``header + k * member_size`` bytes on the wire.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Type

from repro.cluster.directory import Directory, NodeRecord
from repro.cluster.machine import MachineInfo
from repro.cluster.service import ServiceSpec
from repro.detect import FailureDetector, make_detector
from repro.net.network import Network
from repro.runtime import NodeRuntime, SimRuntime

__all__ = ["ProtocolConfig", "MembershipNode", "deploy"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables shared by the three schemes.

    Defaults reproduce the paper's evaluation settings (Section 6.2): one
    heartbeat/gossip packet per second, a node declared dead after 5
    consecutive missed heartbeats, and 228-byte member descriptions.
    """

    heartbeat_period: float = 1.0
    max_loss: int = 5
    member_size: int = 228
    header_size: int = 28  # IP + UDP headers
    max_ttl: int = 8
    #: gossip-only: fan-out per round and mistake probability bound.
    gossip_fanout: int = 1
    gossip_mistake_prob: float = 0.001
    #: failure-detection strategy (:mod:`repro.detect` registry name):
    #: ``counter`` (the paper's MAX_LOSS deadline, default), ``swim``
    #: (ping/ack + suspicion) or ``phi-accrual`` (adaptive threshold).
    detector: str = "counter"
    #: swim-only: probe round period, per-probe ack timeout, number of
    #: indirect ping-req relays, and the suspicion-to-declaration delay.
    probe_period: float = 1.0
    probe_timeout: float = 0.5
    indirect_probes: int = 3
    suspicion_timeout: float = 2.0
    #: phi-accrual-only: declaration threshold (φ = 1 ⇒ "90% sure dead",
    #: each +1 another nine) and the inter-arrival window length.
    phi_threshold: float = 8.0
    phi_window: int = 32
    #: hierarchical-only knobs live in repro.core.config.HierarchicalConfig.

    @property
    def fail_timeout(self) -> float:
        """Counter deadline: ``max_loss`` missed beats.

        This is the schemes' bookkeeping base unit (level timeouts,
        tombstone quarantines, backstops all scale off it) — **not** the
        advertised detection time, which depends on the active detector:
        use :meth:`detection_time` for anything user-facing.
        """
        return self.max_loss * self.heartbeat_period

    def detection_time(self, n: int = 2, scheme: str = "hierarchical") -> float:
        """Advertised detection bound of the configured detector.

        Routed through :func:`repro.detect.bounds.detection_bound`, so
        analysis plots stay truthful when the detector is not the
        counter (the old hard-coded ``max_loss × heartbeat_period``).
        """
        from repro.detect.bounds import config_detection_bound

        return config_detection_bound(self, n=n, scheme=scheme)

    def message_size(self, members: int) -> int:
        """Wire size of a packet describing ``members`` nodes."""
        return self.header_size + self.member_size * members


class MembershipNode(ABC):
    """One node's protocol stack (daemon process in the paper's terms).

    Subclasses implement the lifecycle hooks and keep ``self.directory``
    equal to the node's current view.  ``stop`` models a daemon kill: all
    timers are cancelled and state dropped; a subsequent ``start``
    re-joins from scratch with a bumped incarnation.
    """

    #: Enable the protocol hot-path engine (interned self records and
    #: heartbeats, deadline-heap purges).  Class default;
    #: :class:`~repro.core.node.HierarchicalNode` exposes it per instance.
    #: Flip only before ``start()`` — the legacy path exists for A/B runs.
    use_fast_path: bool = True

    #: Dissemination-scheme name as keyed in :data:`repro.analysis.models.
    #: MODELS`; concrete nodes set it so detector bounds
    #: (:func:`repro.detect.bounds.detection_bound`) can be quoted for the
    #: right scheme by observers that only hold node objects.
    scheme: str = "hierarchical"

    def __init__(
        self,
        network: Optional[Network],
        node_id: str,
        config: Optional[ProtocolConfig] = None,
        services: Sequence[ServiceSpec] = (),
        machine: Optional[MachineInfo] = None,
        runtime: Optional[NodeRuntime] = None,
    ) -> None:
        self.network = network
        self.node_id = node_id
        self.config = config if config is not None else ProtocolConfig()
        self.machine = machine if machine is not None else MachineInfo()
        self._services: Dict[str, ServiceSpec] = {s.name: s for s in services}
        self._extra_attrs: Dict[str, str] = {}
        self.incarnation = 0
        self.directory = Directory(node_id)
        self.running = False
        # The runtime seam: protocol stacks talk only to the NodeRuntime
        # ports, so the same stack runs under the simulator (default) or a
        # real transport (``repro.runtime.anet.AsyncRuntime``).  When a
        # runtime is injected, ``network`` may be None.
        self.runtime: NodeRuntime = (
            runtime if runtime is not None else SimRuntime(network, node_id)
        )
        self.rng = self.runtime.rng_stream(f"proto.{node_id}")
        # The detection seam: the strategy named by ``config.detector``
        # decides when silence becomes a death declaration.  Schemes
        # attach their prober/membership ports in ``_wire_detector``.
        self.detector: FailureDetector = make_detector(self.config, self.runtime)
        self._wire_detector()
        self._self_record_cache: Optional[NodeRecord] = None

    # ------------------------------------------------------------------
    # Self description
    # ------------------------------------------------------------------
    def self_record(self) -> NodeRecord:
        """The record this node currently publishes about itself.

        On the fast path the frozen record is interned until either the
        published content changes (:meth:`_self_changed`) or the
        incarnation moves — a heartbeat sender then reuses one object per
        boot epoch instead of allocating one per period, which also lets
        receivers dedupe by identity.
        """
        cached = self._self_record_cache
        if cached is not None and cached.incarnation == self.incarnation:
            return cached
        record = NodeRecord(
            node_id=self.node_id,
            incarnation=self.incarnation,
            services={name: spec.partitions for name, spec in self._services.items()},
            attrs={**self.machine.to_attrs(), **self._extra_attrs},
        )
        if self.use_fast_path:
            self._self_record_cache = record
        return record

    def register_service(self, spec: ServiceSpec) -> None:
        """Publish a service through the membership protocol (MService API)."""
        self._services[spec.name] = spec
        self._self_record_cache = None
        if self.running:
            self._self_changed()

    def unregister_service(self, name: str) -> None:
        self._services.pop(name, None)
        self._self_record_cache = None
        if self.running:
            self._self_changed()

    def update_value(self, key: str, value: str) -> None:
        """Publish a key-value pair (``MService::update_value``)."""
        self._extra_attrs[key] = value
        self._self_record_cache = None
        if self.running:
            self._self_changed()

    def delete_value(self, key: str) -> None:
        self._extra_attrs.pop(key, None)
        self._self_record_cache = None
        if self.running:
            self._self_changed()

    def _self_changed(self) -> None:
        """Hook: the published self-record changed while running."""
        self._self_record_cache = None
        self.directory.upsert(self.self_record(), self.runtime.now)

    # ------------------------------------------------------------------
    # Lifecycle (written once; schemes fill in the hooks)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Join the protocol: new incarnation, fresh view, scheme hooks."""
        if self.running:
            return
        self.running = True
        self.incarnation += 1
        self.runtime.activate()
        # Detector first: its state must be clean before the scheme's
        # reset hook replays initial observations (gossip's own counter).
        # The default CounterDetector is inert here — no timers, no RNG —
        # so the golden seeded traces are unchanged.
        self.detector.start()
        self._reset_run_state()
        self.directory.clear()
        self.directory.upsert(self.self_record(), self.runtime.now)
        self._emit_view_reset()
        self._on_start()

    def stop(self) -> None:
        """Kill the daemon: go silent, cancel all timers, drop state."""
        if not self.running:
            return
        self.running = False
        self._on_stop()
        self.detector.stop()
        self.runtime.deactivate()
        self.directory.clear()

    def _reset_run_state(self) -> None:
        """Hook: forget scheme state from a previous run (before the view
        is rebuilt).  Runs with ``running``/``incarnation`` already set."""

    # ------------------------------------------------------------------
    # Failure-detection seam
    # ------------------------------------------------------------------
    def _wire_detector(self) -> None:
        """Hook: attach scheme ports (prober, members) to ``self.detector``.

        Called from ``__init__`` (before scheme state exists — attach
        closures, not snapshots) and again after every
        :meth:`rebuild_detector`.
        """

    def rebuild_detector(self) -> None:
        """Swap in a fresh detector built from the current ``config``.

        Used by the control plane when ``detector`` or a detector knob
        changes at runtime; safe mid-run — the old strategy's timers are
        cancelled and the new one starts cold (it re-learns liveness from
        the next observations, with the counter deadline as fallback).
        """
        was_running = self.running
        if was_running:
            self.detector.stop()
        self.detector = make_detector(self.config, self.runtime)
        self._wire_detector()
        self._on_detector_rebuilt()
        if was_running:
            self.detector.start()

    def _on_detector_rebuilt(self) -> None:
        """Hook: scheme re-points any cached detector references."""

    def apply_config(self, config: "ProtocolConfig") -> None:
        """Adopt a new (replaced) config, rebuilding the detector.

        The runtime control plane replaces the frozen config dataclass;
        schemes that denormalise the config elsewhere override this to
        re-point those references too.
        """
        self.config = config
        self.rebuild_detector()

    @abstractmethod
    def _on_start(self) -> None:
        """Hook: bind channels/ports and arm timers for the new run."""

    @abstractmethod
    def _on_stop(self) -> None:
        """Hook: unbind channels/ports; timers die with the runtime."""

    # ------------------------------------------------------------------
    # View helpers used by experiments
    # ------------------------------------------------------------------
    def view(self) -> List[str]:
        """Sorted node ids currently believed alive."""
        return list(self.directory.members())

    def knows(self, node_id: str) -> bool:
        return node_id in self.directory

    # ------------------------------------------------------------------
    # Trace hooks (shared vocabulary across protocols)
    # ------------------------------------------------------------------
    def _emit_view_reset(self) -> None:
        """Trace that this node's directory was wiped (daemon [re]start).

        Metric reconstruction needs it: without the reset marker a
        restarted node would appear to still hold its pre-crash view.
        """
        self.runtime.obs.view_resets.inc()
        self.runtime.emit("view_reset")

    def _emit_member_up(self, target: str) -> None:
        self.runtime.obs.member_up.inc()
        self.runtime.emit_view_event("member_up", target)

    def _emit_member_down(self, target: str, reason: str = "timeout") -> None:
        self.runtime.obs.member_down.labels(reason=reason).inc()
        self.runtime.emit("member_down", target=target, reason=reason)


def deploy(
    node_cls: Type[MembershipNode],
    network: Network,
    hosts: Iterable[str],
    config: Optional[ProtocolConfig] = None,
    services: Optional[Dict[str, Sequence[ServiceSpec]]] = None,
    start: bool = True,
    **node_kwargs: object,
) -> Dict[str, MembershipNode]:
    """Instantiate (and optionally start) one protocol node per host.

    ``services`` optionally maps host -> service specs to export.  Extra
    keyword arguments are forwarded to the node constructor, letting
    callers pass scheme-specific options (e.g. gossip seeds).
    """
    nodes: Dict[str, MembershipNode] = {}
    for host in hosts:
        specs = (services or {}).get(host, ())
        nodes[host] = node_cls(
            network, host, config=config, services=specs, **node_kwargs
        )
    if start:
        for node in nodes.values():
            node.start()
    return nodes
