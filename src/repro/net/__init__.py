"""Network substrate: topology, TTL-scoped multicast, lossy UDP unicast.

The paper's protocol is *topology-adaptive*: it forms membership groups from
IP-multicast TTL scoping (a packet sent with TTL *t* is seen only by hosts
within *t* router hops).  This package models exactly the mechanisms the
protocol depends on:

* :mod:`repro.net.topology` — hosts, layer-2 switches and layer-3 routers in
  a graph; the **TTL distance** between two hosts is ``1 + number of routers
  crossed`` on the shortest path (a TTL-1 packet stays within its L2
  segment, matching Section 2 of the paper).
* :mod:`repro.net.multicast` — multicast channels with per-send TTL scoping.
* :mod:`repro.net.transport` — unicast UDP with latency and loss, plus an
  address table supporting the proxy protocol's **IP failover** (a virtual
  address re-bound to the new proxy leader).
* :mod:`repro.net.faults` — chaos fault plans: per-link directional loss,
  delay jitter, duplication and bounded reordering consulted by both
  fabrics (see docs/FAULTS.md).
* :mod:`repro.net.bandwidth` — per-host byte/packet accounting used to
  reproduce the Fig. 2 and Fig. 11 bandwidth measurements.
* :mod:`repro.net.builders` — canonical topologies: the paper's testbed
  (racks behind L3 switches), deep router trees, the Fig. 4 overlapping
  layout, and multi-data-center deployments with WAN links.

All of it is glued together by :class:`repro.net.network.Network`, the
facade protocol nodes talk to.
"""

from repro.net.topology import Topology, NodeKind, UNREACHABLE
from repro.net.packet import Packet
from repro.net.bandwidth import BandwidthMeter
from repro.net.faults import FaultPlan, LinkFault
from repro.net.network import Network
from repro.net.builders import (
    build_switched_cluster,
    build_router_tree,
    build_overlap_topology,
    build_two_datacenters,
)

__all__ = [
    "Topology",
    "NodeKind",
    "UNREACHABLE",
    "Packet",
    "BandwidthMeter",
    "FaultPlan",
    "LinkFault",
    "Network",
    "build_switched_cluster",
    "build_router_tree",
    "build_overlap_topology",
    "build_two_datacenters",
]
