"""TTL-scoped multicast fabric.

A *channel* models one (multicast address, port) pair.  The paper derives
all channels from a single base channel plus a TTL value ("Only a base
multicast channel needs to be specified for a cluster", Section 3.1.1), so
protocol code names channels as strings like ``"base:L0"``, ``"base:L2"``.

Delivery semantics: a packet sent by host *h* on channel *c* with TTL *t*
is delivered to every **subscribed, live** host *s ≠ h* whose
``ttl_distance(h, s) ≤ t`` over currently-live devices.  Each receiver
independently suffers the loss process — exactly the paper's UDP multicast
failure model ("it is possible these packets can be lost due to network
congestion or overloading senders or receivers").
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, Optional

from repro.net.bandwidth import BandwidthMeter
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim.engine import Simulator

__all__ = ["MulticastFabric"]

Handler = Callable[[Packet], None]


class MulticastFabric:
    """Routes multicast packets to TTL-reachable subscribers.

    Parameters
    ----------
    sim, topo, meter:
        Simulation kernel, device graph, and bandwidth accounting.
    loss_rate:
        Per-receiver independent drop probability.
    loss_rng:
        Seeded stream used for drops (``None`` disables loss even if
        ``loss_rate > 0``, which keeps fully deterministic tests simple).
    proc_delay:
        Fixed receive-path processing delay added to topology latency.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        meter: BandwidthMeter,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        proc_delay: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.topo = topo
        self.meter = meter
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.proc_delay = proc_delay
        # channel -> host -> handler
        self._subs: Dict[str, Dict[str, Handler]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # Membership of channels
    # ------------------------------------------------------------------
    def subscribe(self, channel: str, host: str, handler: Handler) -> None:
        """Join ``host`` to ``channel``; replaces any previous handler."""
        self._subs[channel][host] = handler

    def unsubscribe(self, channel: str, host: str) -> None:
        self._subs.get(channel, {}).pop(host, None)

    def unsubscribe_all(self, host: str) -> None:
        """Used when a host crashes: it stops hearing everything."""
        for subs in self._subs.values():
            subs.pop(host, None)

    def subscribers(self, channel: str) -> list[str]:
        return sorted(self._subs.get(channel, {}))

    def is_subscribed(self, channel: str, host: str) -> bool:
        return host in self._subs.get(channel, {})

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> int:
        """Multicast ``packet`` on ``packet.channel`` with ``packet.ttl``.

        Returns the number of deliveries scheduled (post-scope, pre-loss).
        A downed sender transmits nothing.
        """
        if packet.channel is None:
            raise ValueError("multicast send requires packet.channel")
        if not self.topo.is_up(packet.src):
            return 0
        self.meter.record(self.sim.now, packet.src, "tx", packet.kind, packet.size)
        subs = self._subs.get(packet.channel)
        if not subs:
            return 0
        delivered = 0
        for host, handler in list(subs.items()):
            if host == packet.src:
                continue
            dist = self.topo.ttl_distance(packet.src, host)
            if dist > packet.ttl:
                continue
            delivered += 1
            if self.loss_rng is not None and self.loss_rate > 0.0:
                if self.loss_rng.random() < self.loss_rate:
                    continue
            delay = self.topo.latency(packet.src, host) + self.proc_delay
            self.sim.call_after(delay, self._deliver, packet, host, handler)
        return delivered

    def _deliver(self, packet: Packet, host: str, handler: Handler) -> None:
        # The host may have crashed or left the channel while in flight.
        if not self.topo.is_up(host):
            return
        if self._subs.get(packet.channel, {}).get(host) is not handler:
            return
        self.meter.record(self.sim.now, host, "rx", packet.kind, packet.size)
        handler(packet)
