"""TTL-scoped multicast fabric.

A *channel* models one (multicast address, port) pair.  The paper derives
all channels from a single base channel plus a TTL value ("Only a base
multicast channel needs to be specified for a cluster", Section 3.1.1), so
protocol code names channels as strings like ``"base:L0"``, ``"base:L2"``.

Delivery semantics: a packet sent by host *h* on channel *c* with TTL *t*
is delivered to every **subscribed, live** host *s ≠ h* whose
``ttl_distance(h, s) ≤ t`` over currently-live devices.  Each receiver
independently suffers the loss process — exactly the paper's UDP multicast
failure model ("it is possible these packets can be lost due to network
congestion or overloading senders or receivers").

Fast path
---------
``send()`` resolves its recipients through a **delivery plan** cached per
``(channel, src, ttl)``: the ordered tuple of ``(host, handler, delay)``
triples a send from that key fans out to.  Plans are validated against
``Topology.version`` plus a per-channel subscription version, so topology
churn and subscribe/unsubscribe invalidate exactly the plans they affect
instead of forcing a rebuild on every send.  Recipients are then grouped
by identical delay and each group is scheduled as **one** kernel event
(:meth:`Simulator.call_at_batch`) that loops over the receivers, cutting
heap traffic from O(receivers) to O(distinct delays) per send.

Determinism contract: recipients appear in the plan in subscription
(dict insertion) order — the same order the legacy path iterates — and
loss draws are taken in that order at send time, so seeded runs produce
byte-identical traces on either path (``use_fast_path`` toggles; see
docs/PERFORMANCE.md).

Chaos faults
------------
An installed :class:`~repro.net.faults.FaultPlan` (``fault_plan``) is
consulted per (packet, receiver) after the base loss draw, again in
receiver-iteration order on both paths, and may drop, delay, duplicate
or reorder the delivery (see docs/FAULTS.md).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.bandwidth import BandwidthMeter
from repro.net.faults import FaultPlan
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.obs.wiring import NOOP, Instruments
from repro.sim.engine import Simulator

__all__ = ["MulticastFabric"]

Handler = Callable[[Packet], None]

#: One delay bucket of a cached fan-out: (delay, (host, handler) pairs in
#: plan order, the hosts alone, the handlers alone — both in the same
#: order, prebuilt for metering and dispatch — and a mutable box
#: ``[meter_epoch, pending]`` caching the meter's deferred-accounting
#: handle for this bucket's receiver cells).
_Bucket = Tuple[float, List[Tuple[str, Handler]], List[str], List[Handler], list]

#: One cached fan-out: (subscription version it was built against,
#: ordered (host, handler, delay) recipients, recipients grouped by delay).
# (sub_version, sub_reset, log_idx, recipients, buckets).  ``recipients``
# is a plan-private mutable list so subscription growth extends it in
# place; ``buckets`` are rebuilt (fresh objects) on every extension so
# in-flight deliveries holding old buckets never observe the change.
_Plan = Tuple[int, int, int, List[Tuple[str, Handler, float]], Tuple[_Bucket, ...]]


class MulticastFabric:
    """Routes multicast packets to TTL-reachable subscribers.

    Parameters
    ----------
    sim, topo, meter:
        Simulation kernel, device graph, and bandwidth accounting.
    loss_rate:
        Per-receiver independent drop probability.  ``1.0`` (total loss)
        is legal — experiments blacking out the whole fabric are a
        legitimate fault scenario.
    loss_rng:
        Seeded stream used for drops.  Required whenever
        ``loss_rate > 0``: a lossy configuration without a stream used to
        silently run lossless, which turned intended loss experiments
        into clean runs — it now raises instead.
    proc_delay:
        Fixed receive-path processing delay added to topology latency.

    Attributes
    ----------
    use_fast_path:
        When True (default) sends go through the cached-plan/batched
        scheduler; False falls back to the legacy per-receiver path.
        Benchmarks flip this to measure both engines in one process; the
        two paths are trace-identical by contract.
    """

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        meter: BandwidthMeter,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        proc_delay: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError(
                "loss_rate > 0 requires a seeded loss_rng; a missing stream "
                "used to silently disable the loss process"
            )
        self.sim = sim
        self.topo = topo
        self.meter = meter
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.proc_delay = proc_delay
        self.use_fast_path = True
        #: Optional chaos fault plan (installed via Network.set_fault_plan).
        self.fault_plan: Optional[FaultPlan] = None
        #: Shared instruments; no-op until observability is enabled.
        self.obs: Instruments = NOOP
        # channel -> host -> handler
        self._subs: Dict[str, Dict[str, Handler]] = defaultdict(dict)
        # channel -> version, bumped on any subscription change to that channel
        self._sub_version: Dict[str, int] = defaultdict(int)
        # channel -> append-only log of *new* subscriptions since the last
        # reset; lets stale plans extend with the delta instead of
        # re-querying a distance per already-planned recipient (the
        # formation-time mass-join cost).  Removals and handler
        # replacements bump _sub_reset, which forces a full rebuild and
        # clears the log (dict insertion order then restarts aligned).
        self._sub_log: Dict[str, List[Tuple[str, Handler]]] = defaultdict(list)
        self._sub_reset: Dict[str, int] = defaultdict(int)
        # (channel, src, ttl) -> plan; valid only while _plans_topo_version
        # matches the live topology and the plan's own sub version matches.
        self._plans: Dict[Tuple[str, str, int], _Plan] = {}
        self._plans_topo_version = topo.version

    # ------------------------------------------------------------------
    # Membership of channels
    # ------------------------------------------------------------------
    def subscribe(self, channel: str, host: str, handler: Handler) -> None:
        """Join ``host`` to ``channel``; replaces any previous handler."""
        subs = self._subs[channel]
        if host in subs:
            self._bump_reset(channel)  # replacement: position/handler moved
        else:
            self._sub_log[channel].append((host, handler))
        subs[host] = handler
        self._sub_version[channel] += 1

    def unsubscribe(self, channel: str, host: str) -> None:
        subs = self._subs.get(channel)
        if subs is not None and subs.pop(host, None) is not None:
            self._bump_reset(channel)
            self._sub_version[channel] += 1

    def unsubscribe_all(self, host: str) -> None:
        """Used when a host crashes: it stops hearing everything."""
        for channel, subs in self._subs.items():
            if subs.pop(host, None) is not None:
                self._bump_reset(channel)
                self._sub_version[channel] += 1

    def _bump_reset(self, channel: str) -> None:
        self._sub_reset[channel] += 1
        self._sub_log[channel].clear()

    def subscribers(self, channel: str) -> list[str]:
        return sorted(self._subs.get(channel, {}))

    def is_subscribed(self, channel: str, host: str) -> bool:
        return host in self._subs.get(channel, {})

    # ------------------------------------------------------------------
    # Delivery plans
    # ------------------------------------------------------------------
    def _plan(
        self, channel: str, src: str, ttl: int
    ) -> Tuple[List[Tuple[str, Handler, float]], Tuple[_Bucket, ...]]:
        """Recipients of a (channel, src, ttl) send, in subscription order.

        Returns the flat recipient tuple plus the same recipients grouped
        by identical delay (the shape the lossless fast path schedules
        directly).  Cached until the topology mutates or the channel's
        subscriptions change; both are validated on read so invalidation
        is O(1) at the mutation site.
        """
        topo = self.topo
        if topo.version != self._plans_topo_version:
            # Any device/link/up-down change may move TTL distances for
            # every cached key, so the whole plan cache is stale at once.
            self._plans.clear()
            self._plans_topo_version = topo.version
        key = (channel, src, ttl)
        sub_version = self._sub_version[channel]
        plan = self._plans.get(key)
        if plan is not None and plan[0] == sub_version:
            return plan[3], plan[4]
        reset = self._sub_reset[channel]
        log = self._sub_log[channel]
        # One fused (ttl, latency) query per candidate: plan building is
        # n^2-scale on cluster-wide channels during a mass join, and the
        # two quantities come out of the same routing cell anyway.
        route = topo.mc_route
        proc_delay = self.proc_delay
        if plan is not None and plan[1] == reset:
            # Pure additions since this plan was built: evaluate only the
            # log suffix.  Equivalent to a full rebuild because the subs
            # dict's insertion order is exactly the log order until the
            # next reset (removal/replacement) forces the rebuild path.
            recipients = plan[3]
            for host, handler in log[plan[2] :]:
                if host == src:
                    continue
                hops, lat = route(src, host)
                if hops > ttl:
                    continue
                recipients.append((host, handler, lat + proc_delay))
        else:
            recipients = []
            subs = self._subs.get(channel)
            if subs:
                for host, handler in subs.items():
                    if host == src:
                        continue
                    hops, lat = route(src, host)
                    if hops > ttl:
                        continue
                    recipients.append((host, handler, lat + proc_delay))
        by_delay: Dict[float, _Bucket] = {}
        for host, handler, delay in recipients:
            bucket = by_delay.get(delay)
            if bucket is None:
                by_delay[delay] = (delay, [(host, handler)], [host], [handler], [])
            else:
                bucket[1].append((host, handler))
                bucket[2].append(host)
                bucket[3].append(handler)
        buckets = tuple(by_delay.values())
        self._plans[key] = (sub_version, reset, len(log), recipients, buckets)
        return recipients, buckets

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> int:
        """Multicast ``packet`` on ``packet.channel`` with ``packet.ttl``.

        Returns the number of deliveries scheduled (post-scope, pre-loss).
        A downed sender transmits nothing.
        """
        if packet.channel is None:
            raise ValueError("multicast send requires packet.channel")
        if not self.use_fast_path:
            return self._send_slow(packet)
        if not self.topo.is_up(packet.src):
            return 0
        self.meter.record(self.sim.now, packet.src, "tx", packet.kind, packet.size)
        obs = self.obs
        obs.mc_tx.inc()
        recipients, plan_buckets = self._plan(packet.channel, packet.src, packet.ttl)
        obs.mc_fanout.observe(len(recipients))
        if not recipients:
            return 0
        obs.mc_deliveries.add(len(recipients))
        fault = self.fault_plan
        if fault is not None and fault.rules:
            return self._send_fast_chaos(packet, recipients, fault)
        # The stamp lets delivery skip per-receiver revalidation: if neither
        # the topology nor the channel's subscriptions moved while the
        # packet was in flight, every planned receiver is provably still up
        # and still holds the same handler.
        stamp = (self._plans_topo_version, self._sub_version[packet.channel])
        now = self.sim.now
        if self.loss_rng is not None and self.loss_rate > 0.0:
            # Group survivors by identical delay; loss is drawn in plan
            # (= sender-iteration) order so the RNG stream matches the
            # legacy path draw for draw.
            rand = self.loss_rng.random
            rate = self.loss_rate
            dropped = 0
            buckets: Dict[float, List[Tuple[str, Handler]]] = {}
            for host, handler, delay in recipients:
                if rand() < rate:
                    dropped += 1
                    continue
                bucket = buckets.get(delay)
                if bucket is None:
                    buckets[delay] = [(host, handler)]
                else:
                    bucket.append((host, handler))
            if dropped:
                obs.mc_drops.add(dropped)
            for delay, bucket in buckets.items():
                # owned=True: the handle is discarded here, so the kernel
                # may recycle the event object through its free-list after
                # firing.
                self.sim.call_at_batch(
                    now + delay, self._deliver_batch, bucket, packet, stamp,
                    owned=True,
                )
        else:
            # Lossless: the plan's precomputed buckets are the delivery
            # schedule verbatim — nothing per-receiver happens at send time.
            for bucket in plan_buckets:
                self.sim.call_at_batch(
                    now + bucket[0], self._deliver_planned, bucket, packet, stamp,
                    owned=True,
                )
        return len(recipients)

    def _send_fast_chaos(
        self,
        packet: Packet,
        recipients: List[Tuple[str, Handler, float]],
        fault: FaultPlan,
    ) -> int:
        """Fast path under an active fault plan.

        Same bucketed scheduling as the plain fast path, but each
        receiver's total delay folds in the plan's verdict (drop / extra
        delay / duplicate copies).  Base loss and fault draws both happen
        in plan (= sender-iteration) order, so the chaos stream is
        consumed draw-for-draw like the legacy path.
        """
        now = self.sim.now
        src = packet.src
        lossy = self.loss_rng is not None and self.loss_rate > 0.0
        rand = self.loss_rng.random if lossy else None
        rate = self.loss_rate
        stamp = (self._plans_topo_version, self._sub_version[packet.channel])
        buckets: Dict[float, List[Tuple[str, Handler]]] = {}
        dropped = 0
        for host, handler, delay in recipients:
            if lossy and rand() < rate:
                dropped += 1
                continue
            offsets = fault.offsets(src, host, now)
            if offsets is None:
                buckets.setdefault(delay, []).append((host, handler))
                continue
            for off in offsets:
                buckets.setdefault(delay + off, []).append((host, handler))
        if dropped:
            self.obs.mc_drops.add(dropped)
        for delay, bucket in buckets.items():
            self.sim.call_at_batch(
                now + delay, self._deliver_batch, bucket, packet, stamp,
                owned=True,
            )
        return len(recipients)

    def _send_slow(self, packet: Packet) -> int:
        """Legacy per-receiver path (baseline mode for benchmarks)."""
        if not self.topo.is_up(packet.src):
            return 0
        self.meter.record(self.sim.now, packet.src, "tx", packet.kind, packet.size)
        obs = self.obs
        obs.mc_tx.inc()
        subs = self._subs.get(packet.channel)
        if not subs:
            obs.mc_fanout.observe(0)
            return 0
        fault = self.fault_plan
        if fault is not None and not fault.rules:
            fault = None
        now = self.sim.now
        delivered = 0
        dropped = 0
        for host, handler in list(subs.items()):
            if host == packet.src:
                continue
            dist = self.topo.ttl_distance(packet.src, host)
            if dist > packet.ttl:
                continue
            delivered += 1
            if self.loss_rng is not None and self.loss_rate > 0.0:
                if self.loss_rng.random() < self.loss_rate:
                    dropped += 1
                    continue
            delay = self.topo.latency(packet.src, host) + self.proc_delay
            if fault is not None:
                offsets = fault.offsets(packet.src, host, now)
                if offsets is not None:
                    for off in offsets:
                        self.sim.call_after(delay + off, self._deliver, packet, host, handler)
                    continue
            self.sim.call_after(delay, self._deliver, packet, host, handler)
        obs.mc_fanout.observe(delivered)
        obs.mc_deliveries.add(delivered)
        if dropped:
            obs.mc_drops.add(dropped)
        return delivered

    def _deliver_batch(
        self,
        recipients: List[Tuple[str, Handler]],
        packet: Packet,
        stamp: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Deliver one delay bucket: validate, account once, then dispatch.

        Hosts may have crashed or left the channel while in flight, so each
        is re-validated at delivery time, exactly like the per-receiver path
        — unless ``stamp`` proves nothing could have changed: if both the
        topology version and the channel's subscription version still match
        their send-time values, every planned receiver is still up and
        still bound to the same handler, and the scan is skipped.
        Receive-side metering for the whole bucket lands in a single
        :meth:`BandwidthMeter.record_many` call.
        """
        if (
            stamp is not None
            and stamp[0] == self.topo.version
            and stamp[1] == self._sub_version[packet.channel]
        ):
            live = recipients
        else:
            subs = self._subs.get(packet.channel, {})
            is_up = self.topo.is_up
            live = [
                (host, handler)
                for host, handler in recipients
                if is_up(host) and subs.get(host) is handler
            ]
            if not live:
                return
        hosts = [host for host, _handler in live]
        self.meter.record_many(self.sim.now, hosts, "rx", packet.kind, packet.size)
        self.obs.mc_rx.add(len(live))
        for _host, handler in live:
            handler(packet)

    def _deliver_planned(
        self,
        bucket: _Bucket,
        packet: Packet,
        stamp: Tuple[int, int],
    ) -> None:
        """Deliver a cached plan bucket with flat per-receiver cost.

        The lossless fast path schedules the plan's own buckets, so the
        receiver pairs, the host list, and (via the bucket's mutable box)
        the meter's deferred-accounting handle are all reused across
        deliveries of the same plan.  When the stamp holds, per-receiver
        work is exactly one handler call — metering for the whole bucket
        is one O(1) :meth:`BandwidthMeter.record_pending` note, folded
        into the per-host cells lazily before any meter read.  A stale
        stamp falls back to the fully revalidating batch path.
        """
        if (
            stamp[0] != self.topo.version
            or stamp[1] != self._sub_version[packet.channel]
        ):
            self._deliver_batch(bucket[1], packet)
            return
        _delay, pairs, hosts, handlers, box = bucket
        meter = self.meter
        if meter.keep_series:
            # Series samples need host names, so take the generic path.
            meter.record_many(self.sim.now, hosts, "rx", packet.kind, packet.size)
        else:
            if not box or box[0] != meter.epoch:
                cells = meter.batch_cells(hosts, "rx")
                box[:] = (meter.epoch, meter.open_pending(cells))
            meter.record_pending(box[1], self.sim.now, packet.kind, packet.size)
        self.obs.mc_rx.add(len(pairs))
        for handler in handlers:
            handler(packet)

    def _deliver(self, packet: Packet, host: str, handler: Handler) -> None:
        # The host may have crashed or left the channel while in flight.
        if not self.topo.is_up(host):
            return
        if self._subs.get(packet.channel, {}).get(host) is not handler:
            return
        self.meter.record(self.sim.now, host, "rx", packet.kind, packet.size)
        self.obs.mc_rx.inc()
        handler(packet)
