"""Canonical topology builders.

Every evaluation scenario in the paper maps onto one of these layouts:

* :func:`build_switched_cluster` — the testbed shape used in Section 6:
  *k* networks (one L2 switch each, 20 hosts per network in the paper's
  emulation) joined by a core router, so intra-network TTL distance is 1
  and cross-network is 2.
* :func:`build_router_tree` — deeper hierarchies for >2-level trees; TTL
  distance grows with router depth.
* :func:`build_overlap_topology` — the Fig. 4 layout where TTL counts are
  not transitive and same-level groups overlap.
* :func:`build_two_datacenters` — two switched clusters joined by a WAN
  (VPN) link; multicast stays inside each DC, unicast crosses at the
  configured WAN latency (45 ms one-way ≈ the paper's 90 ms RTT).

Host naming is positional and stable (``"dc0-n1-h3"``) so experiments can
address "the 3rd host of network 1" without keeping side tables.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.net.topology import Topology

__all__ = [
    "build_switched_cluster",
    "build_router_tree",
    "build_overlap_topology",
    "build_two_datacenters",
]

#: Default one-way latencies (seconds).
LAN_LATENCY = 0.0001  # 0.1 ms host <-> switch
BACKBONE_LATENCY = 0.0002  # 0.2 ms switch <-> router / router <-> router
WAN_LATENCY = 0.045  # 45 ms one-way => 90 ms RTT (paper Section 6.7)


def build_switched_cluster(
    num_networks: int,
    hosts_per_network: int,
    dc: str = "dc0",
    topo: Topology | None = None,
    lan_latency: float = LAN_LATENCY,
    backbone_latency: float = BACKBONE_LATENCY,
) -> Tuple[Topology, List[str]]:
    """Networks of hosts behind L2 switches joined by one core router.

    TTL distances: 1 within a network, 2 across networks (one router
    crossed).  This is the two-level shape of the paper's 100-node
    evaluation (5 networks x 20 nodes).

    Returns ``(topology, hosts)`` with hosts in network-major order.
    """
    if num_networks < 1 or hosts_per_network < 1:
        raise ValueError("need at least one network and one host")
    t = topo if topo is not None else Topology()
    hosts: List[str] = []
    core = f"{dc}-core"
    if num_networks > 1:
        t.add_router(core, dc=dc)
    for net in range(num_networks):
        switch = f"{dc}-sw{net}"
        t.add_switch(switch, dc=dc)
        if num_networks > 1:
            t.add_link(switch, core, latency=backbone_latency)
        for idx in range(hosts_per_network):
            host = f"{dc}-n{net}-h{idx}"
            t.add_host(host, dc=dc)
            t.add_link(host, switch, latency=lan_latency)
            hosts.append(host)
    return t, hosts


def build_router_tree(
    depth: int,
    branching: int,
    hosts_per_leaf: int,
    dc: str = "dc0",
    lan_latency: float = LAN_LATENCY,
    backbone_latency: float = BACKBONE_LATENCY,
) -> Tuple[Topology, List[str]]:
    """A complete router tree of the given depth.

    ``depth`` counts router levels (1 = a single router whose children are
    leaf switches).  Each leaf router hangs one L2 switch with
    ``hosts_per_leaf`` hosts.  Cousin hosts at distance *d* in the router
    tree cross ``2d`` routers, giving a genuinely multi-level membership
    hierarchy.
    """
    if depth < 1 or branching < 1 or hosts_per_leaf < 1:
        raise ValueError("depth, branching, hosts_per_leaf must be >= 1")
    t = Topology()
    hosts: List[str] = []
    root = f"{dc}-r0"
    t.add_router(root, dc=dc)
    frontier = [root]
    next_id = 1
    for _level in range(1, depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                router = f"{dc}-r{next_id}"
                next_id += 1
                t.add_router(router, dc=dc)
                t.add_link(router, parent, latency=backbone_latency)
                new_frontier.append(router)
        frontier = new_frontier
    for leaf_idx, leaf in enumerate(frontier):
        switch = f"{dc}-sw{leaf_idx}"
        t.add_switch(switch, dc=dc)
        t.add_link(switch, leaf, latency=backbone_latency)
        for h in range(hosts_per_leaf):
            host = f"{dc}-n{leaf_idx}-h{h}"
            t.add_host(host, dc=dc)
            t.add_link(host, switch, latency=lan_latency)
            hosts.append(host)
    return t, hosts


def build_overlap_topology(
    hosts_per_group: int = 2,
    dc: str = "dc0",
) -> Tuple[Topology, List[str]]:
    """The Fig. 4 non-transitive layout.

    Three L2 segments behind routers ``rA``, ``rB``, ``rC`` wired in a
    chain ``rB — rA — rC``, so segment-A hosts reach both others within
    TTL 3 while B- and C-segment hosts need TTL 4 to reach each other.
    The level-3 groups ``{A,B}`` and ``{A,C}`` therefore overlap at host A,
    exercising the "general topology" branch of group formation.

    Hosts are named ``{dc}-gA-h0, ... {dc}-gB-h0, ... {dc}-gC-h0, ...``.
    """
    t = Topology()
    hosts: List[str] = []
    t.add_router(f"{dc}-rA", dc=dc)
    t.add_router(f"{dc}-rB", dc=dc)
    t.add_router(f"{dc}-rC", dc=dc)
    t.add_link(f"{dc}-rB", f"{dc}-rA", latency=BACKBONE_LATENCY)
    t.add_link(f"{dc}-rA", f"{dc}-rC", latency=BACKBONE_LATENCY)
    for group in ("A", "B", "C"):
        switch = f"{dc}-s{group}"
        t.add_switch(switch, dc=dc)
        t.add_link(switch, f"{dc}-r{group}", latency=BACKBONE_LATENCY)
        for idx in range(hosts_per_group):
            host = f"{dc}-g{group}-h{idx}"
            t.add_host(host, dc=dc)
            t.add_link(host, switch, latency=LAN_LATENCY)
            hosts.append(host)
    return t, hosts


def build_two_datacenters(
    networks_per_dc: int,
    hosts_per_network: int,
    wan_latency: float = WAN_LATENCY,
    dcs: Tuple[str, str] = ("dcA", "dcB"),
) -> Tuple[Topology, List[str], List[str]]:
    """Two switched clusters joined by a WAN link between border routers.

    Returns ``(topology, hosts_dc_a, hosts_dc_b)``.  Multicast cannot cross
    the WAN edge; unicast between the DCs incurs ``wan_latency`` one way in
    addition to intra-DC latency.
    """
    t = Topology()
    all_hosts: List[List[str]] = []
    borders: List[str] = []
    for dc in dcs:
        _t, hosts = build_switched_cluster(
            networks_per_dc, hosts_per_network, dc=dc, topo=t
        )
        all_hosts.append(hosts)
        border = f"{dc}-border"
        t.add_router(border, dc=dc)
        # Border router attaches to the DC core (or the single switch).
        attach = f"{dc}-core" if networks_per_dc > 1 else f"{dc}-sw0"
        t.add_link(border, attach, latency=BACKBONE_LATENCY)
        borders.append(border)
    t.add_link(borders[0], borders[1], latency=wan_latency, wan=True)
    return t, all_hosts[0], all_hosts[1]
