"""The :class:`Network` facade protocol nodes program against.

Bundles one simulator, one topology, a multicast fabric, a unicast
transport, a bandwidth meter, a trace, and seeded RNG streams.  Protocol
code never touches the fabric/transport directly through separate objects;
everything flows through this facade so experiments can swap loss rates,
topologies and metering without touching protocol code.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.bandwidth import BandwidthMeter
from repro.net.faults import FaultPlan
from repro.net.multicast import MulticastFabric
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.net.transport import UnicastTransport
from repro.obs.wiring import NOOP, Instruments
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace

__all__ = ["Network"]

Handler = Callable[[Packet], None]


class Network:
    """One simulated deployment: clock + devices + fabrics + metering.

    Parameters
    ----------
    topo:
        The device graph.
    seed:
        Root seed for all stochastic behaviour (loss, protocol jitter, ...).
    loss_rate:
        Independent per-delivery drop probability applied to both multicast
        and unicast (0 disables the loss process entirely).
    proc_delay:
        Fixed per-packet processing delay at the receiver.
    keep_bandwidth_series:
        Keep the full per-packet time series (needed for bucketed bandwidth
        plots; off by default to keep big sweeps lean).
    fault_plan:
        Optional chaos :class:`~repro.net.faults.FaultPlan` to install at
        construction (see :meth:`set_fault_plan`).
    """

    def __init__(
        self,
        topo: Topology,
        seed: int = 0,
        loss_rate: float = 0.0,
        proc_delay: float = 0.0,
        keep_bandwidth_series: bool = False,
        trace: Optional[Trace] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.sim = Simulator()
        self.topo = topo
        self.rng = RngRegistry(seed)
        self.meter = BandwidthMeter(keep_series=keep_bandwidth_series)
        self.trace = trace if trace is not None else Trace()
        loss_rng = self.rng.stream("net.loss") if loss_rate > 0 else None
        self.multicast_fabric = MulticastFabric(
            self.sim, topo, self.meter, loss_rate, loss_rng, proc_delay
        )
        self.transport = UnicastTransport(
            self.sim, topo, self.meter, loss_rate, loss_rng, proc_delay
        )
        self.fault_plan: Optional[FaultPlan] = None
        if fault_plan is not None:
            self.set_fault_plan(fault_plan)
        # Shared instrument bundle; the no-op singleton until
        # repro.obs.enable_observability swaps in real instruments.
        self.obs: Instruments = NOOP

    # ------------------------------------------------------------------
    # Convenience pass-throughs used by protocol code
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def subscribe(self, channel: str, host: str, handler: Handler) -> None:
        self.multicast_fabric.subscribe(channel, host, handler)

    def unsubscribe(self, channel: str, host: str) -> None:
        self.multicast_fabric.unsubscribe(channel, host)

    def multicast(
        self,
        src: str,
        channel: str,
        ttl: int,
        kind: str,
        payload: object,
        size: int,
    ) -> int:
        """Send a TTL-scoped multicast; returns deliveries scheduled."""
        return self.multicast_fabric.send(
            Packet(src=src, channel=channel, ttl=ttl, kind=kind, payload=payload, size=size)
        )

    def bind(self, host: str, port: str, handler: Handler) -> None:
        self.transport.bind(host, port, handler)

    def unicast(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        size: int,
        port: str = "membership",
    ) -> bool:
        """Send a unicast datagram to a host or virtual address."""
        return self.transport.send(
            Packet(src=src, dst=dst, kind=kind, payload=payload, size=size), port=port
        )

    # ------------------------------------------------------------------
    # Chaos fault injection
    # ------------------------------------------------------------------
    def set_fault_plan(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Install ``plan`` on both fabrics (``None`` removes chaos).

        A plan without an RNG gets the dedicated seeded ``net.chaos``
        stream, keeping chaos draws off the base loss stream so enabling
        faults never perturbs the ``net.loss`` sequence of an existing
        seeded experiment.
        """
        if plan is not None and plan.rng is None:
            plan.rng = self.rng.stream("net.chaos")
        self.fault_plan = plan
        self.multicast_fabric.fault_plan = plan
        self.transport.fault_plan = plan
        return plan

    def ensure_fault_plan(self) -> FaultPlan:
        """The installed fault plan, creating (and installing) one if absent."""
        if self.fault_plan is None:
            self.set_fault_plan(FaultPlan())
        return self.fault_plan

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_host(self, host: str) -> None:
        """Hard-kill a host: stops sending, receiving, and all bindings.

        Subscriptions and port bindings are dropped, matching a killed
        daemon process (the paper's Section 6.4 failure injection).
        """
        self.topo.set_up(host, False)
        self.multicast_fabric.unsubscribe_all(host)
        self.transport.unbind_all(host)
        self.trace.emit(self.sim.now, "host_crashed", node=host)

    def recover_host(self, host: str) -> None:
        """Bring the device back up; protocol stacks must re-join themselves."""
        self.topo.set_up(host, True)
        self.trace.emit(self.sim.now, "host_recovered", node=host)

    def fail_device(self, device: str) -> None:
        """Down a switch/router, partitioning everything behind it."""
        self.topo.set_up(device, False)
        self.trace.emit(self.sim.now, "device_failed", node=device)

    def recover_device(self, device: str) -> None:
        self.topo.set_up(device, True)
        self.trace.emit(self.sim.now, "device_recovered", node=device)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)
