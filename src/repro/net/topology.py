"""Cluster network topology with TTL-hop semantics.

The model distinguishes three device kinds:

* **hosts** — run protocol stacks; the only senders/receivers;
* **switches** — layer-2 devices; forwarding through them does *not*
  decrement an IP TTL;
* **routers** — layer-3 devices; each traversal costs one TTL unit.

The paper (Section 2) uses the TTL field to scope multicast: a packet sent
with TTL 1 reaches exactly the sender's L2 segment, TTL 2 additionally
crosses one router, and so on.  We therefore define

``ttl_distance(a, b) = 1 + (minimum number of routers on an a→b path)``

choosing, among shortest-latency paths, the one crossing fewest routers is
unnecessary: we minimise router crossings directly, since that is what TTL
scoping keys on, and use the same path's latency for delivery timing.

Hosts may span multiple **data centers** (``dc`` attribute).  Multicast never
crosses a DC boundary (the paper notes multicast is generally unavailable
over VPN/Internet); unicast does, over WAN edges.

Failure model: hosts, switches and routers can be marked down.  A downed
device forwards nothing, so a downed switch partitions its segment exactly
as the paper's "network partition failures (e.g., switch failures)".
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["NodeKind", "Topology", "UNREACHABLE"]

#: Sentinel TTL distance for unreachable pairs (partition or inter-DC).
UNREACHABLE = float("inf")

_NOPE: Tuple[float, float] = (UNREACHABLE, UNREACHABLE)
#: Shared empty base maps for cut-off sources (avoid per-source allocs).
_EMPTY_MC: Dict[str, Tuple[float, float]] = {}
_EMPTY_UC: Dict[str, float] = {}


class NodeKind(str, Enum):
    """Device classes in the topology graph."""

    HOST = "host"
    SWITCH = "switch"
    ROUTER = "router"


class Topology:
    """Mutable device graph with cached TTL-distance/latency queries.

    Edges carry a one-way ``latency`` in seconds.  Distance queries run a
    Dijkstra minimising ``(routers crossed, latency)`` lexicographically so
    TTL scoping is exact and ties are broken by the fastest path.  Results
    are cached per source host and invalidated on any mutation (device
    up/down, link add/remove), which is cheap because failures are rare
    events in every experiment.
    """

    def __init__(self) -> None:
        self._kind: Dict[str, NodeKind] = {}
        self._up: Dict[str, bool] = {}
        self._dc: Dict[str, str] = {}
        self._adj: Dict[str, Dict[str, float]] = {}
        self._wan_edges: set[Tuple[str, str]] = set()
        # source host -> {dest host -> (ttl_distance, latency)}
        self._cache: Dict[str, Dict[str, Tuple[float, float]]] = {}
        # source host -> {dest host -> latency} (WAN allowed)
        self._ucache: Dict[str, Dict[str, float]] = {}
        self._version = 0
        # --- segment-compressed distance engine (see _leaf_map) ---
        # Structural layout (who is a simple leaf, the infra adjacency,
        # segment partition) changes only on add/remove, not on up/down.
        self._struct_version = -1
        self._leaf: Dict[str, Tuple[str, float]] = {}
        self._infra_adj: Dict[str, Dict[str, float]] = {}
        # (seed device, entry_routers, entry_lat) -> {infra node -> (r, lat)}
        self._mc_seeded: Dict[Tuple[str, float, float], Dict[str, Tuple[float, float]]] = {}
        # (seed device, entry_lat) -> {infra node -> lat}
        self._uc_seeded: Dict[Tuple[str, float], Dict[str, float]] = {}
        # src host -> its (shared) seeded map; {} when src is cut off.
        self._mc_base: Dict[str, Dict[str, Tuple[float, float]]] = {}
        self._uc_base: Dict[str, Dict[str, float]] = {}
        self._segments_cache: Optional[List[List[str]]] = None
        self._segment_of: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, kind: NodeKind, dc: str = "dc0") -> None:
        """Add a device.  Names must be unique across kinds."""
        if name in self._kind:
            raise ValueError(f"duplicate device {name!r}")
        self._kind[name] = kind
        self._up[name] = True
        self._dc[name] = dc
        self._adj[name] = {}
        self._invalidate()

    def add_host(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.HOST, dc)

    def add_switch(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.SWITCH, dc)

    def add_router(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.ROUTER, dc)

    def add_link(self, a: str, b: str, latency: float = 0.0001, wan: bool = False) -> None:
        """Connect two devices with a bidirectional link.

        ``wan=True`` marks an inter-data-center link: multicast never uses
        it, and it is typically high-latency (e.g. 45 ms one way for the
        paper's 90 ms RTT).
        """
        for name in (a, b):
            if name not in self._kind:
                raise ValueError(f"unknown device {name!r}")
        if a == b:
            raise ValueError("self-links are not allowed")
        self._adj[a][b] = latency
        self._adj[b][a] = latency
        if wan:
            self._wan_edges.add((a, b))
            self._wan_edges.add((b, a))
        self._invalidate()

    def remove_link(self, a: str, b: str) -> None:
        self._adj[a].pop(b, None)
        self._adj[b].pop(a, None)
        self._wan_edges.discard((a, b))
        self._wan_edges.discard((b, a))
        self._invalidate()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def kind(self, name: str) -> NodeKind:
        return self._kind[name]

    def dc(self, name: str) -> str:
        return self._dc[name]

    def is_up(self, name: str) -> bool:
        return self._up[name]

    def set_up(self, name: str, up: bool) -> None:
        """Mark a device up/down.  Downed devices forward nothing."""
        if name not in self._kind:
            raise ValueError(f"unknown device {name!r}")
        if self._up[name] != up:
            self._up[name] = up
            self._invalidate()

    def hosts(self, dc: Optional[str] = None) -> List[str]:
        """All host names, optionally restricted to one data center."""
        return [
            n
            for n, k in self._kind.items()
            if k is NodeKind.HOST and (dc is None or self._dc[n] == dc)
        ]

    def devices(self, kind: Optional[NodeKind] = None) -> List[str]:
        return [n for n, k in self._kind.items() if kind is None or k is kind]

    def has_device(self, name: str) -> bool:
        """O(1) existence check (``devices()`` builds a fresh list)."""
        return name in self._kind

    def is_wan_edge(self, a: str, b: str) -> bool:
        """True when ``a``/``b`` are linked by a WAN (inter-DC) edge."""
        return (a, b) in self._wan_edges

    def datacenters(self) -> List[str]:
        return sorted({self._dc[n] for n in self._kind})

    def neighbors(self, name: str) -> Iterable[str]:
        return self._adj[name].keys()

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (for cache layering)."""
        return self._version

    # ------------------------------------------------------------------
    # Distance queries
    # ------------------------------------------------------------------
    def ttl_distance(self, src: str, dst: str) -> float:
        """TTL needed for a packet from ``src`` to reach ``dst``.

        ``1`` means same L2 segment; each router traversal adds one.
        Returns :data:`UNREACHABLE` if no live non-WAN path exists (WAN
        links do not carry multicast, and TTL grouping is per-DC).
        """
        return self._mc_pair(src, dst)[0]

    def latency(self, src: str, dst: str) -> float:
        """One-way latency along the TTL-minimal live path (WAN excluded)."""
        return self._mc_pair(src, dst)[1]

    def mc_route(self, src: str, dst: str) -> Tuple[float, float]:
        """``(ttl_distance, latency)`` in one lookup (multicast routing).

        The fan-out planner needs both for every candidate recipient;
        they live in the same routing cell, so the fused query halves the
        hot-path probes of a mass join.
        """
        return self._mc_pair(src, dst)

    def unicast_latency(self, src: str, dst: str) -> float:
        """One-way latency for unicast, which *may* traverse WAN links."""
        if src == dst:
            return 0.0
        return self._uc_pair(src, dst)

    def reachable(self, src: str, dst: str) -> bool:
        """True if unicast can currently get from ``src`` to ``dst``."""
        return self.unicast_latency(src, dst) != UNREACHABLE

    def hosts_within(self, src: str, ttl: int) -> List[str]:
        """Hosts (other than ``src``) within ``ttl`` of ``src``; live paths only."""
        dist = self._distances(src)
        return [h for h, (d, _lat) in dist.items() if h != src and d <= ttl]

    def max_ttl_diameter(self, dc: Optional[str] = None) -> int:
        """Largest finite TTL distance between any two live hosts (per DC)."""
        best = 0
        for h in self.hosts(dc):
            if not self._up[h]:
                continue
            for other, (d, _lat) in self._distances(h).items():
                if other != h and d != UNREACHABLE:
                    best = max(best, int(d))
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._cache.clear()
        self._ucache.clear()
        self._mc_seeded.clear()
        self._uc_seeded.clear()
        self._mc_base.clear()
        self._uc_base.clear()
        self._version += 1

    # ------------------------------------------------------------------
    # Segment-compressed pair queries
    # ------------------------------------------------------------------
    # A "simple leaf" is a host with exactly one link, attached to a
    # non-host device.  No path ever travels *through* such a host (its
    # single edge is a dead end), so every src→dst path factors as
    # ``entry edge + infra path + exit edge``, where the infra graph is
    # the topology minus the simple leaves.  Pair queries therefore need
    # one Dijkstra per *attachment point* instead of one per host — on a
    # 10k-host router tree that is ~1k sources over a ~1.1k-node graph
    # instead of 10k sources over an 11k-node graph.
    #
    # Exactness: the infra Dijkstra is *seeded* with the entry edge's
    # cost, so latencies accumulate left-to-right along the path in the
    # same order as the full-graph Dijkstra — the returned floats are
    # bit-identical, not merely close, and the golden traces cannot
    # drift.  (IEEE addition is monotone, so seeding also preserves the
    # argmin.)  Lexicographic (routers, latency) minimisation survives
    # the factoring because both components are shifted by constants.

    def _rebuild_structure(self) -> None:
        leaf: Dict[str, Tuple[str, float]] = {}
        for name, kind in self._kind.items():
            if kind is not NodeKind.HOST:
                continue
            adj = self._adj[name]
            if len(adj) != 1:
                continue
            (att, lat), = adj.items()
            if self._kind[att] is not NodeKind.HOST:
                leaf[name] = (att, lat)
        infra: Dict[str, Dict[str, float]] = {}
        for name, adj in self._adj.items():
            if name in leaf:
                continue
            infra[name] = {n: l for n, l in adj.items() if n not in leaf}
        self._leaf = leaf
        self._infra_adj = infra
        self._segments_cache = None
        self._struct_version = self._version

    def _mc_from(self, seed: str, r0: float, l0: float) -> Dict[str, Tuple[float, float]]:
        """Seeded (routers, latency) Dijkstra over the infra graph, WAN excluded."""
        key = (seed, r0, l0)
        cached = self._mc_seeded.get(key)
        if cached is not None:
            return cached
        seen: Dict[str, Tuple[float, float]] = {}
        pq: List[Tuple[float, float, str]] = [(r0, l0, seed)]
        infra = self._infra_adj
        while pq:
            routers, lat, node = heapq.heappop(pq)
            if node in seen:
                continue
            seen[node] = (routers, lat)
            for nxt, edge_lat in infra[node].items():
                if nxt in seen or not self._up[nxt]:
                    continue
                if (node, nxt) in self._wan_edges:
                    continue
                cost = routers + (1.0 if self._kind[nxt] is NodeKind.ROUTER else 0.0)
                heapq.heappush(pq, (cost, lat + edge_lat, nxt))
        self._mc_seeded[key] = seen
        return seen

    def _uc_from(self, seed: str, l0: float) -> Dict[str, float]:
        """Seeded min-latency Dijkstra over the infra graph, WAN allowed."""
        key = (seed, l0)
        cached = self._uc_seeded.get(key)
        if cached is not None:
            return cached
        seen: Dict[str, float] = {}
        pq: List[Tuple[float, str]] = [(l0, seed)]
        infra = self._infra_adj
        while pq:
            lat, node = heapq.heappop(pq)
            if node in seen:
                continue
            seen[node] = lat
            for nxt, edge_lat in infra[node].items():
                if nxt not in seen and self._up[nxt]:
                    heapq.heappush(pq, (lat + edge_lat, nxt))
        self._uc_seeded[key] = seen
        return seen

    def _mc_base_for(self, src: str) -> Dict[str, Tuple[float, float]]:
        """Seeded infra map serving all multicast queries from ``src``."""
        if not self._up.get(src, False):
            return _EMPTY_MC
        entry = self._leaf.get(src)
        if entry is None:
            if src not in self._infra_adj:
                return _EMPTY_MC
            return self._mc_from(src, 0.0, 0.0)
        att, l0 = entry
        if not self._up[att] or (src, att) in self._wan_edges:
            return _EMPTY_MC
        return self._mc_from(att, 1.0 if self._kind[att] is NodeKind.ROUTER else 0.0, l0)

    def _uc_base_for(self, src: str) -> Dict[str, float]:
        if not self._up.get(src, False):
            return _EMPTY_UC
        entry = self._leaf.get(src)
        if entry is None:
            if src not in self._infra_adj:
                return _EMPTY_UC
            return self._uc_from(src, 0.0)
        att, l0 = entry
        if not self._up[att]:
            return _EMPTY_UC
        return self._uc_from(att, l0)

    def _mc_pair(self, src: str, dst: str) -> Tuple[float, float]:
        if src == dst:
            return (0.0, 0.0) if self._up.get(src, False) else _NOPE
        if self._struct_version != self._version:
            self._rebuild_structure()
        base = self._mc_base.get(src)
        if base is None:
            base = self._mc_base[src] = self._mc_base_for(src)
        leaf_dst = self._leaf.get(dst)
        if leaf_dst is not None:
            att_d, l_exit = leaf_dst
            cell = base.get(att_d)
            if cell is None or not self._up[dst]:
                return _NOPE
            wan = self._wan_edges
            if wan and (att_d, dst) in wan:
                return _NOPE
            return (cell[0] + 1.0, cell[1] + l_exit)
        cell = base.get(dst)
        # Infra cells were computed against current up state (caches are
        # cleared on any mutation), so only the host-kind filter remains.
        if cell is None or self._kind[dst] is not NodeKind.HOST:
            return _NOPE
        return (cell[0] + 1.0, cell[1])

    def _uc_pair(self, src: str, dst: str) -> float:
        if self._struct_version != self._version:
            self._rebuild_structure()
        base = self._uc_base.get(src)
        if base is None:
            base = self._uc_base[src] = self._uc_base_for(src)
        leaf_dst = self._leaf.get(dst)
        if leaf_dst is not None:
            att_d, l_exit = leaf_dst
            lat = base.get(att_d)
            if lat is None or not self._up[dst]:
                return UNREACHABLE
            return lat + l_exit
        lat = base.get(dst)
        if lat is None or self._kind[dst] is not NodeKind.HOST:
            return UNREACHABLE
        return lat

    # ------------------------------------------------------------------
    # Segment partition (shard map)
    # ------------------------------------------------------------------
    def segments(self) -> List[List[str]]:
        """Hosts grouped by L2 segment, in deterministic insertion order.

        A segment is a connected component of the graph with routers and
        WAN edges removed — the paper's level-0 group domain.  Up/down
        state is ignored: the partition is structural, so a shard map
        derived from it stays valid across failures.
        """
        if self._struct_version != self._version:
            self._rebuild_structure()
        if self._segments_cache is not None:
            return self._segments_cache
        comp: Dict[str, int] = {}
        next_id = 0
        for start in self._kind:
            if start in comp or self._kind[start] is NodeKind.ROUTER:
                continue
            comp[start] = next_id
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in self._adj[node]:
                    if (
                        nxt in comp
                        or self._kind[nxt] is NodeKind.ROUTER
                        or (node, nxt) in self._wan_edges
                    ):
                        continue
                    comp[nxt] = next_id
                    stack.append(nxt)
            next_id += 1
        groups: Dict[int, List[str]] = {}
        seg_of: Dict[str, int] = {}
        for name, kind in self._kind.items():
            if kind is NodeKind.HOST:
                groups.setdefault(comp[name], []).append(name)
        # Re-number densely in first-host insertion order so segment ids
        # are stable and host-only (host-free components drop out).
        ordered = list(groups.items())
        result = []
        for new_id, (_cid, hosts) in enumerate(ordered):
            for h in hosts:
                seg_of[h] = new_id
            result.append(hosts)
        self._segments_cache = result
        self._segment_of = seg_of
        return result

    def segment_of(self, host: str) -> int:
        """Segment id of ``host`` (see :meth:`segments`)."""
        self.segments()
        return self._segment_of[host]

    def cross_segment_lookahead(self) -> float:
        """Lower bound on any cross-segment delivery latency.

        Every cross-segment path crosses a router or a WAN edge, so its
        latency is at least the cheapest such pinch: for each router, the
        sum of its two smallest incident edge latencies; for WAN, the
        edge latency itself.  Downing devices only removes paths, so the
        bound holds in every dynamic state — it is the conservative
        lookahead for the sharded simulation's barrier windows.
        Returns ``inf`` when nothing can cross (single segment).
        """
        best = UNREACHABLE
        for name, kind in self._kind.items():
            if kind is not NodeKind.ROUTER:
                continue
            lats = sorted(self._adj[name].values())
            if len(lats) >= 2:
                best = min(best, lats[0] + lats[1])
            elif len(lats) == 1:
                best = min(best, lats[0])
        for (a, b) in self._wan_edges:
            best = min(best, self._adj[a][b])
        return best

    def _distances(self, src: str) -> Dict[str, Tuple[float, float]]:
        """(ttl, latency) to every reachable host, excluding WAN edges."""
        cached = self._cache.get(src)
        if cached is not None:
            return cached
        result: Dict[str, Tuple[float, float]] = {}
        if not self._up.get(src, False):
            self._cache[src] = result
            return result
        # Dijkstra on (routers_crossed, latency).
        seen: Dict[str, Tuple[float, float]] = {}
        pq: List[Tuple[float, float, str]] = [(0.0, 0.0, src)]
        while pq:
            routers, lat, node = heapq.heappop(pq)
            if node in seen:
                continue
            seen[node] = (routers, lat)
            for nxt, edge_lat in self._adj[node].items():
                if nxt in seen or not self._up[nxt]:
                    continue
                if (node, nxt) in self._wan_edges:
                    continue  # multicast never crosses WAN
                cost = routers + (1.0 if self._kind[nxt] is NodeKind.ROUTER else 0.0)
                heapq.heappush(pq, (cost, lat + edge_lat, nxt))
        for node, (routers, lat) in seen.items():
            if self._kind[node] is NodeKind.HOST:
                result[node] = (routers + 1.0 if node != src else 0.0, lat)
        self._cache[src] = result
        return result

    def _unicast_distances(self, src: str) -> Dict[str, float]:
        cached = self._ucache.get(src)
        if cached is not None:
            return cached
        result: Dict[str, float] = {}
        if self._up.get(src, False):
            seen: Dict[str, float] = {}
            pq: List[Tuple[float, str]] = [(0.0, src)]
            while pq:
                lat, node = heapq.heappop(pq)
                if node in seen:
                    continue
                seen[node] = lat
                for nxt, edge_lat in self._adj[node].items():
                    if nxt not in seen and self._up[nxt]:
                        heapq.heappush(pq, (lat + edge_lat, nxt))
            for node, lat in seen.items():
                if self._kind[node] is NodeKind.HOST and node != src:
                    result[node] = lat
        self._ucache[src] = result
        return result
