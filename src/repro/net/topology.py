"""Cluster network topology with TTL-hop semantics.

The model distinguishes three device kinds:

* **hosts** — run protocol stacks; the only senders/receivers;
* **switches** — layer-2 devices; forwarding through them does *not*
  decrement an IP TTL;
* **routers** — layer-3 devices; each traversal costs one TTL unit.

The paper (Section 2) uses the TTL field to scope multicast: a packet sent
with TTL 1 reaches exactly the sender's L2 segment, TTL 2 additionally
crosses one router, and so on.  We therefore define

``ttl_distance(a, b) = 1 + (minimum number of routers on an a→b path)``

choosing, among shortest-latency paths, the one crossing fewest routers is
unnecessary: we minimise router crossings directly, since that is what TTL
scoping keys on, and use the same path's latency for delivery timing.

Hosts may span multiple **data centers** (``dc`` attribute).  Multicast never
crosses a DC boundary (the paper notes multicast is generally unavailable
over VPN/Internet); unicast does, over WAN edges.

Failure model: hosts, switches and routers can be marked down.  A downed
device forwards nothing, so a downed switch partitions its segment exactly
as the paper's "network partition failures (e.g., switch failures)".
"""

from __future__ import annotations

import heapq
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["NodeKind", "Topology", "UNREACHABLE"]

#: Sentinel TTL distance for unreachable pairs (partition or inter-DC).
UNREACHABLE = float("inf")


class NodeKind(str, Enum):
    """Device classes in the topology graph."""

    HOST = "host"
    SWITCH = "switch"
    ROUTER = "router"


class Topology:
    """Mutable device graph with cached TTL-distance/latency queries.

    Edges carry a one-way ``latency`` in seconds.  Distance queries run a
    Dijkstra minimising ``(routers crossed, latency)`` lexicographically so
    TTL scoping is exact and ties are broken by the fastest path.  Results
    are cached per source host and invalidated on any mutation (device
    up/down, link add/remove), which is cheap because failures are rare
    events in every experiment.
    """

    def __init__(self) -> None:
        self._kind: Dict[str, NodeKind] = {}
        self._up: Dict[str, bool] = {}
        self._dc: Dict[str, str] = {}
        self._adj: Dict[str, Dict[str, float]] = {}
        self._wan_edges: set[Tuple[str, str]] = set()
        # source host -> {dest host -> (ttl_distance, latency)}
        self._cache: Dict[str, Dict[str, Tuple[float, float]]] = {}
        # source host -> {dest host -> latency} (WAN allowed)
        self._ucache: Dict[str, Dict[str, float]] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, name: str, kind: NodeKind, dc: str = "dc0") -> None:
        """Add a device.  Names must be unique across kinds."""
        if name in self._kind:
            raise ValueError(f"duplicate device {name!r}")
        self._kind[name] = kind
        self._up[name] = True
        self._dc[name] = dc
        self._adj[name] = {}
        self._invalidate()

    def add_host(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.HOST, dc)

    def add_switch(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.SWITCH, dc)

    def add_router(self, name: str, dc: str = "dc0") -> None:
        self.add_node(name, NodeKind.ROUTER, dc)

    def add_link(self, a: str, b: str, latency: float = 0.0001, wan: bool = False) -> None:
        """Connect two devices with a bidirectional link.

        ``wan=True`` marks an inter-data-center link: multicast never uses
        it, and it is typically high-latency (e.g. 45 ms one way for the
        paper's 90 ms RTT).
        """
        for name in (a, b):
            if name not in self._kind:
                raise ValueError(f"unknown device {name!r}")
        if a == b:
            raise ValueError("self-links are not allowed")
        self._adj[a][b] = latency
        self._adj[b][a] = latency
        if wan:
            self._wan_edges.add((a, b))
            self._wan_edges.add((b, a))
        self._invalidate()

    def remove_link(self, a: str, b: str) -> None:
        self._adj[a].pop(b, None)
        self._adj[b].pop(a, None)
        self._wan_edges.discard((a, b))
        self._wan_edges.discard((b, a))
        self._invalidate()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def kind(self, name: str) -> NodeKind:
        return self._kind[name]

    def dc(self, name: str) -> str:
        return self._dc[name]

    def is_up(self, name: str) -> bool:
        return self._up[name]

    def set_up(self, name: str, up: bool) -> None:
        """Mark a device up/down.  Downed devices forward nothing."""
        if name not in self._kind:
            raise ValueError(f"unknown device {name!r}")
        if self._up[name] != up:
            self._up[name] = up
            self._invalidate()

    def hosts(self, dc: Optional[str] = None) -> List[str]:
        """All host names, optionally restricted to one data center."""
        return [
            n
            for n, k in self._kind.items()
            if k is NodeKind.HOST and (dc is None or self._dc[n] == dc)
        ]

    def devices(self, kind: Optional[NodeKind] = None) -> List[str]:
        return [n for n, k in self._kind.items() if kind is None or k is kind]

    def has_device(self, name: str) -> bool:
        """O(1) existence check (``devices()`` builds a fresh list)."""
        return name in self._kind

    def datacenters(self) -> List[str]:
        return sorted({self._dc[n] for n in self._kind})

    def neighbors(self, name: str) -> Iterable[str]:
        return self._adj[name].keys()

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation (for cache layering)."""
        return self._version

    # ------------------------------------------------------------------
    # Distance queries
    # ------------------------------------------------------------------
    def ttl_distance(self, src: str, dst: str) -> float:
        """TTL needed for a packet from ``src`` to reach ``dst``.

        ``1`` means same L2 segment; each router traversal adds one.
        Returns :data:`UNREACHABLE` if no live non-WAN path exists (WAN
        links do not carry multicast, and TTL grouping is per-DC).
        """
        return self._distances(src).get(dst, (UNREACHABLE, UNREACHABLE))[0]

    def latency(self, src: str, dst: str) -> float:
        """One-way latency along the TTL-minimal live path (WAN excluded)."""
        return self._distances(src).get(dst, (UNREACHABLE, UNREACHABLE))[1]

    def unicast_latency(self, src: str, dst: str) -> float:
        """One-way latency for unicast, which *may* traverse WAN links."""
        if src == dst:
            return 0.0
        dist = self._unicast_distances(src)
        return dist.get(dst, UNREACHABLE)

    def reachable(self, src: str, dst: str) -> bool:
        """True if unicast can currently get from ``src`` to ``dst``."""
        return self.unicast_latency(src, dst) != UNREACHABLE

    def hosts_within(self, src: str, ttl: int) -> List[str]:
        """Hosts (other than ``src``) within ``ttl`` of ``src``; live paths only."""
        dist = self._distances(src)
        return [h for h, (d, _lat) in dist.items() if h != src and d <= ttl]

    def max_ttl_diameter(self, dc: Optional[str] = None) -> int:
        """Largest finite TTL distance between any two live hosts (per DC)."""
        best = 0
        for h in self.hosts(dc):
            if not self._up[h]:
                continue
            for other, (d, _lat) in self._distances(h).items():
                if other != h and d != UNREACHABLE:
                    best = max(best, int(d))
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._cache.clear()
        self._ucache.clear()
        self._version += 1

    def _distances(self, src: str) -> Dict[str, Tuple[float, float]]:
        """(ttl, latency) to every reachable host, excluding WAN edges."""
        cached = self._cache.get(src)
        if cached is not None:
            return cached
        result: Dict[str, Tuple[float, float]] = {}
        if not self._up.get(src, False):
            self._cache[src] = result
            return result
        # Dijkstra on (routers_crossed, latency).
        seen: Dict[str, Tuple[float, float]] = {}
        pq: List[Tuple[float, float, str]] = [(0.0, 0.0, src)]
        while pq:
            routers, lat, node = heapq.heappop(pq)
            if node in seen:
                continue
            seen[node] = (routers, lat)
            for nxt, edge_lat in self._adj[node].items():
                if nxt in seen or not self._up[nxt]:
                    continue
                if (node, nxt) in self._wan_edges:
                    continue  # multicast never crosses WAN
                cost = routers + (1.0 if self._kind[nxt] is NodeKind.ROUTER else 0.0)
                heapq.heappush(pq, (cost, lat + edge_lat, nxt))
        for node, (routers, lat) in seen.items():
            if self._kind[node] is NodeKind.HOST:
                result[node] = (routers + 1.0 if node != src else 0.0, lat)
        self._cache[src] = result
        return result

    def _unicast_distances(self, src: str) -> Dict[str, float]:
        cached = self._ucache.get(src)
        if cached is not None:
            return cached
        result: Dict[str, float] = {}
        if self._up.get(src, False):
            seen: Dict[str, float] = {}
            pq: List[Tuple[float, str]] = [(0.0, src)]
            while pq:
                lat, node = heapq.heappop(pq)
                if node in seen:
                    continue
                seen[node] = lat
                for nxt, edge_lat in self._adj[node].items():
                    if nxt not in seen and self._up[nxt]:
                        heapq.heappush(pq, (lat + edge_lat, nxt))
            for node, lat in seen.items():
                if self._kind[node] is NodeKind.HOST and node != src:
                    result[node] = lat
        self._ucache[src] = result
        return result
