"""Per-host bandwidth and packet-rate accounting.

The paper measures bandwidth "on each node by counting the incoming
heartbeat packets", then sums over nodes for the aggregated curves of
Fig. 11, and counts received multicast packets per second for Fig. 2.  The
meter mirrors that: every delivery (and send) is recorded with its byte
size, and queries aggregate by host, direction, packet kind, or time bucket.

Counter layout: ``record()`` sits on the per-packet hot path of both
fabrics, so counters are nested small objects (host -> direction ->
:class:`_Counters`) instead of flat tuple-keyed dicts — one recording no
longer allocates ``(host, direction)`` / ``(host, direction, kind)`` key
tuples, and the batched multicast delivery path accounts a whole delay
bucket through :meth:`BandwidthMeter.record_many` in one call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["BandwidthMeter"]


class _Counters:
    """Byte/packet totals for one (host, direction) cell."""

    __slots__ = ("bytes", "packets", "kind_bytes")

    def __init__(self) -> None:
        self.bytes = 0
        self.packets = 0
        self.kind_bytes: Dict[str, int] = {}


class _Pending:
    """Deferred accounting for one cached delivery bucket.

    A multicast plan bucket delivers the same receiver set over and over;
    instead of walking every receiver's counter cell per delivery, the
    deliveries accumulate here (packets/bytes per kind plus the time
    span) and are folded into the cells the next time anything *reads*
    the meter.  Totals are exact at every observable read — only the
    internal write schedule changes.
    """

    __slots__ = ("cells", "by_kind", "t0", "t1")

    def __init__(self, cells: List[_Counters]) -> None:
        self.cells = cells
        #: kind -> [packets, total_bytes] accumulated since the last flush
        self.by_kind: Dict[str, List[int]] = {}
        self.t0 = 0.0
        self.t1 = 0.0


class BandwidthMeter:
    """Accumulates (time, host, direction, kind, bytes) samples.

    ``direction`` is ``"rx"`` or ``"tx"``.  For long sweeps the meter can be
    switched to *totals-only* mode (``keep_series=False``) where it keeps
    only aggregate counters, which is what the Fig. 11 bandwidth bench uses.
    """

    def __init__(self, keep_series: bool = False) -> None:
        self.keep_series = keep_series
        # host -> direction -> counters
        self._hosts: Dict[str, Dict[str, _Counters]] = {}
        self._series: List[Tuple[float, str, str, str, int]] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        #: Bumped on :meth:`reset`; invalidates cell lists handed out by
        #: :meth:`batch_cells` (their counters are orphaned by a reset).
        self.epoch = 0
        #: Open deferred-accounting buckets (see :meth:`open_pending`).
        self._pending: List[_Pending] = []
        self._dirty = False

    def _cell(self, host: str, direction: str) -> _Counters:
        by_dir = self._hosts.get(host)
        if by_dir is None:
            by_dir = self._hosts[host] = {}
        cell = by_dir.get(direction)
        if cell is None:
            cell = by_dir[direction] = _Counters()
        return cell

    def _touch(self, time: float) -> None:
        if self._t0 is None or time < self._t0:
            self._t0 = time
        if self._t1 is None or time > self._t1:
            self._t1 = time

    def record(self, time: float, host: str, direction: str, kind: str, size: int) -> None:
        """Log one packet send/receive."""
        cell = self._cell(host, direction)
        cell.bytes += size
        cell.packets += 1
        kb = cell.kind_bytes
        kb[kind] = kb.get(kind, 0) + size
        self._touch(time)
        if self.keep_series:
            self._series.append((time, host, direction, kind, size))

    def record_many(
        self, time: float, hosts: Iterable[str], direction: str, kind: str, size: int
    ) -> None:
        """Log one same-sized packet for every host in ``hosts`` at ``time``.

        Batch twin of :meth:`record` for the multicast fast path, where a
        whole delay bucket of receivers is accounted in one call: the
        min/max-time bookkeeping and series branch run once per batch, and
        the cell lookup is inlined (this loop runs once per receiver per
        delivery, the hottest accounting path in the simulator).
        """
        hosts_map = self._hosts
        for host in hosts:
            by_dir = hosts_map.get(host)
            if by_dir is None:
                by_dir = hosts_map[host] = {}
            cell = by_dir.get(direction)
            if cell is None:
                cell = by_dir[direction] = _Counters()
            cell.bytes += size
            cell.packets += 1
            kb = cell.kind_bytes
            kb[kind] = kb.get(kind, 0) + size
        self._touch(time)
        if self.keep_series:
            for host in hosts:
                self._series.append((time, host, direction, kind, size))

    def batch_cells(self, hosts: Iterable[str], direction: str) -> List[_Counters]:
        """Resolve (and create as needed) the counter cells for ``hosts``.

        Lets a caller that delivers the same receiver set over and over (a
        cached multicast plan bucket) resolve the per-host dict lookups
        once and then account deliveries via :meth:`open_pending` /
        :meth:`record_pending`.  The returned list is only valid while
        :attr:`epoch` is unchanged.
        """
        return [self._cell(host, direction) for host in hosts]

    def open_pending(self, cells: List[_Counters]) -> _Pending:
        """Open a deferred-accounting bucket over prepared ``cells``.

        The caller caches the returned handle next to its cell list (same
        epoch validity) and accounts each delivery via
        :meth:`record_pending` — O(1) per delivery instead of a walk over
        every cell.  The accumulated deltas are folded into the cells
        lazily, before any read of the meter.
        """
        pend = _Pending(cells)
        self._pending.append(pend)
        return pend

    def record_pending(self, pend: _Pending, time: float, kind: str, size: int) -> None:
        """Account one same-sized packet to every cell of ``pend`` — lazily."""
        self._dirty = True
        by_kind = pend.by_kind
        entry = by_kind.get(kind)
        if entry is None:
            if not by_kind:
                pend.t0 = time
            by_kind[kind] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size
        pend.t1 = time

    def _flush(self) -> None:
        """Fold every open pending bucket's deltas into its cells."""
        for pend in self._pending:
            by_kind = pend.by_kind
            if not by_kind:
                continue
            cells = pend.cells
            for kind, (count, total) in by_kind.items():
                for cell in cells:
                    cell.packets += count
                    cell.bytes += total
                    kb = cell.kind_bytes
                    kb[kind] = kb.get(kind, 0) + total
            self._touch(pend.t0)
            self._touch(pend.t1)
            by_kind.clear()
        self._dirty = False

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def bytes(self, host: Optional[str] = None, direction: str = "rx") -> int:
        """Total bytes for a host (or all hosts) in one direction."""
        if self._dirty:
            self._flush()
        if host is not None:
            cell = self._hosts.get(host, {}).get(direction)
            return cell.bytes if cell is not None else 0
        return sum(
            cell.bytes
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    def packets(self, host: Optional[str] = None, direction: str = "rx") -> int:
        if self._dirty:
            self._flush()
        if host is not None:
            cell = self._hosts.get(host, {}).get(direction)
            return cell.packets if cell is not None else 0
        return sum(
            cell.packets
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    def bytes_by_kind(self, kind: str, direction: str = "rx") -> int:
        if self._dirty:
            self._flush()
        return sum(
            cell.kind_bytes.get(kind, 0)
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    @property
    def duration(self) -> float:
        """Span between first and last recorded sample (0 if <2 samples)."""
        if self._dirty:
            self._flush()
        if self._t0 is None or self._t1 is None:
            return 0.0
        return self._t1 - self._t0

    def aggregate_rate(self, direction: str = "rx", duration: Optional[float] = None) -> float:
        """Summed bytes/second across all hosts.

        ``duration`` defaults to the observed sample span; pass the actual
        measurement window for exact normalisation.
        """
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.bytes(direction=direction) / span

    def packet_rate(
        self, host: Optional[str] = None, direction: str = "rx", duration: Optional[float] = None
    ) -> float:
        """Packets/second for one host or all hosts."""
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.packets(host, direction) / span

    def per_host_rates(self, direction: str = "rx", duration: Optional[float] = None) -> Dict[str, float]:
        """bytes/second per host."""
        if self._dirty:
            self._flush()
        span = duration if duration is not None else self.duration
        if span <= 0:
            return {}
        out: Dict[str, float] = {}
        for host, by_dir in self._hosts.items():
            cell = by_dir.get(direction)
            if cell is not None:
                out[host] = cell.bytes / span
        return out

    # ------------------------------------------------------------------
    # Time series (only when keep_series=True)
    # ------------------------------------------------------------------
    def bucketed(
        self, bucket: float = 1.0, direction: str = "rx"
    ) -> List[Tuple[float, int]]:
        """(bucket_start, total_bytes) series across all hosts."""
        if not self.keep_series:
            raise RuntimeError("meter was created with keep_series=False")
        acc: Dict[int, int] = defaultdict(int)
        for time, _host, d, _kind, size in self._series:
            if d == direction:
                acc[int(time // bucket)] += size
        return [(idx * bucket, total) for idx, total in sorted(acc.items())]

    def reset(self) -> None:
        if self._dirty:
            self._flush()
        self._hosts.clear()
        self._series.clear()
        self._pending.clear()
        self._t0 = self._t1 = None
        self.epoch += 1
