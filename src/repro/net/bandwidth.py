"""Per-host bandwidth and packet-rate accounting.

The paper measures bandwidth "on each node by counting the incoming
heartbeat packets", then sums over nodes for the aggregated curves of
Fig. 11, and counts received multicast packets per second for Fig. 2.  The
meter mirrors that: every delivery (and send) is recorded with its byte
size, and queries aggregate by host, direction, packet kind, or time bucket.

Counter layout: ``record()`` sits on the per-packet hot path of both
fabrics, so counters are nested small objects (host -> direction ->
:class:`_Counters`) instead of flat tuple-keyed dicts — one recording no
longer allocates ``(host, direction)`` / ``(host, direction, kind)`` key
tuples, and the batched multicast delivery path accounts a whole delay
bucket through :meth:`BandwidthMeter.record_many` in one call.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["BandwidthMeter"]


class _Counters:
    """Byte/packet totals for one (host, direction) cell."""

    __slots__ = ("bytes", "packets", "kind_bytes")

    def __init__(self) -> None:
        self.bytes = 0
        self.packets = 0
        self.kind_bytes: Dict[str, int] = {}


class BandwidthMeter:
    """Accumulates (time, host, direction, kind, bytes) samples.

    ``direction`` is ``"rx"`` or ``"tx"``.  For long sweeps the meter can be
    switched to *totals-only* mode (``keep_series=False``) where it keeps
    only aggregate counters, which is what the Fig. 11 bandwidth bench uses.
    """

    def __init__(self, keep_series: bool = False) -> None:
        self.keep_series = keep_series
        # host -> direction -> counters
        self._hosts: Dict[str, Dict[str, _Counters]] = {}
        self._series: List[Tuple[float, str, str, str, int]] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def _cell(self, host: str, direction: str) -> _Counters:
        by_dir = self._hosts.get(host)
        if by_dir is None:
            by_dir = self._hosts[host] = {}
        cell = by_dir.get(direction)
        if cell is None:
            cell = by_dir[direction] = _Counters()
        return cell

    def _touch(self, time: float) -> None:
        if self._t0 is None or time < self._t0:
            self._t0 = time
        if self._t1 is None or time > self._t1:
            self._t1 = time

    def record(self, time: float, host: str, direction: str, kind: str, size: int) -> None:
        """Log one packet send/receive."""
        cell = self._cell(host, direction)
        cell.bytes += size
        cell.packets += 1
        kb = cell.kind_bytes
        kb[kind] = kb.get(kind, 0) + size
        self._touch(time)
        if self.keep_series:
            self._series.append((time, host, direction, kind, size))

    def record_many(
        self, time: float, hosts: Iterable[str], direction: str, kind: str, size: int
    ) -> None:
        """Log one same-sized packet for every host in ``hosts`` at ``time``.

        Batch twin of :meth:`record` for the multicast fast path, where a
        whole delay bucket of receivers is accounted in one call: the
        min/max-time bookkeeping and series branch run once per batch.
        """
        for host in hosts:
            cell = self._cell(host, direction)
            cell.bytes += size
            cell.packets += 1
            kb = cell.kind_bytes
            kb[kind] = kb.get(kind, 0) + size
        self._touch(time)
        if self.keep_series:
            for host in hosts:
                self._series.append((time, host, direction, kind, size))

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def bytes(self, host: Optional[str] = None, direction: str = "rx") -> int:
        """Total bytes for a host (or all hosts) in one direction."""
        if host is not None:
            cell = self._hosts.get(host, {}).get(direction)
            return cell.bytes if cell is not None else 0
        return sum(
            cell.bytes
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    def packets(self, host: Optional[str] = None, direction: str = "rx") -> int:
        if host is not None:
            cell = self._hosts.get(host, {}).get(direction)
            return cell.packets if cell is not None else 0
        return sum(
            cell.packets
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    def bytes_by_kind(self, kind: str, direction: str = "rx") -> int:
        return sum(
            cell.kind_bytes.get(kind, 0)
            for by_dir in self._hosts.values()
            for d, cell in by_dir.items()
            if d == direction
        )

    @property
    def duration(self) -> float:
        """Span between first and last recorded sample (0 if <2 samples)."""
        if self._t0 is None or self._t1 is None:
            return 0.0
        return self._t1 - self._t0

    def aggregate_rate(self, direction: str = "rx", duration: Optional[float] = None) -> float:
        """Summed bytes/second across all hosts.

        ``duration`` defaults to the observed sample span; pass the actual
        measurement window for exact normalisation.
        """
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.bytes(direction=direction) / span

    def packet_rate(
        self, host: Optional[str] = None, direction: str = "rx", duration: Optional[float] = None
    ) -> float:
        """Packets/second for one host or all hosts."""
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.packets(host, direction) / span

    def per_host_rates(self, direction: str = "rx", duration: Optional[float] = None) -> Dict[str, float]:
        """bytes/second per host."""
        span = duration if duration is not None else self.duration
        if span <= 0:
            return {}
        out: Dict[str, float] = {}
        for host, by_dir in self._hosts.items():
            cell = by_dir.get(direction)
            if cell is not None:
                out[host] = cell.bytes / span
        return out

    # ------------------------------------------------------------------
    # Time series (only when keep_series=True)
    # ------------------------------------------------------------------
    def bucketed(
        self, bucket: float = 1.0, direction: str = "rx"
    ) -> List[Tuple[float, int]]:
        """(bucket_start, total_bytes) series across all hosts."""
        if not self.keep_series:
            raise RuntimeError("meter was created with keep_series=False")
        acc: Dict[int, int] = defaultdict(int)
        for time, _host, d, _kind, size in self._series:
            if d == direction:
                acc[int(time // bucket)] += size
        return [(idx * bucket, total) for idx, total in sorted(acc.items())]

    def reset(self) -> None:
        self._hosts.clear()
        self._series.clear()
        self._t0 = self._t1 = None
