"""Per-host bandwidth and packet-rate accounting.

The paper measures bandwidth "on each node by counting the incoming
heartbeat packets", then sums over nodes for the aggregated curves of
Fig. 11, and counts received multicast packets per second for Fig. 2.  The
meter mirrors that: every delivery (and send) is recorded with its byte
size, and queries aggregate by host, direction, packet kind, or time bucket.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

__all__ = ["BandwidthMeter"]


class BandwidthMeter:
    """Accumulates (time, host, direction, kind, bytes) samples.

    ``direction`` is ``"rx"`` or ``"tx"``.  For long sweeps the meter can be
    switched to *totals-only* mode (``keep_series=False``) where it keeps
    only aggregate counters, which is what the Fig. 11 bandwidth bench uses.
    """

    def __init__(self, keep_series: bool = False) -> None:
        self.keep_series = keep_series
        self._bytes: Dict[Tuple[str, str], int] = defaultdict(int)
        self._packets: Dict[Tuple[str, str], int] = defaultdict(int)
        self._kind_bytes: Dict[Tuple[str, str, str], int] = defaultdict(int)
        self._series: List[Tuple[float, str, str, str, int]] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def record(self, time: float, host: str, direction: str, kind: str, size: int) -> None:
        """Log one packet send/receive."""
        key = (host, direction)
        self._bytes[key] += size
        self._packets[key] += 1
        self._kind_bytes[(host, direction, kind)] += size
        if self._t0 is None or time < self._t0:
            self._t0 = time
        if self._t1 is None or time > self._t1:
            self._t1 = time
        if self.keep_series:
            self._series.append((time, host, direction, kind, size))

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def bytes(self, host: Optional[str] = None, direction: str = "rx") -> int:
        """Total bytes for a host (or all hosts) in one direction."""
        if host is not None:
            return self._bytes.get((host, direction), 0)
        return sum(v for (_h, d), v in self._bytes.items() if d == direction)

    def packets(self, host: Optional[str] = None, direction: str = "rx") -> int:
        if host is not None:
            return self._packets.get((host, direction), 0)
        return sum(v for (_h, d), v in self._packets.items() if d == direction)

    def bytes_by_kind(self, kind: str, direction: str = "rx") -> int:
        return sum(
            v for (_h, d, k), v in self._kind_bytes.items() if d == direction and k == kind
        )

    @property
    def duration(self) -> float:
        """Span between first and last recorded sample (0 if <2 samples)."""
        if self._t0 is None or self._t1 is None:
            return 0.0
        return self._t1 - self._t0

    def aggregate_rate(self, direction: str = "rx", duration: Optional[float] = None) -> float:
        """Summed bytes/second across all hosts.

        ``duration`` defaults to the observed sample span; pass the actual
        measurement window for exact normalisation.
        """
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.bytes(direction=direction) / span

    def packet_rate(
        self, host: Optional[str] = None, direction: str = "rx", duration: Optional[float] = None
    ) -> float:
        """Packets/second for one host or all hosts."""
        span = duration if duration is not None else self.duration
        if span <= 0:
            return 0.0
        return self.packets(host, direction) / span

    def per_host_rates(self, direction: str = "rx", duration: Optional[float] = None) -> Dict[str, float]:
        """bytes/second per host."""
        span = duration if duration is not None else self.duration
        if span <= 0:
            return {}
        out: Dict[str, float] = {}
        for (host, d), v in self._bytes.items():
            if d == direction:
                out[host] = v / span
        return out

    # ------------------------------------------------------------------
    # Time series (only when keep_series=True)
    # ------------------------------------------------------------------
    def bucketed(
        self, bucket: float = 1.0, direction: str = "rx"
    ) -> List[Tuple[float, int]]:
        """(bucket_start, total_bytes) series across all hosts."""
        if not self.keep_series:
            raise RuntimeError("meter was created with keep_series=False")
        acc: Dict[int, int] = defaultdict(int)
        for time, _host, d, _kind, size in self._series:
            if d == direction:
                acc[int(time // bucket)] += size
        return [(idx * bucket, total) for idx, total in sorted(acc.items())]

    def reset(self) -> None:
        self._bytes.clear()
        self._packets.clear()
        self._kind_bytes.clear()
        self._series.clear()
        self._t0 = self._t1 = None
