"""Chaos fault-injection plans for the network fabrics.

The paper's evaluation only kills daemons and switches (Section 6.4); real
membership deployments additionally see *asymmetric* loss, delay jitter,
duplicated datagrams and reordering — the failure modes the related work
(Snow, arXiv:2504.2676; scalable group management, arXiv:1003.5794)
stresses broadcast protocols with.  A :class:`FaultPlan` injects exactly
those, per link and per direction, without touching protocol code: both
:class:`~repro.net.multicast.MulticastFabric` and
:class:`~repro.net.transport.UnicastTransport` consult the plan installed
on their :class:`~repro.net.network.Network` for every delivery they are
about to schedule.

Fault vocabulary (all per :class:`LinkFault` rule, all directional):

* ``loss`` — drop probability for a matched delivery.  ``1.0`` is legal
  and is the building block for **asymmetric partitions** (A's packets to
  B vanish while B's packets to A arrive).
* ``jitter`` — extra delivery delay drawn uniformly from ``[0, jitter)``.
* ``reorder`` / ``reorder_window`` — with probability ``reorder`` the
  delivery is held back an extra ``U[0, reorder_window)`` seconds, letting
  packets sent *later* overtake it: bounded reordering.
* ``duplicate`` / ``dup_lag`` — with probability ``duplicate`` the
  receiver gets a second copy, trailing the first by ``U[0, dup_lag)``.
* ``start`` / ``until`` — the rule only applies to packets *sent* inside
  this virtual-time window, so whole chaos phases can be scheduled
  declaratively (no timer events needed to arm/disarm faults).

Determinism contract
--------------------
All stochastic decisions draw from the plan's own seeded stream
(``net.chaos`` when installed through :meth:`Network.set_fault_plan`), a
stream the base loss process never touches.  Decisions are drawn once per
(packet, receiver) at **send time**, in the fabric's receiver-iteration
order — which is identical on the cached-plan fast path and the legacy
slow path — so seeded runs stay byte-identical across
``use_fast_path`` flips (the existing determinism guard covers this under
active chaos).  A plan whose rules match nothing consumes no randomness
at all: installing it cannot perturb an existing seeded experiment.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["LinkFault", "FaultPlan"]

_INF = math.inf


def _normalize_side(side) -> Optional[frozenset]:
    """None (wildcard), one host name, or any iterable of host names."""
    if side is None:
        return None
    if isinstance(side, str):
        return frozenset((side,))
    return frozenset(side)


@dataclass
class LinkFault:
    """One directional fault rule: *who* it hits, *what* it does, *when*.

    ``src``/``dst`` each accept ``None`` (any host), a host name, or a
    collection of host names; a delivery matches when its sender is in
    ``src`` AND its receiver is in ``dst``.  Direction matters: a rule for
    ``(a, b)`` says nothing about ``(b, a)``.
    """

    src: Optional[frozenset] = None
    dst: Optional[frozenset] = None
    loss: float = 0.0
    jitter: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0
    duplicate: float = 0.0
    dup_lag: float = 0.0
    start: float = 0.0
    until: float = _INF
    #: free-form tag for logs/introspection ("partition:net0", ...)
    label: str = ""

    def __post_init__(self) -> None:
        self.src = _normalize_side(self.src)
        self.dst = _normalize_side(self.dst)
        for name in ("loss", "reorder", "duplicate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for name in ("jitter", "reorder_window", "dup_lag"):
            v = getattr(self, name)
            if v < 0.0:
                raise ValueError(f"{name} must be >= 0, got {v}")
        if self.reorder > 0.0 and self.reorder_window <= 0.0:
            raise ValueError("reorder > 0 requires a positive reorder_window")
        if self.until <= self.start:
            raise ValueError(f"empty active window [{self.start}, {self.until})")

    def matches(self, src: str, dst: str, now: float) -> bool:
        """Does this rule apply to a ``src -> dst`` delivery sent at ``now``?"""
        if not self.start <= now < self.until:
            return False
        if self.src is not None and src not in self.src:
            return False
        return self.dst is None or dst in self.dst

    def severs(self) -> bool:
        """True if this rule alone makes the link total-loss while active."""
        return self.loss >= 1.0


class FaultPlan:
    """An ordered set of :class:`LinkFault` rules plus the chaos RNG.

    Installed on a :class:`~repro.net.network.Network` via
    :meth:`~repro.net.network.Network.set_fault_plan`, which binds ``rng``
    to the dedicated ``net.chaos`` seeded stream if none was given.

    ``stats`` counts what the plan actually did (consults, drops,
    duplicates, delayed deliveries) — deterministic per seed, handy for
    chaos-sweep reports.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng
        self.rules: List[LinkFault] = []
        self.stats: Dict[str, int] = {
            "consults": 0,
            "drops": 0,
            "duplicates": 0,
            "delayed": 0,
        }

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add(self, fault: Optional[LinkFault] = None, **kwargs) -> LinkFault:
        """Append a rule (an existing :class:`LinkFault` or its kwargs)."""
        if fault is None:
            fault = LinkFault(**kwargs)
        elif kwargs:
            raise TypeError("pass either a LinkFault or kwargs, not both")
        self.rules.append(fault)
        return fault

    def extend(self, faults: Iterable[LinkFault]) -> None:
        for fault in faults:
            self.add(fault)

    def remove(self, fault: LinkFault) -> bool:
        """Remove one rule; returns False if it was not installed."""
        try:
            self.rules.remove(fault)
            return True
        except ValueError:
            return False

    def clear(self) -> None:
        self.rules.clear()

    def partition(
        self,
        side_a: Iterable[str],
        side_b: Iterable[str],
        start: float = 0.0,
        until: float = _INF,
        symmetric: bool = True,
        loss: float = 1.0,
        label: str = "partition",
    ) -> List[LinkFault]:
        """Partition two host sets by total (or partial) directional loss.

        ``symmetric=False`` severs only ``side_a -> side_b`` — the
        asymmetric case a real switch failure cannot produce but flaky
        NICs, unidirectional link faults and firewall mishaps do.
        Returns the rules added (hand them to :meth:`remove` to heal
        early; otherwise the ``until`` bound heals them).
        """
        a = _normalize_side(tuple(side_a))
        b = _normalize_side(tuple(side_b))
        if a & b:
            raise ValueError(f"partition sides overlap: {sorted(a & b)}")
        added = [
            self.add(
                LinkFault(src=a, dst=b, loss=loss, start=start, until=until, label=label)
            )
        ]
        if symmetric:
            added.append(
                self.add(
                    LinkFault(src=b, dst=a, loss=loss, start=start, until=until, label=label)
                )
            )
        return added

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.rules)

    def matching(self, src: str, dst: str, now: float) -> List[LinkFault]:
        return [r for r in self.rules if r.matches(src, dst, now)]

    def severed(self, a: str, b: str, now: float) -> bool:
        """Is either direction between ``a`` and ``b`` under total loss?

        Used by the invariant checker: a node removed across a severed
        link is correct protocol behaviour, not a false failure.
        """
        for rule in self.rules:
            if rule.severs() and (rule.matches(a, b, now) or rule.matches(b, a, now)):
                return True
        return False

    # ------------------------------------------------------------------
    # The fabric hook
    # ------------------------------------------------------------------
    def offsets(self, src: str, dst: str, now: float) -> Optional[Tuple[float, ...]]:
        """Fault decision for one ``src -> dst`` delivery sent at ``now``.

        Returns ``None`` when no rule matches (fabric takes its normal
        single-delivery path, **zero** randomness consumed), the empty
        tuple when the delivery is dropped, or the extra-delay offsets of
        every copy to schedule (first entry is the primary copy).
        Matched rules compose in insertion order; draws happen in a fixed
        per-rule order (loss, jitter, reorder, duplicate) so both fabric
        paths consume the chaos stream identically.
        """
        matched = [r for r in self.rules if r.matches(src, dst, now)]
        if not matched:
            return None
        rng = self.rng
        if rng is None:
            raise RuntimeError(
                "FaultPlan has no RNG bound; install it on a Network "
                "(set_fault_plan) or pass a seeded random.Random"
            )
        rand = rng.random
        stats = self.stats
        stats["consults"] += 1
        extra = 0.0
        lags: List[float] = []
        for rule in matched:
            if rule.loss > 0.0 and rand() < rule.loss:
                stats["drops"] += 1
                return ()
            if rule.jitter > 0.0:
                extra += rand() * rule.jitter
            if rule.reorder > 0.0 and rand() < rule.reorder:
                extra += rand() * rule.reorder_window
            if rule.duplicate > 0.0 and rand() < rule.duplicate:
                lags.append(rand() * rule.dup_lag if rule.dup_lag > 0.0 else 0.0)
        if extra > 0.0:
            stats["delayed"] += 1
        if not lags:
            return (extra,)
        stats["duplicates"] += len(lags)
        return (extra, *(extra + lag for lag in lags))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(rules={len(self.rules)}, stats={self.stats})"
