"""Unicast UDP transport with loss, latency, and virtual addresses.

Two features beyond plain datagram delivery:

* **Ports.**  A host binds handlers to named ports (``"membership"``,
  ``"service"``, ``"informer"``, ...) mirroring the daemon's listening
  sockets.
* **Virtual addresses.**  The proxy protocol exposes one external IP per
  data center, taken over by the new proxy leader on failover (Section
  3.2).  ``bind_address``/``take_over_address`` map a stable address string
  to the host currently owning it; senders address packets to the virtual
  address and the transport resolves it at send time — so in-flight packets
  to a dead leader are lost, exactly like real IP takeover.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro.net.bandwidth import BandwidthMeter
from repro.net.faults import FaultPlan
from repro.net.packet import Packet
from repro.net.topology import Topology, UNREACHABLE
from repro.obs.wiring import NOOP, Instruments
from repro.sim.engine import Simulator

__all__ = ["UnicastTransport"]

Handler = Callable[[Packet], None]


class UnicastTransport:
    """Point-to-point datagram delivery over the topology graph."""

    def __init__(
        self,
        sim: Simulator,
        topo: Topology,
        meter: BandwidthMeter,
        loss_rate: float = 0.0,
        loss_rng: Optional[random.Random] = None,
        proc_delay: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError(
                "loss_rate > 0 requires a seeded loss_rng; a missing stream "
                "used to silently disable the loss process"
            )
        self.sim = sim
        self.topo = topo
        self.meter = meter
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self.proc_delay = proc_delay
        #: Optional chaos fault plan (installed via Network.set_fault_plan).
        self.fault_plan: Optional[FaultPlan] = None
        #: Shared instruments; no-op until observability is enabled.
        self.obs: Instruments = NOOP
        self._ports: Dict[Tuple[str, str], Handler] = {}
        self._addresses: Dict[str, str] = {}
        # Route plan cache: (src, dst address) -> (host, total latency) or
        # None for "currently unroutable".  Validated against the topology
        # version and an address-binding version so virtual-IP takeover and
        # device churn invalidate it wholesale (both are rare events).
        self._routes: Dict[Tuple[str, str], Optional[Tuple[str, float]]] = {}
        self._routes_topo_version = topo.version
        self._addr_version = 0
        self._routes_addr_version = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, host: str, port: str, handler: Handler) -> None:
        """Attach ``handler`` to (host, port); replaces a previous binding."""
        self._ports[(host, port)] = handler

    def unbind(self, host: str, port: str) -> None:
        self._ports.pop((host, port), None)

    def unbind_all(self, host: str) -> None:
        for key in [k for k in self._ports if k[0] == host]:
            del self._ports[key]

    def bind_address(self, address: str, host: str) -> None:
        """Point virtual ``address`` at ``host`` (initial claim or failover)."""
        self._addresses[address] = host
        self._addr_version += 1

    def release_address(self, address: str) -> None:
        if self._addresses.pop(address, None) is not None:
            self._addr_version += 1

    def resolve(self, address: str) -> Optional[str]:
        """Host currently owning ``address``; host names resolve to themselves."""
        if address in self._addresses:
            return self._addresses[address]
        if self.topo.has_device(address):
            return address
        return None

    def address_owner(self, address: str) -> Optional[str]:
        return self._addresses.get(address)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet, port: str = "membership") -> bool:
        """Send ``packet`` to ``packet.dst`` (a host or virtual address).

        Returns True if a delivery was scheduled (the packet may still be
        lost in flight or find the destination dead on arrival).
        """
        if packet.dst is None:
            raise ValueError("unicast send requires packet.dst")
        if not self.topo.is_up(packet.src):
            return False
        self.meter.record(self.sim.now, packet.src, "tx", packet.kind, packet.size)
        obs = self.obs
        obs.uc_tx.inc()
        route = self._route(packet.src, packet.dst)
        if route is None:
            obs.uc_unroutable.inc()
            return False
        host, delay = route
        if self.loss_rng is not None and self.loss_rate > 0.0:
            if self.loss_rng.random() < self.loss_rate:
                obs.uc_drops.inc()
                return False
        fault = self.fault_plan
        if fault is not None and fault.rules:
            # Faults key on the resolved endpoint, not the virtual address:
            # a partition severs the host wherever its addresses point.
            offsets = fault.offsets(packet.src, host, self.sim.now)
            if offsets is not None:
                if not offsets:
                    return False
                for off in offsets:
                    self.sim.call_after(delay + off, self._deliver, packet, host, port)
                return True
        self.sim.call_after(delay, self._deliver, packet, host, port)
        return True

    def _route(self, src: str, dst: str) -> Optional[Tuple[str, float]]:
        """Resolved (host, send delay) for a (src, dst-address) pair, cached."""
        if (
            self.topo.version != self._routes_topo_version
            or self._addr_version != self._routes_addr_version
        ):
            self._routes.clear()
            self._routes_topo_version = self.topo.version
            self._routes_addr_version = self._addr_version
        key = (src, dst)
        try:
            return self._routes[key]
        except KeyError:
            pass
        route: Optional[Tuple[str, float]] = None
        host = self.resolve(dst)
        if host is not None:
            latency = self.topo.unicast_latency(src, host)
            if latency != UNREACHABLE:
                route = (host, latency + self.proc_delay)
        self._routes[key] = route
        return route

    def _deliver(self, packet: Packet, host: str, port: str) -> None:
        if not self.topo.is_up(host):
            return
        handler = self._ports.get((host, port))
        if handler is None:
            return
        self.meter.record(self.sim.now, host, "rx", packet.kind, packet.size)
        self.obs.uc_rx.inc()
        handler(packet)
