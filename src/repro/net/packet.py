"""Packet model.

Packets are plain value objects; protocols attach arbitrary payloads.  The
``size`` field drives bandwidth accounting and must be set by the sender —
protocol code computes it from the same per-node membership-description size
the paper measured (228 bytes, Section 6.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Packet"]

_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A datagram in flight.

    Attributes
    ----------
    src:
        Sending host name.
    dst:
        Destination host for unicast, or ``None`` for multicast.
    channel:
        Multicast channel id for multicast, or ``None`` for unicast.
    ttl:
        TTL the packet was sent with (multicast scoping); unicast packets
        use a large default.
    kind:
        Protocol-level packet type (``"heartbeat"``, ``"update"``, ...);
        used by traces and bandwidth breakdowns.
    payload:
        Opaque protocol data.
    size:
        Wire size in bytes (headers included) used for bandwidth metering.
    """

    src: str
    kind: str
    payload: Any
    size: int
    dst: Optional[str] = None
    channel: Optional[str] = None
    ttl: int = 64
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("packet size must be non-negative")
        if (self.dst is None) == (self.channel is None):
            raise ValueError("exactly one of dst (unicast) or channel (multicast) required")
