"""Heartbeat payloads for the hierarchical protocol.

Within each group every member multicasts one heartbeat per period.  A
heartbeat carries the sender's full member description (record) plus the
per-channel election flags: whether the sender is the group's leader on
this channel ("A group leader is found if a special flag in its heartbeat
packets is set", Bootstrap Protocol), whether it currently *sees* a leader
(used by the bully election to avoid two leaders that can see each other),
and the leader's designated backup.

Interning contract (protocol hot path): between membership and election
changes a node's heartbeat on a level is *identical*, so senders cache the
frozen instance per level and re-send the same object each period.  The
cached payload is invalidated by any change to the signature
``(record identity, is_leader, suppressed, backup, update_seq)`` — i.e. a
new incarnation or self-record edit, an election flip, a backup
re-designation, or an update sent on the channel.  Receivers exploit the
other direction: an incoming heartbeat that matches ``peer.last_hb``
proves nothing changed and short-circuits straight to a directory
freshness refresh.  Inside the simulator the match is the O(1) identity
test ``hb is peer.last_hb``; over a real transport payloads are rebuilt
from bytes on every receive, so the receive paths fall back to
:meth:`Heartbeat.same_as` — content equality with the cheap scalar flags
compared first — and MUST NOT rely on object identity for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.directory import NodeRecord

__all__ = ["Heartbeat"]


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """One heartbeat on one channel.

    Attributes
    ----------
    record:
        The sender's self description (id, incarnation, services, attrs).
    level:
        Group level of the channel this heartbeat was sent on.
    is_leader:
        Leader flag for this channel.
    suppressed:
        True when the sender sees some leader on this channel (and thus
        will not contend); lets other members run the election correctly
        in overlapping topologies where they cannot see that leader.
    backup:
        The leader's designated backup member (only set by leaders).
    update_seq:
        The sender's latest update sequence number on this channel.  Lets
        receivers detect a lost update even when no further update follows
        (the next heartbeat reveals the gap and triggers a sync poll).
    """

    record: NodeRecord
    level: int
    is_leader: bool
    suppressed: bool
    backup: Optional[str] = None
    update_seq: int = 0

    @property
    def node_id(self) -> str:
        return self.record.node_id

    def same_as(self, other: "Heartbeat") -> bool:
        """Content-equality tuned for the receive fast path.

        Equivalent to ``self == other`` but ordered cheapest-first: the
        scalar election/stream flags almost always differ when anything
        differs, so the (dict-comparing) record equality only runs for
        genuinely unchanged heartbeats — and is skipped entirely when the
        record travelled by reference.  This is what lets the no-change
        short-circuit survive a serialization round-trip, where ``is``
        can never hold.
        """
        return (
            self.update_seq == other.update_seq
            and self.is_leader == other.is_leader
            and self.suppressed == other.suppressed
            and self.level == other.level
            and self.backup == other.backup
            and (self.record is other.record or self.record == other.record)
        )
