"""Update messages: origination, relay, piggyback, loss recovery.

Status changes (node joins, departures, value changes) propagate through
the tree as **update messages** (Section 3.1.2):

* The leader that detects a change multicasts an update on every channel
  it participates in ("it will multicast this information to all the
  groups that it joins").
* A node receiving a *new* update applies it and relays it onto its other
  channels; the leader of the receiving channel additionally echoes it on
  that same channel so overlapped group members beyond the sender's TTL
  reach still hear it.  Updates carry a ``(origin, uid)`` pair that is
  globally unique by content (the originating node plus its own counter)
  and every node processes each pair once, so relays terminate and
  redundant deliveries are harmless (the paper's idempotence argument).
* Loss handling: each (sender, channel) stream is sequence-numbered and
  every message piggybacks the last ``piggyback_depth`` updates, tolerating
  that many consecutive losses; a larger gap triggers a full directory
  sync poll to the sender ("the receiver will poll the sender to
  synchronize its membership directory").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.directory import NodeRecord

__all__ = ["UpdateOp", "UpdateMessage", "UpdateManager", "RecvOutcome"]

_uid_counter = itertools.count(1)

#: Wire-size estimate of a removal op (node id + incarnation + op byte).
REMOVE_OP_SIZE = 24


@dataclass(frozen=True, slots=True)
class UpdateOp:
    """One membership delta.

    ``op`` is one of:

    * ``"add"`` — record present;
    * ``"remove"`` — failure detected; id + incarnation of the node being
      removed (the incarnation guards against removing a fresher record of
      a restarted node);
    * ``"leave"`` — graceful departure announced by the node itself; like
      a remove but receivers drop the member immediately even though its
      heartbeats were heard moments ago.
    """

    op: str
    node_id: str
    incarnation: int
    record: Optional[NodeRecord] = None

    def size(self, member_size: int) -> int:
        return member_size if self.op == "add" else REMOVE_OP_SIZE


@dataclass(frozen=True, slots=True)
class UpdateMessage:
    """One update datagram on one channel.

    ``seq`` numbers the (sender, channel) stream hop-by-hop; ``(origin,
    uid)`` identifies the logical update end-to-end for deduplication —
    ``uid`` alone is only unique within the originator's process, so two
    real daemons whose counters both start at 1 would otherwise swallow
    each other's updates.  ``piggyback`` carries ``(seq, uid, origin,
    ops)`` of the sender's previous updates on this channel; each entry
    keeps the *true* originator of that update (a piggybacked entry may
    be a relay of someone else's change).
    """

    uid: int
    origin: str
    sender: str
    level: int
    seq: int
    ops: Tuple[UpdateOp, ...]
    piggyback: Tuple[Tuple[int, int, str, Tuple[UpdateOp, ...]], ...] = ()

    def size(self, member_size: int, header_size: int) -> int:
        total = header_size + sum(op.size(member_size) for op in self.ops)
        for _seq, _uid, _origin, ops in self.piggyback:
            total += sum(op.size(member_size) for op in ops)
        return total


@dataclass(slots=True)
class RecvOutcome:
    """Result of processing one incoming update message."""

    #: ``(uid, origin, ops)`` groups to apply, oldest first (may include
    #: recovered piggyback); ``origin`` is the true originator of each
    #: group so relays re-advertise the right end-to-end identity.
    apply: List[Tuple[int, str, Tuple[UpdateOp, ...]]] = field(default_factory=list)
    #: True when a gap exceeded the piggyback depth: poll the sender
    need_sync: bool = False
    #: True when this message's primary update was new (should be relayed)
    relay: bool = False
    #: op groups in ``apply`` that came from the piggyback, not the
    #: primary update — free loss recovery (observability counter).
    recovered: int = 0


#: Default bound on the remembered-uid window (see UpdateManager).
DEFAULT_SEEN_UID_WINDOW = 4096


class UpdateManager:
    """Per-node bookkeeping for the update sub-protocol.

    ``seen_uid_window`` bounds the uid-deduplication memory: keys are kept
    in an insertion-ordered window and the oldest are evicted once the
    window overflows, so long-running nodes no longer leak memory linearly
    in cluster churn.  The window only needs to cover updates that can
    still arrive late — bounded by piggyback depth times fan-in in
    practice — and an evicted key that *does* straggle back is merely
    re-applied, which the paper's idempotence argument makes harmless
    ("redundant messages will not cause confusion").

    Deduplication keys on ``(origin, uid)`` *content*, never on payload
    identity and never on the bare uid: uids are allocated by a counter in
    the originating process, so two real daemons (or a process restart)
    can both emit uid 1 — the originator id disambiguates.  Inside one
    simulator process uids happen to be globally unique, which makes the
    keyed and bare forms indistinguishable there (the golden traces pin
    this).
    """

    def __init__(
        self,
        node_id: str,
        piggyback_depth: int = 3,
        seen_uid_window: int = DEFAULT_SEEN_UID_WINDOW,
        uid_alloc: Optional[Callable[[], int]] = None,
    ) -> None:
        self.node_id = node_id
        self.piggyback_depth = piggyback_depth
        self.seen_uid_window = seen_uid_window
        # Pluggable uid source: the process-global counter is fine for
        # one kernel, but the sharded runner needs uids that are unique
        # across worker processes and independent of execution order, so
        # it injects a per-node allocator (see ShardNetwork.uid_alloc).
        self._uid_alloc = uid_alloc
        # outgoing per-channel state
        self._next_seq: Dict[int, int] = {}
        self._recent: Dict[int, List[Tuple[int, int, str, Tuple[UpdateOp, ...]]]] = {}
        # incoming stream positions: level -> sender -> last seen seq.
        # Nested (not tuple-keyed) so the per-heartbeat behind() check
        # needs no key allocation, and the per-level map has a *stable
        # identity* (cleared in place, never replaced) that the receive
        # fast path can capture once per channel subscription.
        self._last_seen: Dict[int, Dict[str, int]] = {}
        # (origin, uid) keys already applied/relayed: insertion-ordered
        # (dict preserves insertion order) so eviction drops the oldest
        # first
        self._seen_uids: Dict[Tuple[str, int], None] = {}

    def reset(self) -> None:
        """Forget everything (daemon restart)."""
        self._next_seq.clear()
        self._recent.clear()
        # In place: captured level_stream() references must stay valid.
        for stream in self._last_seen.values():
            stream.clear()
        self._seen_uids.clear()

    # ------------------------------------------------------------------
    # Outgoing
    # ------------------------------------------------------------------
    def new_uid(self) -> int:
        if self._uid_alloc is not None:
            return self._uid_alloc()
        return next(_uid_counter)

    def build(
        self,
        level: int,
        ops: Sequence[UpdateOp],
        uid: Optional[int] = None,
        origin: Optional[str] = None,
    ) -> UpdateMessage:
        """Construct the next update message for ``level``'s channel.

        ``uid``/``origin`` are carried through unchanged when relaying
        someone else's update; omitted for locally-originated changes.
        """
        seq = self._next_seq.get(level, 0) + 1
        self._next_seq[level] = seq
        msg_uid = uid if uid is not None else self.new_uid()
        msg_origin = origin if origin is not None else self.node_id
        recent = self._recent.setdefault(level, [])
        msg = UpdateMessage(
            uid=msg_uid,
            origin=msg_origin,
            sender=self.node_id,
            level=level,
            seq=seq,
            ops=tuple(ops),
            piggyback=tuple(recent[-self.piggyback_depth :]),
        )
        recent.append((seq, msg_uid, msg_origin, tuple(ops)))
        if len(recent) > self.piggyback_depth:
            del recent[: len(recent) - self.piggyback_depth]
        # Anything we send is by definition known to us.
        self.mark_seen(msg_origin, msg_uid)
        return msg

    def mark_seen(self, origin: str, uid: int) -> None:
        seen = self._seen_uids
        key = (origin, uid)
        if key in seen:
            return
        seen[key] = None
        if len(seen) > self.seen_uid_window:
            # Evict the oldest remembered keys (insertion order).
            overflow = len(seen) - self.seen_uid_window
            for old in list(itertools.islice(iter(seen), overflow)):
                del seen[old]

    # ------------------------------------------------------------------
    # Incoming
    # ------------------------------------------------------------------
    def receive(self, msg: UpdateMessage) -> RecvOutcome:
        """Process sequence numbers, piggyback recovery and deduplication.

        The caller applies ``outcome.apply`` op groups (deduplicated by
        ``(origin, uid)`` already), relays the primary update if ``outcome.relay``, and
        issues a directory sync poll to ``msg.sender`` if
        ``outcome.need_sync``.
        """
        outcome = RecvOutcome()
        stream = self.level_stream(msg.level)
        last = stream.get(msg.sender)
        if last is None:
            # First contact mid-stream: everything before msg.seq was
            # missed; the piggyback recovers the recent tail and a larger
            # hole triggers a bootstrap sync.
            last = 0
        if msg.seq <= last:
            # Duplicate or reordered-behind packet: (origin, uid) dedup
            # still applies, and the piggyback may carry updates we never
            # saw — a reordered-behind message's tail can hold a seq that
            # was lost, then jumped over by note_synced or a later gap
            # whose own piggyback no longer reached back that far.  The
            # forward path recovers these for free; discarding them here
            # threw the loss-recovery data away.  (Piggybacked seqs are
            # all < msg.seq, so _last_seen needs no update, and an entry
            # we did apply before is deduplicated.)
            for _seq, uid, origin, ops in msg.piggyback:
                if (origin, uid) not in self._seen_uids:
                    self.mark_seen(origin, uid)
                    outcome.apply.append((uid, origin, ops))
                    outcome.recovered += 1
            if (msg.origin, msg.uid) not in self._seen_uids:
                self.mark_seen(msg.origin, msg.uid)
                outcome.apply.append((msg.uid, msg.origin, msg.ops))
                outcome.relay = True
            return outcome

        if msg.seq > last + 1:
            # Gap: try to recover missed seqs from the piggyback.
            missing = set(range(last + 1, msg.seq))
            recovered = {
                seq: (uid, origin, ops)
                for seq, uid, origin, ops in msg.piggyback
                if seq in missing
            }
            if missing - set(recovered):
                outcome.need_sync = True
            for seq in sorted(recovered):
                uid, origin, ops = recovered[seq]
                if (origin, uid) not in self._seen_uids:
                    self.mark_seen(origin, uid)
                    outcome.apply.append((uid, origin, ops))
                    outcome.recovered += 1
        stream[msg.sender] = msg.seq

        if (msg.origin, msg.uid) not in self._seen_uids:
            self.mark_seen(msg.origin, msg.uid)
            outcome.apply.append((msg.uid, msg.origin, msg.ops))
            outcome.relay = True
        return outcome

    def current_seq(self, level: int) -> int:
        """Latest sequence number sent on ``level`` (advertised in heartbeats)."""
        return self._next_seq.get(level, 0)

    def level_stream(self, level: int) -> Dict[str, int]:
        """The sender → last-seen-seq map for ``level``.

        The returned dict has a stable identity for the manager's
        lifetime (:meth:`reset` empties it in place), so the per-channel
        receive fast path may capture it once and run the
        :meth:`behind` predicate without a method call or key tuple.
        """
        stream = self._last_seen.get(level)
        if stream is None:
            stream = self._last_seen[level] = {}
        return stream

    def behind(self, sender: str, level: int, advertised_seq: int) -> bool:
        """True if the sender's heartbeat advertises updates we never saw."""
        if advertised_seq <= 0:
            return False
        stream = self._last_seen.get(level)
        last = stream.get(sender) if stream is not None else None
        return last is None or last < advertised_seq

    def note_synced(self, sender: str, level: int, advertised_seq: int) -> None:
        """Mark the stream caught-up after a full directory sync."""
        stream = self.level_stream(level)
        if stream.get(sender, -1) < advertised_seq:
            stream[sender] = advertised_seq

    def forget_sender(self, sender: str) -> None:
        """Drop stream state for a dead sender (its seq space restarts)."""
        for stream in self._last_seen.values():
            stream.pop(sender, None)
