"""Contender role: leader election, backup designation, step-down (Fig. 10).

The decision rules themselves live in :mod:`repro.core.election`; the
contender applies a :class:`~repro.core.election.Decision` to this
node's state — flying the flag immediately, re-anchoring the subtree's
vouched entries, joining or abandoning the next channel up, and pulling
peers' state (bootstrap protocol, leader side).

Observability: ``elections`` and ``stepdowns`` increment here and
nowhere else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.election import Decision, decide
from repro.core.updates import UpdateOp

if TYPE_CHECKING:
    from repro.cluster.directory import NodeRecord
    from repro.core.groups import GroupState
    from repro.core.roles.context import NodeContext

__all__ = ["Contender"]


class Contender:
    """Contends for (and renounces) group leadership."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx

    def evaluate(self, level: int) -> None:
        ctx = self.ctx
        group = ctx.groups.get(level)
        if group is None:
            return
        decision = decide(group, ctx.node_id, ctx.now, ctx.config.election_delay)
        if decision is Decision.BECOME_LEADER:
            self.become_leader(level)
        elif decision is Decision.STEP_DOWN:
            self.step_down(level)

    def become_leader(self, level: int) -> None:
        ctx = self.ctx
        group = ctx.groups[level]
        group.i_am_leader = True
        group.suppressed = False
        group.leaderless_since = None
        group.my_backup = self.pick_backup(group)
        if group.last_dead_leader is not None:
            ctx.directory.reattribute(group.last_dead_leader, ctx.node_id)
            group.last_dead_leader = None
        ctx.runtime.obs.elections.inc()
        ctx.runtime.emit("leader_elected", level=level)
        # Bootstrap-results window: long enough for tombstone quarantines
        # to lapse and the deferred re-syncs to complete.
        ctx.bootstrap_announce_until = (
            ctx.now
            + ctx.config.tombstone_quarantine
            + 2 * ctx.config.min_sync_interval
        )
        ctx.announcer.send_heartbeat(level)  # fly the flag immediately
        # Re-announce the subtree this node now vouches for, so peers
        # re-attribute entries from the previous leader to us.
        subtree = self.subtree_records(level)
        if subtree:
            ctx.informer.originate(
                [UpdateOp("add", r.node_id, r.incarnation, r) for r in subtree]
            )
        ctx.participate(level + 1)
        # Pull state from existing peers: a fresh leader is this group's
        # relay point and must know its peers' subtrees (bootstrap protocol,
        # leader side).
        for peer_id in group.member_ids():
            ctx.maybe_sync(peer_id)

    def step_down(self, level: int) -> None:
        ctx = self.ctx
        group = ctx.groups[level]
        group.i_am_leader = False
        group.my_backup = None
        group.suppressed = True
        ctx.runtime.obs.stepdowns.inc()
        ctx.runtime.emit("leader_stepdown", level=level)
        ctx.announcer.send_heartbeat(level)
        orphans: Set[str] = set()
        ctx.abandon(level + 1, orphans)
        # Entries we only knew through the abandoned channels are handed to
        # the leader of our lowest remaining group — the relay point whose
        # heartbeats we will actually keep hearing (anchoring to the left
        # channel's leader would leave them vouched by someone a plain
        # member never hears again).
        anchor: Optional[str] = None
        if ctx.groups:
            lowest = ctx.groups[ctx.levels[0]]
            anchor = lowest.current_leader(ctx.node_id)
        now = ctx.now
        for nid in sorted(orphans):
            if nid == anchor or ctx.heard_level(nid) is not None:
                continue
            if nid in ctx.directory and anchor is not None:
                ctx.directory.refresh(nid, now, relayed_by=anchor)

    def pick_backup(self, group: "GroupState") -> Optional[str]:
        members = group.member_ids()
        if not members:
            return None
        return members[self.ctx.rng.randrange(len(members))]

    def subtree_records(self, level: int) -> List["NodeRecord"]:
        """Records this node vouches for when leading at ``level``.

        Everything heard directly at levels <= ``level`` plus itself —
        i.e. the subtree the new leader represents upward.
        """
        ctx = self.ctx
        ids = {ctx.node_id}
        for lv in ctx.levels:
            if lv <= level:
                ids.update(ctx.groups[lv].member_ids())
        out = []
        for nid in sorted(ids):
            rec = ctx.directory.get(nid)
            if rec is not None:
                out.append(rec)
        return out
