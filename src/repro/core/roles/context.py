"""Shared state and cross-role services for the five daemon roles.

The paper's daemon threads share one process: the membership directory,
the per-channel group views, the update streams.  :class:`NodeContext`
is that shared process state, plus the handful of helpers that no single
role owns (channel participation, relay-point tests, vouch anchoring
inputs).  Each role holds the context and reaches its siblings through
it — mirroring Fig. 10, where the five threads cooperate over shared
memory rather than calling each other directly.

The context deliberately does **not** know about ``repro.sim`` or
``repro.net``: all environment access goes through the
:class:`~repro.runtime.ports.NodeRuntime` ports, which is what makes the
roles unit-testable against a fake runtime (``tests/core/roles``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Protocol, Set, Tuple

from repro.core.groups import GroupState

if TYPE_CHECKING:
    import random

    from repro.cluster.directory import Directory, NodeRecord
    from repro.core.config import HierarchicalConfig
    from repro.core.roles.announcer import Announcer
    from repro.core.roles.contender import Contender
    from repro.core.roles.informer import Informer
    from repro.core.roles.receiver import Receiver
    from repro.core.roles.tracker import Tracker
    from repro.core.updates import UpdateManager
    from repro.detect import FailureDetector
    from repro.runtime.ports import NodeRuntime

__all__ = ["NodeContext", "MemberHost"]


class MemberHost(Protocol):
    """What the roles require of the node facade hosting them.

    :class:`~repro.core.node.HierarchicalNode` is the production
    implementation; role unit tests substitute a stub.  The underscored
    members are part of the facade's stable internal surface (tests
    monkeypatch ``_maybe_sync``, so every internal sync request must
    route through it).
    """

    node_id: str
    incarnation: int
    running: bool
    use_fast_path: bool

    def self_record(self) -> "NodeRecord": ...

    def refute_death(self) -> None: ...

    def _maybe_sync(self, peer: str) -> bool: ...

    def _emit_member_up(self, target: str) -> None: ...

    def _emit_member_down(self, target: str, reason: str = "timeout") -> None: ...


class NodeContext:
    """One daemon's shared state, threaded through all five roles."""

    def __init__(
        self,
        node: MemberHost,
        runtime: "NodeRuntime",
        config: "HierarchicalConfig",
        directory: "Directory",
        rng: "random.Random",
        updates: "UpdateManager",
        detector: "Optional[FailureDetector]" = None,
    ) -> None:
        self.node = node
        #: the host's (immutable) id, denormalised onto the context — it is
        #: compared against every op of every update message, so the hot
        #: paths read an attribute instead of chaining through ``node``.
        self.node_id = node.node_id
        self.runtime = runtime
        self.config = config
        self.directory = directory
        self.rng = rng
        self.updates = updates
        if detector is None:
            # Standalone contexts (role unit tests) get the default
            # strategy; the node facade passes its own detector in.
            from repro.detect import CounterDetector

            detector = CounterDetector(config, runtime)
        #: the failure-detection strategy judging peer liveness
        self.detector: "FailureDetector" = detector
        #: level -> this node's view of that channel
        self.groups: Dict[int, GroupState] = {}
        #: sorted cache of ``groups``' keys, maintained on join/leave so
        #: the per-heartbeat/per-tick loops stop re-sorting the dict
        self.levels: Tuple[int, ...] = ()
        # Death certificates: node_id -> (incarnation, time of removal).
        # While quarantined, an add with the same (or older) incarnation is
        # rejected — otherwise a stale snapshot or in-flight update can
        # resurrect a dead node cluster-wide.  A genuinely restarted node
        # announces a higher incarnation and passes.
        self.tombstones: Dict[str, Tuple[int, float]] = {}
        # Rate limiter for active tombstone refutations (Informer).
        self.tombstone_refutes: Dict[str, float] = {}
        # Peers we owe a completed sync exchange: retried from the status
        # tracker until their sync_resp lands (bootstrap over lossy UDP
        # must not be a one-shot).
        self.pending_syncs: Set[str] = set()
        # While this deadline is in the future (set on becoming leader),
        # sync results are re-announced wholesale to our groups — the
        # bootstrap protocol's "the result is then propagated to all group
        # members", which repairs members' collateral removals after a
        # leader failover.  Deliberately *not* reset on restart (matching
        # the monolith): the window is wall-clock-anchored, not per-life.
        self.bootstrap_announce_until = 0.0
        self.last_full_announce = float("-inf")
        # Roles, wired by :meth:`wire` after construction.
        self.announcer: "Announcer"
        self.receiver: "Receiver"
        self.tracker: "Tracker"
        self.informer: "Informer"
        self.contender: "Contender"

    def wire(
        self,
        announcer: "Announcer",
        receiver: "Receiver",
        tracker: "Tracker",
        informer: "Informer",
        contender: "Contender",
    ) -> None:
        self.announcer = announcer
        self.receiver = receiver
        self.tracker = tracker
        self.informer = informer
        self.contender = contender

    # ------------------------------------------------------------------
    # Facade pass-throughs
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.runtime.now

    @property
    def use_fast_path(self) -> bool:
        return self.node.use_fast_path

    def maybe_sync(self, peer: str) -> bool:
        """Request a sync exchange, routed through the facade hook.

        Every internal sync request goes through ``node._maybe_sync`` so
        instance-level monkeypatching (tests, experiments) observes all
        of them, whichever role originated the request.
        """
        return self.node._maybe_sync(peer)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_for_start(self) -> None:
        """Forget per-life state on daemon (re)start.

        The bootstrap-announce window survives restarts by design (see
        the attribute comment above).
        """
        self.updates.reset()
        self.groups.clear()
        self.levels = ()
        self.tombstones.clear()
        self.tombstone_refutes.clear()
        self.pending_syncs.clear()

    # ------------------------------------------------------------------
    # Channel participation
    # ------------------------------------------------------------------
    def participate(self, level: int) -> None:
        """Join the channel at ``level`` and announce presence."""
        if level in self.groups or level > self.config.max_level:
            return
        self.groups[level] = GroupState(level)
        self.levels = tuple(sorted(self.groups))
        self.runtime.subscribe(
            self.config.channel(level), self.receiver.channel_handler(level)
        )
        self.announcer.send_heartbeat(level)  # announce presence immediately

    def abandon(self, level: int, orphans: Optional[Set[str]] = None) -> None:
        """Drop out of ``level`` and, recursively, everything above it.

        Peers heard only on the abandoned channels are collected into
        ``orphans`` so the caller can re-home their directory entries
        (see :meth:`~repro.core.roles.contender.Contender.step_down`);
        without that they would linger as direct entries nobody
        refreshes.
        """
        group = self.groups.pop(level, None)
        if group is None:
            return
        self.levels = tuple(sorted(self.groups))
        self.announcer.drop_level(level)
        self.runtime.unsubscribe(self.config.channel(level))
        if orphans is not None:
            orphans.update(group.member_ids())
        self.abandon(level + 1, orphans)

    def abandon_all(self) -> None:
        """Leave every channel without orphan re-homing (daemon stop)."""
        for level in list(self.groups):
            self.runtime.unsubscribe(self.config.channel(level))
        self.groups.clear()
        self.levels = ()
        self.announcer.reset()

    # ------------------------------------------------------------------
    # Cross-role queries
    # ------------------------------------------------------------------
    def heard_level(self, node_id: str) -> Optional[int]:
        """Lowest level where ``node_id`` is currently a direct peer."""
        for level in self.levels:
            if node_id in self.groups[level].peers:
                return level
        return None

    def is_relay_point(self) -> bool:
        """True when this node relays between channels (leader or multi-level)."""
        return len(self.groups) > 1 or any(
            g.i_am_leader for g in self.groups.values()
        )

    # ------------------------------------------------------------------
    # Trace hooks (delegated to the facade's shared vocabulary)
    # ------------------------------------------------------------------
    def emit_member_up(self, target: str) -> None:
        self.node._emit_member_up(target)

    def emit_member_down(self, target: str, reason: str = "timeout") -> None:
        self.node._emit_member_down(target, reason=reason)
