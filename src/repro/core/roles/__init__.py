"""The hierarchical daemon's five thread roles (paper Fig. 10).

================  ====================================================
Announcer         :mod:`~repro.core.roles.announcer` — periodic
                  heartbeats on every joined channel
Receiver          :mod:`~repro.core.roles.receiver` — channel/unicast
                  dispatch, heartbeat absorption (incl. the no-change
                  fast path)
Status Tracker    :mod:`~repro.core.roles.tracker` — deadline purges,
                  relayed-entry backstops, death handling
Informer          :mod:`~repro.core.roles.informer` — update
                  origination/relay, sync server, tombstones
Contender         :mod:`~repro.core.roles.contender` — election,
                  backup designation, step-down
================  ====================================================

The roles share one :class:`~repro.core.roles.context.NodeContext`
(directory, group views, update streams — the daemon's shared memory)
and reach the environment only through
:class:`~repro.runtime.ports.NodeRuntime`, so each role is unit-testable
against a fake runtime with no simulator (``tests/core/roles``).
:class:`~repro.core.node.HierarchicalNode` is the facade that wires them
together and preserves the public protocol API.
"""

from repro.core.roles.announcer import Announcer
from repro.core.roles.contender import Contender
from repro.core.roles.context import MemberHost, NodeContext
from repro.core.roles.informer import Informer
from repro.core.roles.receiver import HMEMBER_PORT, Receiver
from repro.core.roles.tracker import Tracker

__all__ = [
    "Announcer",
    "Contender",
    "Informer",
    "MemberHost",
    "NodeContext",
    "Receiver",
    "Tracker",
    "HMEMBER_PORT",
]
