"""Status Tracker role: deadline purges and death handling (Fig. 10).

Once per heartbeat period the tracker retries unfinished sync exchanges,
purges silent direct peers per-level, re-evaluates every election clock,
and runs the two directory backstops (stale relayed entries, orphaned
direct entries).  On the fast path those backstops are deadline-heap
pops (amortised O(1) in a quiet period) instead of full directory scans.

Death handling implements the paper's timeout protocol — "membership
information that is relayed by the dead node is also timeouted" — plus
the backup fast path and the abdication-vs-death distinction
(:meth:`Tracker.freshly_heard`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.core.updates import UpdateOp

if TYPE_CHECKING:
    from repro.core.groups import PeerState
    from repro.core.roles.context import NodeContext

__all__ = ["Tracker"]


class Tracker:
    """Watches deadlines and turns silence into removals."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx

    def check_tick(self) -> None:
        ctx = self.ctx
        if not ctx.node.running:
            return
        now = ctx.now
        # Retry unfinished sync exchanges (the rate limiter paces them).
        if ctx.pending_syncs:
            for peer in sorted(ctx.pending_syncs):
                ctx.maybe_sync(peer)
        det = ctx.detector
        for level in ctx.levels:
            group = ctx.groups.get(level)
            if group is None:
                continue  # removed by a step-down earlier in this tick
            timeout = ctx.config.level_timeout(level)
            # The strategy judges, the group bookkeeps: with the default
            # counter detector this is purge_silent verbatim (same
            # predicate, same iteration order).
            dead = det.silent_peers(level, group, now, timeout)
            if dead:
                group.purge_peers(dead)
            for peer in dead:
                self.handle_peer_death(level, peer)
        for level in ctx.levels:
            if level in ctx.groups:
                ctx.contender.evaluate(level)
        # Backstop: relayed entries nobody has vouched for in a long time.
        incs: Dict[str, int] = {}
        purged: List[UpdateOp] = []
        for nid in ctx.directory.purge_stale_relayed(
            now, ctx.config.relayed_timeout, incarnations=incs
        ):
            purged.append(UpdateOp("remove", nid, incs.get(nid, 0)))
            ctx.informer.bury(nid, incs.get(nid, 0))
            ctx.emit_member_down(nid, reason="relayed_timeout")
        # Safety net for orphaned direct entries (no live channel refreshes
        # them); generous so it never races real per-level detection.
        safety = ctx.config.level_timeout(ctx.config.max_level) + ctx.config.fail_timeout
        for nid in ctx.directory.purge_stale(now, safety, incarnations=incs):
            purged.append(UpdateOp("remove", nid, incs.get(nid, 0)))
            ctx.informer.bury(nid, incs.get(nid, 0))
            ctx.emit_member_down(nid, reason="orphan_timeout")
        if purged and ctx.is_relay_point():
            # A relay point's heartbeats implicitly vouch for everything it
            # ever attributed to itself in its members' directories — so a
            # silent backstop purge here would leave the subtree holding
            # the dropped entries *forever* (vouching keeps them fresh and
            # no remove rumor ever arrives).  Originate the removals just
            # like the peer-death cascade does.
            ctx.informer.originate(purged)

    def freshly_heard(self, node_id: str, now: float) -> bool:
        """Still a direct peer on some channel, heard within ``fail_timeout``.

        Distinguishes *abdication* from *death* when a peer goes silent on
        one channel: a leader that steps down abandons its upper channels
        but keeps heartbeating below, so its entry there is fresh; a dead
        node is stale on every channel it was heard on (the lower levels
        purge first, leaving only entries at least ``fail_timeout`` old).
        """
        ctx = self.ctx
        for lv in ctx.levels:
            entry = ctx.groups[lv].peers.get(node_id)
            if entry is not None and now - entry.last_heard <= ctx.config.fail_timeout:
                return True
        return False

    def handle_peer_death(self, level: int, peer: "PeerState") -> None:
        ctx = self.ctx
        group = ctx.groups[level]
        now = ctx.now
        ctx.detector.forget(peer.node_id, level)

        if peer.is_leader:
            group.last_dead_leader = peer.node_id
            if peer.backup == ctx.node_id and not group.i_am_leader:
                # Backup fast path: immediate takeover, no election delay.
                ctx.directory.reattribute(peer.node_id, ctx.node_id)
                group.last_dead_leader = None
                ctx.contender.become_leader(level)
            elif peer.backup is not None and peer.backup in group.peers:
                # The designated backup is alive; expect it to take over and
                # inherit the vouched entries right away.
                ctx.directory.reattribute(peer.node_id, peer.backup)
                group.last_dead_leader = None

        if self.freshly_heard(peer.node_id, now):
            # Silent on *this* channel but alive on another: a leader
            # stepping down leaves the upper channels, it did not die.
            # The group-local failover bookkeeping above still applies
            # (this group genuinely lost its flag-flier); the directory
            # entry and everything it vouches for stay — removing them
            # here declared live nodes dead cluster-wide after every
            # step-down that outlived a higher-level timeout.
            if peer.node_id == group.my_backup:
                group.my_backup = ctx.contender.pick_backup(group)
            return
        ctx.updates.forget_sender(peer.node_id)
        ctx.pending_syncs.discard(peer.node_id)
        # What did the dead peer vouch for?  (Must be computed before the
        # purge below.)  Reported upward/downward by relay-point nodes so
        # whole-subtree failures (switch partitions) propagate quickly.
        # Capture the incarnations we know before purging, so the remove
        # ops carry guards that match what other nodes have.
        relayed_incs = {
            nid: rec.incarnation
            for nid in ctx.directory.relayed_entries(peer.node_id)
            if (rec := ctx.directory.get(nid)) is not None
        }
        removed = []
        if ctx.directory.remove(peer.node_id):
            removed.append(UpdateOp("remove", peer.node_id, peer.incarnation))
            ctx.informer.bury(peer.node_id, peer.incarnation)
            ctx.emit_member_down(peer.node_id)
        # Timeout protocol: "membership information that is relayed by the
        # dead node is also timeouted."
        for nid in ctx.directory.purge_relayed_by(peer.node_id):
            removed.append(UpdateOp("remove", nid, relayed_incs.get(nid, 0)))
            ctx.informer.bury(nid, relayed_incs.get(nid, 0))
            ctx.emit_member_down(nid, reason="relayer_died")
        if removed and ctx.is_relay_point():
            ctx.informer.originate(removed)
        if peer.node_id == group.my_backup:
            group.my_backup = ctx.contender.pick_backup(group)
