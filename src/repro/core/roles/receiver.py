"""Receiver role: channel and unicast dispatch (Fig. 10).

The receiver demultiplexes everything that arrives at the node — one
handler closure per joined channel plus the ``hmember`` unicast port —
and absorbs heartbeats, including the protocol hot-path engine's
identity-based no-change fast path.  Updates are handed to the
:class:`~repro.core.roles.informer.Informer`; election-relevant
observations poke the :class:`~repro.core.roles.contender.Contender`.

Observability: ``hb_rx``, ``hb_rx_fast`` and ``sync_resps`` increment
here and nowhere else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.updates import UpdateOp
from repro.detect import handle_probe_packet

if TYPE_CHECKING:
    from repro.core.heartbeat import Heartbeat
    from repro.net.packet import Packet
    from repro.runtime.ports import PacketHandler
    from repro.core.roles.context import NodeContext

__all__ = ["Receiver", "HMEMBER_PORT"]

#: The hierarchical protocol's unicast port (sync requests/responses).
HMEMBER_PORT = "hmember"


class Receiver:
    """Dispatches deliveries into the other roles."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx

    def channel_handler(self, level: int) -> "PacketHandler":
        # Flat dispatch: one closure frame per delivery instead of three.
        # Heartbeats dominate steady-state receive traffic, so the kind
        # test orders them first.
        #
        # The no-change fast path is mirrored inline from on_heartbeat
        # (which keeps the reference copy and the full rationale — the
        # two must stay in lockstep).  Receives are the simulator's
        # hottest path at 10k nodes, and every captured local below
        # replaces a chain of per-delivery attribute loads through
        # objects long since evicted from cache.  Handlers are rebuilt
        # on every channel join, and all captured objects live for the
        # context's lifetime and are only ever mutated in place.
        ctx = self.ctx
        node = ctx.node
        groups = ctx.groups
        on_heartbeat = self.on_heartbeat
        runtime = ctx.runtime
        directory = ctx.directory
        entry_view = directory.entry_view
        refresh = directory.refresh
        vouch = directory.vouch
        tombstones = ctx.tombstones
        stream = ctx.updates.level_stream(level)
        maybe_sync = ctx.maybe_sync
        evaluate = ctx.contender.evaluate
        relay_level = level >= 1
        # Pre-resolve the detector observation hook: the default counter
        # strategy is passive (group freshness stamps are its evidence),
        # so the hot path pays a single None test for pluggability.
        detector = ctx.detector
        observe_hb = None if detector.passive else detector.observe_heartbeat

        def handler(packet: "Packet") -> None:
            if not node.running or level not in groups:
                return
            kind = packet.kind
            if kind == "heartbeat":
                hb = packet.payload
                if node.use_fast_path:
                    group = groups[level]
                    nid = hb.record.node_id
                    peer = group.peers.get(nid)
                    # No-change match: identity when the payload travelled
                    # by reference (simulator), content otherwise (wire) —
                    # never identity alone, which a serialization
                    # round-trip silently breaks.
                    if peer is not None and (
                        hb is peer.last_hb
                        or (peer.last_hb is not None and hb.same_as(peer.last_hb))
                    ):
                        entry = peer.dir_entry
                        if entry is None or not entry.live:
                            entry = entry_view(nid)
                            peer.dir_entry = entry
                        if entry is not None:
                            now = runtime.now
                            if entry.relayed_by is None:
                                entry.last_refresh = now
                            else:
                                refresh(nid, now, relayed_by=None)
                            obs = runtime.obs
                            obs.hb_rx.inc()
                            obs.hb_rx_fast.inc()
                            if tombstones:
                                tombstones.pop(nid, None)
                            peer.last_heard = now
                            if observe_hb is not None:
                                observe_hb(level, nid, now, peer.incarnation)
                            if hb.is_leader:
                                vouch(nid, now)
                                if (
                                    group.last_dead_leader is not None
                                    and group.last_dead_leader != nid
                                ):
                                    directory.reattribute(
                                        group.last_dead_leader, nid
                                    )
                                    group.last_dead_leader = None
                            elif relay_level:
                                vouch(nid, now)
                            seq = hb.update_seq
                            if seq > 0:
                                last = stream.get(nid)
                                if last is None or last < seq:
                                    maybe_sync(nid)
                            if group.i_am_leader or not group.leader_visible():
                                evaluate(level)
                            return
                on_heartbeat(hb, level)
            elif kind == "update":
                ctx.informer.on_update(packet.payload, level)

        return handler

    # ------------------------------------------------------------------
    # Multicast: heartbeats
    # ------------------------------------------------------------------
    def on_heartbeat(self, hb: "Heartbeat", level: int) -> None:
        ctx = self.ctx
        group = ctx.groups[level]
        runtime = ctx.runtime
        now = runtime.now
        obs = runtime.obs
        obs.hb_rx.inc()
        if ctx.node.use_fast_path:
            nid = hb.record.node_id
            peer = group.peers.get(nid)
            directory = ctx.directory
            # Same no-change match as the inlined channel handler:
            # identity first (by-reference payloads), content fallback
            # (payloads rebuilt from bytes by a real transport).
            if peer is not None and (
                hb is peer.last_hb
                or (peer.last_hb is not None and hb.same_as(peer.last_hb))
            ):
                # The directory's main table spans the whole cluster, so
                # its per-heartbeat probe is the one cache-hostile lookup
                # left on this path at 10k nodes: use the entry reference
                # cached on the peer, re-probing only after a removal.
                entry = peer.dir_entry
                if entry is None or not entry.live:
                    entry = directory.entry_view(nid)
                    peer.dir_entry = entry
            else:
                entry = None
            if entry is not None:
                if entry.relayed_by is None:
                    entry.last_refresh = now
                else:
                    # Heard directly: reclassify via the full refresh so
                    # the relayer-group and deadline-heap bookkeeping run.
                    directory.refresh(nid, now, relayed_by=None)
                # No-change fast path: the sender interned this payload, so
                # nothing about the peer moved since its last heartbeat.
                # Freshness is bumped (peer + directory + vouch), the
                # failover/lost-update checks still run (they depend on
                # *our* state, not the sender's), and record absorption is
                # skipped entirely.  Election re-evaluation is skipped only
                # while a leader is in sight and we are not one ourselves —
                # the one configuration where an unchanged heartbeat
                # provably cannot move the election clock (the leaderless
                # countdown and the two-leaders rule both need a state
                # change or our own flag, and those route through the slow
                # path or the status tick).
                obs.hb_rx_fast.inc()
                if ctx.tombstones:
                    ctx.tombstones.pop(nid, None)
                peer.last_heard = now
                det = ctx.detector
                if not det.passive:
                    det.observe_heartbeat(level, nid, now, peer.incarnation)
                if hb.is_leader:
                    directory.vouch(nid, now)
                    if (
                        group.last_dead_leader is not None
                        and group.last_dead_leader != nid
                    ):
                        directory.reattribute(group.last_dead_leader, nid)
                        group.last_dead_leader = None
                elif level >= 1:
                    directory.vouch(nid, now)
                if ctx.updates.behind(nid, level, hb.update_seq):
                    ctx.maybe_sync(nid)
                if group.i_am_leader or not group.leader_visible():
                    ctx.contender.evaluate(level)
                return
        was_known = hb.node_id in group.peers
        # Hearing a node directly is proof of life: clear any certificate.
        ctx.tombstones.pop(hb.node_id, None)
        peer_is_new = group.note_heartbeat(hb, now)
        det = ctx.detector
        if not det.passive:
            det.observe_heartbeat(level, hb.node_id, now, hb.record.incarnation)
        newly_in_directory = hb.node_id not in ctx.directory
        ctx.directory.upsert(hb.record, now)
        ctx.directory.refresh(hb.node_id, now, relayed_by=None)
        if hb.is_leader or level >= 1:
            # An alive relay point keeps everything it relayed alive: the
            # flag-flying leader of this group, or any participant of a
            # level >= 1 channel (who is by construction the representative
            # of some lower-level subtree).
            ctx.directory.vouch(hb.node_id, now)
        if hb.is_leader:
            if group.last_dead_leader is not None and group.last_dead_leader != hb.node_id:
                # Failover completed: the new leader inherits the dead
                # leader's vouched entries.
                ctx.directory.reattribute(group.last_dead_leader, hb.node_id)
                group.last_dead_leader = None
        if newly_in_directory:
            ctx.emit_member_up(hb.node_id)
        if peer_is_new and ctx.is_relay_point():
            # "A group leader will also inform all other groups when a new
            # node joins" — any relay point announces a newly-heard direct
            # peer to the rest of its channels; covers first joins,
            # restarts (higher incarnation counts as new), and peers
            # returning after a healed partition.
            ctx.informer.originate(
                [UpdateOp("add", hb.node_id, hb.record.incarnation, hb.record)]
            )
        if not was_known:
            # Bootstrap triggers: a group leader pulls a newcomer's state;
            # a newcomer pulls the leader's state when it spots the flag.
            if group.i_am_leader or hb.is_leader:
                ctx.maybe_sync(hb.node_id)
        elif ctx.updates.behind(hb.node_id, level, hb.update_seq):
            # The heartbeat advertises updates we never received (the lost
            # packet was the sender's last): poll for a directory sync.
            # The stream is marked caught-up only when the response lands.
            ctx.maybe_sync(hb.node_id)
        # React immediately to leader conflicts/appearance.
        ctx.contender.evaluate(level)

    # ------------------------------------------------------------------
    # Unicast: the sync protocol's wire face
    # ------------------------------------------------------------------
    def on_unicast(self, packet: "Packet") -> None:
        ctx = self.ctx
        if not ctx.node.running:
            return
        if packet.kind == "sync_req":
            ctx.informer.merge_snapshot(packet.payload["snapshot"], via=packet.src)
            snapshot = [r for r in ctx.directory.records() if r.node_id != packet.src]
            seqs = {level: ctx.updates.current_seq(level) for level in ctx.groups}
            ctx.runtime.send(
                packet.src,
                kind="sync_resp",
                payload={"snapshot": snapshot, "seqs": seqs},
                size=ctx.config.message_size(max(1, len(snapshot))),
                port=HMEMBER_PORT,
            )
        elif packet.kind == "sync_resp":
            ctx.runtime.obs.sync_resps.inc()
            ctx.pending_syncs.discard(packet.src)
            ctx.informer.merge_snapshot(
                packet.payload["snapshot"], via=packet.src, prune_relayer=True
            )
            # The snapshot subsumes every update the sender ever sent: mark
            # its streams caught-up (only now — a lost response must leave
            # us "behind" so the next heartbeat retriggers the poll).
            for level, seq in packet.payload.get("seqs", {}).items():
                if level in ctx.groups:
                    ctx.updates.note_synced(packet.src, level, seq)
        else:
            # Probe traffic (active detectors) rides the same unicast port
            # so the scheme needs no extra bind; zero traffic otherwise.
            handle_probe_packet(
                ctx.runtime, ctx.detector, packet, HMEMBER_PORT, ctx.config.header_size
            )
