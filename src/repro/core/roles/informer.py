"""Informer role: update dissemination and the sync (bootstrap) server.

The informer owns everything second-hand: originating and relaying
update multicasts (Fig. 5 propagation rules), applying received ops with
their incarnation guards, the rate-limited bidirectional sync exchange,
snapshot merging with vouch-anchored attribution, and the tombstone
(death certificate) machinery that keeps removals from being undone by
stale news.

Observability: ``updates_tx``, ``updates_rx``, ``update_ops``,
``piggyback_recovered``, ``syncs_sent`` and ``sync_snapshot`` increment
here and nowhere else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.roles.receiver import HMEMBER_PORT
from repro.core.updates import UpdateOp

if TYPE_CHECKING:
    from repro.cluster.directory import NodeRecord
    from repro.core.roles.context import NodeContext
    from repro.core.updates import UpdateMessage

__all__ = ["Informer"]


class Informer:
    """Spreads membership news and serves directory bootstraps."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx
        # Sync rate limiter: peer -> time of last request sent.
        self.last_sync: Dict[str, float] = {}

    def reset(self) -> None:
        self.last_sync.clear()

    # ------------------------------------------------------------------
    # Update origination and relay
    # ------------------------------------------------------------------
    def originate(self, ops: Sequence[UpdateOp]) -> None:
        """Multicast a locally-originated update on every channel we join."""
        if not ops:
            return
        ctx = self.ctx
        uid = ctx.updates.new_uid()
        for level in ctx.levels:
            self.send_update(level, ops, uid=uid, origin=ctx.node_id)

    def send_update(
        self,
        level: int,
        ops: Sequence[UpdateOp],
        uid: Optional[int],
        origin: Optional[str],
    ) -> None:
        ctx = self.ctx
        if level not in ctx.groups:
            return
        msg = ctx.updates.build(level, ops, uid=uid, origin=origin)
        ctx.runtime.obs.updates_tx.inc()
        ctx.runtime.publish(
            ctx.config.channel(level),
            ttl=ctx.config.ttl_for_level(level),
            kind="update",
            payload=msg,
            size=msg.size(ctx.config.member_size, ctx.config.header_size),
        )

    def on_update(self, msg: "UpdateMessage", level: int) -> None:
        ctx = self.ctx
        obs = ctx.runtime.obs
        obs.updates_rx.inc()
        outcome = ctx.updates.receive(msg)
        if outcome.recovered:
            obs.piggyback_recovered.add(outcome.recovered)
        # Every newly-applied op group is relayed — including groups
        # recovered from the piggyback, otherwise a relay point that
        # recovered a lost update would starve its whole subtree of it.
        # Each group carries its own origin: a piggyback-recovered group
        # may originate elsewhere than the primary update, and the relay
        # must re-advertise the true (origin, uid) identity or downstream
        # dedup would see the same update under two keys.
        applied = 0
        for uid, origin, ops in outcome.apply:
            applied += len(ops)
            self.apply_ops(ops, via=msg.sender)
            self.relay_ops(uid, origin, ops, from_level=level)
        if applied:
            obs.update_ops.add(applied)
        if outcome.need_sync:
            ctx.maybe_sync(msg.sender)

    def relay_ops(
        self,
        uid: int,
        origin: str,
        ops: Sequence[UpdateOp],
        from_level: int,
    ) -> None:
        """Forward an update per the propagation rules (Fig. 5).

        Sent on every other participating channel; echoed on the incoming
        channel too when we lead it (overlapped groups: members the sender
        could not reach still hear the leader's copy).
        """
        ctx = self.ctx
        for level in ctx.levels:
            group = ctx.groups[level]
            if level == from_level and not group.i_am_leader:
                continue
            self.send_update(level, ops, uid=uid, origin=origin)

    def apply_ops(self, ops: Sequence[UpdateOp], via: str) -> None:
        ctx = self.ctx
        now = ctx.now
        my_id = ctx.node_id
        # One vouch-anchor memo per op batch: anchors depend only on group
        # / leader state, which "add" absorption never touches.  Any other
        # op kind may mutate it (drop_peer, become_leader, refutations), so
        # the memo is discarded after each non-add op.
        vouch_memo: Dict[str, str] = {}
        # Formation applies one "add" per node pair plus relayed
        # re-announcements — n^2-scale traffic whose two dominant cases
        # (brand-new record; identical re-announcement with an unchanged
        # voucher) are inlined below with batch-hoisted lookups, leaving
        # absorb_record the general path.  The hoisted aliases are all
        # stable objects mutated in place, never rebound.
        directory = ctx.directory
        probe = directory._entries.get
        tombstones = ctx.tombstones
        runtime = ctx.runtime
        member_up = runtime.obs.member_up
        for op in ops:
            if op.node_id == my_id:
                vouch_memo = {}
                if op.op == "remove" and op.incarnation >= ctx.node.incarnation:
                    # Rumor of our own death: refute by bumping our
                    # incarnation (SWIM-style) — the higher incarnation
                    # beats the rumor and any death certificates guarding
                    # the old one.  The facade also moves the runtime
                    # epoch, invalidating one-shots from the old life.
                    ctx.node.refute_death()
                    record = ctx.node.self_record()
                    ctx.directory.upsert(record, now)
                    self.originate(
                        [UpdateOp("add", ctx.node_id, record.incarnation, record)]
                    )
                continue  # we are the authority on ourselves
            if op.op == "add":
                rec = op.record
                if rec is None:
                    continue
                if not tombstones:
                    entry = probe(rec.node_id)
                    if entry is None:
                        # absorb_record's insert branch, inlined (same
                        # memoised anchor, same insert, same emits).
                        relayed_by = vouch_memo.get(via)
                        if relayed_by is None:
                            relayed_by = vouch_memo[via] = self.vouch_anchor(via)
                        directory.insert_new(rec, now, relayed_by=relayed_by)
                        member_up.inc()
                        runtime.emit_view_event("member_up", rec.node_id)
                        continue
                    stored = entry.record
                    if stored is rec or stored == rec:
                        # Identical stored payload — by identity when the
                        # record travelled by reference inside the
                        # simulator, by content after a wire round-trip
                        # (equal content implies equal incarnation, so the
                        # freshness guard holds either way).  With a
                        # direct entry or an unchanged voucher this is
                        # absorb_record's bare-timestamp-bump case
                        # (takeover analysis provably keeps ``relayed_by``
                        # when it equals ``via``; direct knowledge always
                        # outranks).
                        rb = entry.relayed_by
                        if rb is None or rb == via:
                            entry.last_refresh = now
                            continue
                self.absorb_record(rec, via, now, vouch_memo)
            elif op.op == "leave":
                vouch_memo = {}
                # Graceful departure: drop immediately, heartbeats heard a
                # moment ago notwithstanding (only the node itself
                # originates its leave, so there is no rumor to distrust).
                existing = ctx.directory.get(op.node_id)
                if existing is None or existing.incarnation > op.incarnation:
                    continue
                for level in ctx.levels:
                    group = ctx.groups.get(level)
                    if group is None:
                        continue  # left during this loop (leader takeover)
                    peer = group.peers.get(op.node_id)
                    if peer is not None and peer.is_leader:
                        # Same failover bookkeeping as a detected leader
                        # death: the backup (or the next elected leader)
                        # inherits the vouched entries.
                        if peer.backup == ctx.node_id and not group.i_am_leader:
                            ctx.directory.reattribute(op.node_id, ctx.node_id)
                            group.drop_peer(op.node_id)
                            ctx.contender.become_leader(level)
                            continue
                        if peer.backup is not None and peer.backup in group.peers:
                            ctx.directory.reattribute(op.node_id, peer.backup)
                        else:
                            group.last_dead_leader = op.node_id
                    group.drop_peer(op.node_id)
                ctx.directory.remove(op.node_id)
                self.bury(op.node_id, op.incarnation)
                ctx.updates.forget_sender(op.node_id)
                ctx.emit_member_down(op.node_id, reason="leave")
            elif op.op == "remove":
                vouch_memo = {}
                heard = ctx.heard_level(op.node_id)
                if heard is not None:
                    # We hear this node ourselves; our own failure detector
                    # outranks second-hand news.  Leaders refute the rumor
                    # so distant nodes that removed it re-add it quickly.
                    record = ctx.directory.get(op.node_id)
                    if record is not None and ctx.groups[heard].i_am_leader:
                        self.originate(
                            [UpdateOp("add", op.node_id, record.incarnation, record)]
                        )
                    continue
                existing = ctx.directory.get(op.node_id)
                if existing is None or existing.incarnation > op.incarnation:
                    continue
                ctx.directory.remove(op.node_id)
                self.bury(op.node_id, op.incarnation)
                ctx.emit_member_down(op.node_id, reason="update")

    # ------------------------------------------------------------------
    # Sync (bootstrap) protocol, client side
    # ------------------------------------------------------------------
    def maybe_sync(self, peer: str) -> bool:
        """Bidirectional directory exchange with ``peer``, rate-limited.

        Returns True when a sync request was actually sent.  The peer
        stays in ``pending_syncs`` (retried each status tick) until its
        response arrives, so a lost request or response is not fatal.
        """
        ctx = self.ctx
        if not ctx.node.running:
            return False
        now = ctx.now
        ctx.pending_syncs.add(peer)
        last = self.last_sync.get(peer)
        if last is not None and now - last < ctx.config.min_sync_interval:
            return False
        self.last_sync[peer] = now
        snapshot = [r for r in ctx.directory.records() if r.node_id != peer]
        obs = ctx.runtime.obs
        obs.syncs_sent.inc()
        obs.sync_snapshot.observe(len(snapshot))
        ctx.runtime.send(
            peer,
            kind="sync_req",
            payload={"snapshot": snapshot},
            size=ctx.config.message_size(max(1, len(snapshot))),
            port=HMEMBER_PORT,
        )
        return True

    def merge_snapshot(
        self,
        snapshot: Sequence["NodeRecord"],
        via: str,
        prune_relayer: bool = False,
    ) -> None:
        """Merge a full-directory snapshot received from ``via``.

        Additive only: removals travel as updates or timeouts, never as
        absence from a snapshot (a snapshot may be older than a removal we
        already applied).  Newly-learned entries are re-announced as
        add-updates when this node is a relay point, so bootstrap payloads
        reach the rest of the tree.
        """
        ctx = self.ctx
        now = ctx.now
        added: List["NodeRecord"] = []
        my_id = ctx.node_id
        # Absorbing "add"s never touches group/leader state, so one vouch
        # memo is valid across the whole snapshot.
        vouch_memo: Dict[str, str] = {}
        for record in snapshot:
            if record.node_id == my_id:
                continue
            if self.absorb_record(record, via, now, vouch_memo):
                added.append(record)
        if prune_relayer:
            # A full snapshot from our voucher is authoritative about what
            # it still vouches for: drop entries it no longer lists (heals
            # a missed remove-update that was the sender's last message).
            listed = {r.node_id for r in snapshot}
            for nid in ctx.directory.relayed_entries(via):
                if nid not in listed and ctx.heard_level(nid) is None:
                    rec = ctx.directory.get(nid)
                    ctx.directory.remove(nid)
                    if rec is not None:
                        self.bury(nid, rec.incarnation)
                    ctx.emit_member_down(nid, reason="sync_prune")
        if ctx.is_relay_point():
            if (
                now < ctx.bootstrap_announce_until
                and now - ctx.last_full_announce >= ctx.config.min_sync_interval
            ):
                # Fresh leadership: propagate the whole bootstrap result so
                # members recover entries they dropped during the failover
                # (their removals were collateral, not visible to us).
                # Rate-limited: one flood per sync interval is enough and
                # keeps formation-time traffic linear.
                ctx.last_full_announce = now
                announce = [
                    r
                    for r in snapshot
                    if r.node_id != ctx.node_id and r.node_id in ctx.directory
                ]
            else:
                announce = added
            if announce:
                self.originate(
                    [UpdateOp("add", r.node_id, r.incarnation, r) for r in announce]
                )

    # ------------------------------------------------------------------
    # Second-hand record absorption and death certificates
    # ------------------------------------------------------------------
    def vouch_anchor(self, via: str) -> str:
        """Who should vouch for second-hand information arriving from ``via``.

        Attribution decides whose death takes an entry down with it, so it
        must name the node that will actually keep the entry fresh:

        * ``via`` itself when we hear it on a channel of level >= 1 (any
          such participant is the leader of a lower group — exactly the
          subtree-representative relationship) or when it flies the leader
          flag on a shared channel;
        * ourselves when we are a leader (we are the relay point);
        * otherwise our level-0 group leader, whose heartbeats vouch for
          everything it relays to us.
        """
        ctx = self.ctx
        for level in ctx.levels:
            peer = ctx.groups[level].peers.get(via)
            if peer is not None and (level >= 1 or peer.is_leader):
                return via
        if any(g.i_am_leader for g in ctx.groups.values()):
            return ctx.node_id
        if ctx.groups:
            lowest = ctx.groups[ctx.levels[0]]
            leader = lowest.current_leader(ctx.node_id)
            if leader is not None:
                return leader
        return via

    def tombstoned(self, node_id: str, incarnation: int, now: float) -> bool:
        """True if ``(node_id, incarnation)`` is covered by a death certificate."""
        ctx = self.ctx
        entry = ctx.tombstones.get(node_id)
        if entry is None:
            return False
        dead_inc, when = entry
        if now - when > ctx.config.tombstone_quarantine:
            del ctx.tombstones[node_id]
            return False
        return incarnation <= dead_inc

    def bury(self, node_id: str, incarnation: int) -> None:
        """Record a death certificate for a node we just removed."""
        ctx = self.ctx
        cur = ctx.tombstones.get(node_id)
        if cur is None or cur[0] <= incarnation:
            ctx.tombstones[node_id] = (incarnation, ctx.now)

    def absorb_record(
        self,
        record: "NodeRecord",
        via: str,
        now: float,
        _vouch_memo: Optional[Dict[str, str]] = None,
    ) -> bool:
        """Merge one second-hand record; returns True if it was new.

        Attribution rules: direct entries stay direct; existing relayed
        entries keep their relayer unless ``via`` is itself the
        authoritative voucher (a subtree leader we hear directly), which
        re-homes the entry — that is how a failed-over leader's successor
        takes ownership of the subtree in everyone's books.

        ``_vouch_memo`` is an optional per-batch cache of
        :meth:`vouch_anchor` results, valid only while group/leader state
        is untouched (the caller clears it across mutating ops).
        """
        ctx = self.ctx
        if ctx.tombstones and self.tombstoned(
            record.node_id, record.incarnation, now
        ):
            inc, when = ctx.tombstones[record.node_id]
            # Active anti-entropy: whoever still advertises this dead
            # incarnation is stale — push the removal back out instead of
            # ever importing the staleness.  If the node is actually alive
            # (e.g. a healed partition), the remove rumor reaches it and it
            # refutes by bumping its incarnation, which beats every
            # certificate.  Rate-limited to avoid refutation storms.
            last = ctx.tombstone_refutes.get(record.node_id)
            if last is None or now - last >= ctx.config.min_sync_interval:
                ctx.tombstone_refutes[record.node_id] = now
                self.originate([UpdateOp("remove", record.node_id, inc)])
            # Backstop for quiet corners: re-pull from the source once the
            # quarantine ends (by then the cluster has converged on either
            # the removal or the higher incarnation).
            remaining = ctx.config.tombstone_quarantine - (now - when)
            ctx.runtime.call_once(
                max(remaining, 0.0) + ctx.config.heartbeat_period,
                ctx.maybe_sync,
                via,
            )
            return False
        memo = _vouch_memo
        entry = ctx.directory.entry_view(record.node_id)
        if entry is None:
            if memo is None:
                relayed_by: Optional[str] = self.vouch_anchor(via)
            else:
                relayed_by = memo.get(via)
                if relayed_by is None:
                    relayed_by = memo[via] = self.vouch_anchor(via)
            ctx.directory.insert_new(record, now, relayed_by=relayed_by)
            ctx.emit_member_up(record.node_id)
            return True
        existing = entry.record
        if existing.incarnation > record.incarnation:
            return False
        current = entry.relayed_by
        if current is None:
            relayed_by = None  # direct knowledge outranks relays
        else:
            if memo is None:
                anchor_via = self.vouch_anchor(via)
            else:
                anchor_via = memo.get(via)
                if anchor_via is None:
                    anchor_via = memo[via] = self.vouch_anchor(via)
            takeover = False
            if anchor_via == via:
                if current == ctx.node_id:
                    takeover = True
                elif memo is None:
                    takeover = self.vouch_anchor(current) != current
                else:
                    anchor_cur = memo.get(current)
                    if anchor_cur is None:
                        anchor_cur = memo[current] = self.vouch_anchor(current)
                    takeover = anchor_cur != current
            if takeover:
                # The current relayer no longer functions as a vouching
                # relay point for us (dead, left the channel, or demoted to
                # a plain member) and an authoritative source re-announces
                # the entry: it takes over the vouching.  A *functioning*
                # voucher keeps its entries — otherwise a peer's
                # full-snapshot sync would steal attribution of other
                # subtrees and break the per-subtree failure cascade.
                relayed_by = via
            else:
                relayed_by = current
        if existing is record or existing == record:
            # Same payload as stored — identical object when records
            # travel by reference in the simulator, equal content after a
            # serialized round-trip: a pure freshness/attribution
            # refresh, skipping the upsert path — the hot case during
            # formation-time announce floods.  An unchanged relayer (the
            # overwhelmingly common sub-case) is a bare timestamp bump on
            # the entry we already hold.
            if relayed_by == current:
                entry.last_refresh = now
            else:
                ctx.directory.refresh(record.node_id, now, relayed_by=relayed_by)
            return False
        ctx.directory.upsert(record, now, relayed_by=relayed_by)
        return False
