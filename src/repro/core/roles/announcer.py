"""Announcer role: periodic heartbeats on every joined channel (Fig. 10).

The announcer owns the interned-heartbeat cache of the protocol hot-path
engine: a heartbeat is identical between state changes, so the frozen
payload is reused while its signature (self-record identity, election
flags, designated backup, update sequence number) holds.  Receivers
exploit the stable identity for the no-change fast path
(:meth:`~repro.core.roles.receiver.Receiver.on_heartbeat`).

Observability: ``hb_tx`` increments here and nowhere else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.heartbeat import Heartbeat

if TYPE_CHECKING:
    from repro.cluster.directory import NodeRecord
    from repro.core.roles.context import NodeContext

__all__ = ["Announcer"]

#: Interned-heartbeat cache entry: the signature under which the frozen
#: payload stays valid, plus the payload itself.
_CacheEntry = Tuple["NodeRecord", bool, bool, Optional[str], int, Heartbeat]


class Announcer:
    """Sends this node's presence on every channel it participates in."""

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx
        # Interned outgoing heartbeat per level: (record, is_leader,
        # suppressed, backup, update_seq) -> frozen Heartbeat instance.
        self.hb_cache: Dict[int, _CacheEntry] = {}

    def reset(self) -> None:
        self.hb_cache.clear()

    def drop_level(self, level: int) -> None:
        self.hb_cache.pop(level, None)

    def heartbeat_tick(self) -> None:
        ctx = self.ctx
        if not ctx.node.running:
            return
        for level in ctx.levels:
            self.send_heartbeat(level)

    def send_heartbeat(self, level: int) -> None:
        ctx = self.ctx
        group = ctx.groups.get(level)
        if group is None:
            return
        record = ctx.node.self_record()
        backup = group.my_backup if group.i_am_leader else None
        seq = ctx.updates.current_seq(level)
        hb: Optional[Heartbeat] = None
        if ctx.use_fast_path:
            # Interned payload: reuse the frozen instance while its
            # signature holds (see module docstring).
            cached = self.hb_cache.get(level)
            if (
                cached is not None
                and cached[0] is record
                and cached[1] == group.i_am_leader
                and cached[2] == group.suppressed
                and cached[3] == backup
                and cached[4] == seq
            ):
                hb = cached[5]
        if hb is None:
            hb = Heartbeat(
                record=record,
                level=level,
                is_leader=group.i_am_leader,
                suppressed=group.suppressed,
                backup=backup,
                update_seq=seq,
            )
            if ctx.use_fast_path:
                self.hb_cache[level] = (
                    record, group.i_am_leader, group.suppressed, backup, seq, hb,
                )
        ctx.runtime.obs.hb_tx.inc()
        ctx.runtime.publish(
            ctx.config.channel(level),
            ttl=ctx.config.ttl_for_level(level),
            kind="heartbeat",
            payload=hb,
            size=ctx.config.message_size(1),
        )
