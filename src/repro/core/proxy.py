"""The membership proxy protocol for multiple data centers (Section 3.2).

Each data center runs several **membership proxies**.  They form their own
multicast group on a channel reserved for proxies and elect a leader with
the same bully machinery as the tree protocol.  The proxy group leader:

* takes over the data center's single **external IP address** (IP
  failover) so remote data centers always talk to whoever currently leads;
* joins the local cluster membership (every proxy host also runs a normal
  :class:`~repro.core.node.HierarchicalNode`, so the leader holds the full
  local yellow pages);
* periodically unicasts **summary heartbeats** — the availability of
  services, not per-machine detail — to the other data centers' external
  addresses, splitting over multiple packets when the summary is large;
* sends an immediate **update message** to the other leaders when a local
  status change alters the summary, and relays received remote summaries
  to the local proxy group over the proxy channel;
* forwards **service invocations** for services unavailable locally
  (paper Fig. 6's six-step relay), using the remote summaries to pick a
  data center and its own consumer module to reach the remote backend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cluster.consumer import ConsumerModule
from repro.cluster.directory import Directory
from repro.core.config import HierarchicalConfig
from repro.core.election import Decision, decide
from repro.core.groups import GroupState
from repro.core.heartbeat import Heartbeat
from repro.core.node import HierarchicalNode
from repro.net.network import Network
from repro.net.packet import Packet
from repro.sim.process import Event

__all__ = ["ServiceSummary", "MembershipProxy", "ProxyConfig", "install_proxy_forwarding"]

PROXY_PORT = "proxy"
_fwd_ids = itertools.count()


@dataclass(frozen=True)
class ProxyConfig:
    """Tunables of the proxy protocol.

    ``summary_heartbeat_period`` is deliberately the same 1 Hz as the
    cluster heartbeats; ``summary_fail_timeout`` mirrors the max-loss rule.
    ``max_entries_per_packet`` implements "If the size of the membership
    summary is too big, the summary is broken into multiple heartbeat
    packets".
    """

    summary_heartbeat_period: float = 1.0
    summary_fail_timeout: float = 5.0
    max_entries_per_packet: int = 64
    entry_size: int = 48  # service name + partition bitmap, bytes
    header_size: int = 28
    forward_timeout: float = 1.0
    proxy_channel_prefix: str = "proxy"
    election_delay: float = 2.5
    heartbeat_period: float = 1.0
    fail_timeout: float = 5.0


@dataclass(frozen=True)
class ServiceSummary:
    """Availability of services in one data center: name -> partitions."""

    services: Tuple[Tuple[str, FrozenSet[int]], ...] = ()

    @classmethod
    def from_directory(cls, directory: Directory) -> "ServiceSummary":
        acc: Dict[str, set] = {}
        for record in directory.records():
            for name, parts in record.services.items():
                acc.setdefault(name, set()).update(parts)
        return cls(tuple(sorted((n, frozenset(p)) for n, p in acc.items())))

    def as_dict(self) -> Dict[str, FrozenSet[int]]:
        return dict(self.services)

    def provides(self, service: str, partition: Optional[int]) -> bool:
        for name, parts in self.services:
            if name == service and (partition is None or partition in parts):
                return True
        return False

    def __len__(self) -> int:
        return len(self.services)

    def chunks(self, max_entries: int) -> List["ServiceSummary"]:
        """Split into packet-sized summaries (at least one, possibly empty)."""
        if len(self.services) <= max_entries:
            return [self]
        return [
            ServiceSummary(self.services[i : i + max_entries])
            for i in range(0, len(self.services), max_entries)
        ]


@dataclass
class _RemoteDc:
    """What this proxy knows about one remote data center."""

    summary: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    last_heard: float = float("-inf")
    epoch: int = -1  # summary generation, resets partial multi-packet state


class MembershipProxy:
    """One membership proxy daemon.

    Parameters
    ----------
    network, host, dc:
        Placement.  ``host`` must also run ``member_node`` (the local
        cluster membership stack) — a proxy is a cluster node with extra
        duties, exactly as in the paper's deployment.
    external_addr:
        The data center's shared external address (virtual IP).
    remote_addrs:
        ``dc name -> external address`` of every other data center.
    member_node:
        The co-located hierarchical membership node (source of the local
        yellow pages).
    """

    def __init__(
        self,
        network: Network,
        host: str,
        dc: str,
        external_addr: str,
        remote_addrs: Dict[str, str],
        member_node: HierarchicalNode,
        config: Optional[ProxyConfig] = None,
    ) -> None:
        self.network = network
        self.host = host
        self.dc = dc
        self.external_addr = external_addr
        self.remote_addrs = {d: a for d, a in remote_addrs.items() if d != dc}
        self.member_node = member_node
        self.config = config if config is not None else ProxyConfig()
        self.rng = network.rng.stream(f"proxy.{host}")
        self.group = GroupState(level=0)
        self.remote: Dict[str, _RemoteDc] = {}
        self.running = False
        self._summary_epoch = 0
        self._last_summary: Optional[ServiceSummary] = None
        # forwarded-invocation bookkeeping
        self._pending_out: Dict[int, Dict[str, Any]] = {}
        self._consumer: Optional[ConsumerModule] = None
        self._timers: List[Any] = []

    # ------------------------------------------------------------------
    @property
    def channel(self) -> str:
        return f"{self.config.proxy_channel_prefix}:{self.dc}"

    @property
    def is_leader(self) -> bool:
        return self.group.i_am_leader

    def known_remote_dcs(self) -> List[str]:
        """Remote data centers with a live (unexpired) summary."""
        now = self.network.now
        return sorted(
            d
            for d, r in self.remote.items()
            if now - r.last_heard <= self.config.summary_fail_timeout
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.group = GroupState(level=0)
        self.remote.clear()
        self._pending_out.clear()
        self._last_summary = None
        self.network.subscribe(self.channel, self.host, self._on_channel)
        self.network.bind(self.host, PROXY_PORT, self._on_unicast)
        self._consumer = ConsumerModule(
            self.network,
            self.host,
            self.member_node.directory,
            request_timeout=self.config.forward_timeout,
        )
        self._consumer.start()
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self._timers = [
            self.network.sim.call_after(phase, self._tick),
        ]

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.group.i_am_leader = False
        self.group.my_backup = None
        self.network.unsubscribe(self.channel, self.host)
        self.network.transport.unbind(self.host, PROXY_PORT)
        if self._consumer is not None:
            self._consumer.stop()
        for t in self._timers:
            t.cancel()
        self._timers.clear()
        if self.network.transport.address_owner(self.external_addr) == self.host:
            self.network.transport.release_address(self.external_addr)
        for pending in self._pending_out.values():
            pending["timer"].cancel()
        self._pending_out.clear()

    # ------------------------------------------------------------------
    # Proxy-group membership and election
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.running:
            return
        now = self.network.now
        # Heartbeat on the proxy channel.
        self.network.multicast(
            self.host,
            self.channel,
            ttl=64,  # the proxy channel is scoped by subscription, DC-wide
            kind="proxy_hb",
            payload=Heartbeat(
                record=self.member_node.self_record(),
                level=0,
                is_leader=self.group.i_am_leader,
                suppressed=self.group.suppressed,
                backup=self.group.my_backup if self.group.i_am_leader else None,
            ),
            size=self.config.header_size + 64,
        )
        # Failure detection within the proxy group.
        for peer in self.group.purge_silent(now, self.config.fail_timeout):
            if peer.is_leader and peer.backup == self.host and not self.group.i_am_leader:
                self._become_leader()
        self._evaluate_election()
        if self.group.i_am_leader:
            self._leader_duties()
        self._timers = [
            self.network.sim.call_after(self.config.heartbeat_period, self._tick)
        ]

    def _evaluate_election(self) -> None:
        decision = decide(self.group, self.host, self.network.now, self.config.election_delay)
        if decision is Decision.BECOME_LEADER:
            self._become_leader()
        elif decision is Decision.STEP_DOWN:
            self._step_down()

    def _become_leader(self) -> None:
        self.group.i_am_leader = True
        self.group.suppressed = False
        self.group.leaderless_since = None
        members = self.group.member_ids()
        self.group.my_backup = (
            members[self.rng.randrange(len(members))] if members else None
        )
        # IP failover: the leader owns the external address.
        self.network.transport.bind_address(self.external_addr, self.host)
        self.network.trace.emit(
            self.network.now, "proxy_leader", node=self.host, dc=self.dc
        )

    def _step_down(self) -> None:
        self.group.i_am_leader = False
        self.group.my_backup = None
        self.group.suppressed = True
        if self.network.transport.address_owner(self.external_addr) == self.host:
            self.network.transport.release_address(self.external_addr)

    def _on_channel(self, packet: Packet) -> None:
        if not self.running:
            return
        if packet.kind == "proxy_hb":
            hb: Heartbeat = packet.payload
            self.group.note_heartbeat(hb, self.network.now)
            self._evaluate_election()
        elif packet.kind == "proxy_relay":
            # The leader relays remote summaries to the whole proxy group
            # so a failover starts from warm state.
            payload = packet.payload
            self._merge_remote_summary(
                payload["dc"], payload["epoch"], payload["entries"], payload["final"]
            )

    # ------------------------------------------------------------------
    # Leader duties: summaries out, freshness bookkeeping
    # ------------------------------------------------------------------
    def _leader_duties(self) -> None:
        summary = ServiceSummary.from_directory(self.member_node.directory)
        if self._last_summary is not None and summary != self._last_summary:
            # Status change altered the summary: immediate update message.
            self._send_summary(summary, kind="proxy_update")
        else:
            self._send_summary(summary, kind="proxy_summary")
        self._last_summary = summary

    def _send_summary(self, summary: ServiceSummary, kind: str) -> None:
        self._summary_epoch += 1
        chunks = summary.chunks(self.config.max_entries_per_packet)
        for idx, chunk in enumerate(chunks):
            payload = {
                "dc": self.dc,
                "epoch": self._summary_epoch,
                "entries": chunk.services,
                "final": idx == len(chunks) - 1,
            }
            size = self.config.header_size + self.config.entry_size * max(1, len(chunk))
            # "Each proxy leader sends these heartbeat packets sequentially
            # to the other leaders using well-known IP addresses."
            for dc, addr in sorted(self.remote_addrs.items()):
                self.network.unicast(
                    self.host, addr, kind=kind, payload=payload, size=size, port=PROXY_PORT
                )

    # ------------------------------------------------------------------
    # Unicast: summaries in, forwarding
    # ------------------------------------------------------------------
    def _on_unicast(self, packet: Packet) -> None:
        if not self.running:
            return
        if packet.kind in ("proxy_summary", "proxy_update"):
            payload = packet.payload
            self._merge_remote_summary(
                payload["dc"], payload["epoch"], payload["entries"], payload["final"]
            )
            # Relay to the local proxy group.
            self.network.multicast(
                self.host,
                self.channel,
                ttl=64,
                kind="proxy_relay",
                payload=payload,
                size=packet.size,
            )
        elif packet.kind == "fwd_req":
            self._on_fwd_req(packet)
        elif packet.kind == "fwd_remote":
            self._on_fwd_remote(packet)
        elif packet.kind == "fwd_remote_resp":
            self._on_fwd_remote_resp(packet)

    def _merge_remote_summary(
        self,
        dc: str,
        epoch: int,
        entries: Sequence[Tuple[str, FrozenSet[int]]],
        final: bool,
    ) -> None:
        state = self.remote.setdefault(dc, _RemoteDc())
        if epoch < state.epoch:
            return  # stale chunk from an older generation
        if epoch > state.epoch:
            state.epoch = epoch
            state.summary = {}
        state.summary.update({name: parts for name, parts in entries})
        if final:
            state.last_heard = self.network.now

    # ------------------------------------------------------------------
    # Service invocation forwarding (paper Fig. 6)
    # ------------------------------------------------------------------
    def _candidate_dcs(self, service: str, partition: Optional[int]) -> List[str]:
        now = self.network.now
        out = []
        for dc in sorted(self.remote):
            state = self.remote[dc]
            if now - state.last_heard > self.config.summary_fail_timeout:
                continue
            parts = state.summary.get(service)
            if parts is None:
                continue
            if partition is None or partition in parts:
                out.append(dc)
        return out

    def _on_fwd_req(self, packet: Packet) -> None:
        """Step 2: pick a remote data center and forward, or reject."""
        payload = packet.payload
        dcs = self._candidate_dcs(payload["service"], payload["partition"])
        if not dcs:
            self._reply_fwd(payload, ok=False, value=None, error="no_remote_dc", latency=0.0)
            return
        dc = dcs[self.rng.randrange(len(dcs))]
        fwd_id = next(_fwd_ids)
        timer = self.network.sim.call_after(
            self.config.forward_timeout, self._on_fwd_timeout, fwd_id
        )
        self._pending_out[fwd_id] = {"payload": payload, "timer": timer, "t0": self.network.now}
        self.network.unicast(
            self.host,
            self.remote_addrs[dc],
            kind="fwd_remote",
            payload={
                "fwd_id": fwd_id,
                "service": payload["service"],
                "partition": payload["partition"],
                "data": payload["data"],
                "reply_addr": self.external_addr,
            },
            size=256,
            port=PROXY_PORT,
        )

    def _on_fwd_remote(self, packet: Packet) -> None:
        """Steps 3-4: serve the request from the local cluster."""
        payload = packet.payload
        completion = self._consumer.invoke(
            payload["service"], payload["partition"], payload["data"]
        )

        def respond(result: Any) -> None:
            if not self.running:
                return
            self.network.unicast(
                self.host,
                payload["reply_addr"],
                kind="fwd_remote_resp",
                payload={
                    "fwd_id": payload["fwd_id"],
                    "ok": result.ok,
                    "value": result.value,
                    "error": result.error,
                    "server": result.server,
                },
                size=512,
                port=PROXY_PORT,
            )

        completion._add_waiter(respond)

    def _on_fwd_remote_resp(self, packet: Packet) -> None:
        """Steps 5-6: relay the result back to the original requester."""
        payload = packet.payload
        pending = self._pending_out.pop(payload["fwd_id"], None)
        if pending is None:
            return
        pending["timer"].cancel()
        self._reply_fwd(
            pending["payload"],
            ok=payload["ok"],
            value=payload["value"],
            error=payload["error"],
            latency=self.network.now - pending["t0"],
            server=payload.get("server"),
        )

    def _on_fwd_timeout(self, fwd_id: int) -> None:
        pending = self._pending_out.pop(fwd_id, None)
        if pending is None:
            return
        self._reply_fwd(
            pending["payload"],
            ok=False,
            value=None,
            error="remote_timeout",
            latency=self.network.now - pending["t0"],
        )

    def _reply_fwd(
        self,
        payload: Dict[str, Any],
        ok: bool,
        value: Any,
        error: Optional[str],
        latency: float,
        server: Optional[str] = None,
    ) -> None:
        self.network.unicast(
            self.host,
            payload["reply_to"],
            kind="fwd_resp",
            payload={
                "req_id": payload["req_id"],
                "ok": ok,
                "value": value,
                "error": error,
                "server": server,
            },
            size=512,
            port=payload["reply_port"],
        )


class _ForwardingClient:
    """Client-side glue wiring a consumer's unavailable path to the proxy."""

    PORT = "proxy-client"

    def __init__(self, consumer: ConsumerModule, proxy_addr: str, timeout: float) -> None:
        self.consumer = consumer
        self.network = consumer.network
        self.host = consumer.host
        self.proxy_addr = proxy_addr
        self.timeout = timeout
        self._pending: Dict[int, Dict[str, Any]] = {}
        self.network.bind(self.host, self.PORT, self._on_packet)
        consumer.unavailable_handler = self._forward

    def _forward(
        self, service: str, partition: Optional[int], data: Any, completion: Event
    ) -> bool:
        req_id = next(_fwd_ids)
        timer = self.network.sim.call_after(self.timeout, self._on_timeout, req_id)
        self._pending[req_id] = {
            "completion": completion,
            "timer": timer,
            "t0": self.network.now,
        }
        self.network.unicast(
            self.host,
            self.proxy_addr,
            kind="fwd_req",
            payload={
                "req_id": req_id,
                "service": service,
                "partition": partition,
                "data": data,
                "reply_to": self.host,
                "reply_port": self.PORT,
            },
            size=256,
            port=PROXY_PORT,
        )
        return True

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind != "fwd_resp":
            return
        from repro.cluster.consumer import InvocationResult

        payload = packet.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        pending["timer"].cancel()
        pending["completion"].succeed(
            InvocationResult(
                ok=payload["ok"],
                value=payload["value"],
                error=payload["error"],
                latency=self.network.now - pending["t0"],
                server=payload["server"],
            )
        )

    def _on_timeout(self, req_id: int) -> None:
        from repro.cluster.consumer import InvocationResult

        pending = self._pending.pop(req_id, None)
        if pending is None:
            return
        pending["completion"].succeed(
            InvocationResult(
                ok=False,
                value=None,
                error="proxy_timeout",
                latency=self.network.now - pending["t0"],
                server=None,
            )
        )


def install_proxy_forwarding(
    consumer: ConsumerModule, proxy_addr: str, timeout: float = 2.0
) -> _ForwardingClient:
    """Route a consumer's locally-unavailable invocations through a proxy.

    This is paper Fig. 6 step 1: "a node cannot find a desired service in
    its local service cluster and forwards the request to one of the local
    proxies" — here always the proxy-group leader via the external address.
    """
    return _ForwardingClient(consumer, proxy_addr, timeout)
