"""The membership service library API (paper Section 5, Figs. 8 and 9).

``MService`` is the provider-side object: constructed from a configuration
file (Fig. 7 format), it runs the membership daemon, publishes services and
key-value pairs.  ``MClient`` is the consumer-side handle: it attaches to
the daemon's yellow page through the shared-memory key and answers
``lookup_service`` queries with regex service/partition matching.

The C++ API used a SysV shared-memory segment between the daemon process
and client processes on the same machine; the simulation equivalent is a
per-``(host, shm_key)`` registry on the :class:`~repro.net.network.Network`
that MClient reads directly — same-machine-only access is enforced just
like real shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.directory import Directory
from repro.cluster.machine import MachineInfo
from repro.cluster.service import ServiceSpec
from repro.core.config import HierarchicalConfig, parse_config_text
from repro.core.node import HierarchicalNode
from repro.net.network import Network

__all__ = ["MService", "MClient", "Machine", "MachineList"]


@dataclass(frozen=True)
class Machine:
    """One entry of a lookup result: attribute/value pairs for a machine."""

    node_id: str
    attrs: Dict[str, str]
    partitions: Tuple[int, ...]

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(key, default)


MachineList = List[Machine]


def _shm_registry(network: Network) -> Dict[Tuple[str, int], Directory]:
    registry = getattr(network, "_shm_registry", None)
    if registry is None:
        registry = {}
        network._shm_registry = registry
    return registry


class MService:
    """Provider-side membership service handle (paper Fig. 8).

    Parameters
    ----------
    network, host:
        Where the daemon runs.
    configuration:
        Configuration-file text in the Fig. 7 format; ``None`` uses
        defaults (which may later be changed through :meth:`control`).
    machine:
        Hardware description published in heartbeats.
    """

    #: commands accepted by :meth:`control`
    CONTROL_COMMANDS = (
        "heartbeat_period",
        "max_loss",
        "max_ttl",
        # failure-detection strategy selection and knobs
        "detector",
        "probe_period",
        "probe_timeout",
        "indirect_probes",
        "suspicion_timeout",
        "phi_threshold",
        "phi_window",
    )

    def __init__(
        self,
        network: Network,
        host: str,
        configuration: Optional[str] = None,
        machine: Optional[MachineInfo] = None,
    ) -> None:
        self.network = network
        self.host = host
        if configuration is not None:
            config, services = parse_config_text(configuration)
        else:
            config, services = HierarchicalConfig(), []
        self.node = HierarchicalNode(
            network, host, config=config, services=services, machine=machine
        )
        self._running = False

    # ------------------------------------------------------------------
    @property
    def config(self) -> HierarchicalConfig:
        return self.node.config

    def control(self, cmd: str, arg: Any) -> None:
        """Adjust a runtime parameter (the paper's ``control`` call).

        Config dataclasses are frozen, so the node adopts a replacement
        through ``apply_config`` — which also rebuilds the failure
        detector (switching strategies mid-run is supported) and keeps
        the role context's config reference in lockstep.
        """
        if cmd not in self.CONTROL_COMMANDS:
            raise ValueError(f"unknown control command {cmd!r}")
        if cmd == "detector":
            from repro.detect import DETECTORS

            arg = str(arg).strip().lower()
            if arg not in DETECTORS:
                raise ValueError(
                    f"unknown detector {arg!r}; pick one of {sorted(DETECTORS)}"
                )
        from dataclasses import replace

        self.node.apply_config(replace(self.node.config, **{cmd: arg}))

    def run(self) -> None:
        """Start the daemon threads (announcer/receiver/tracker/...)."""
        if self._running:
            return
        self.node.start()
        _shm_registry(self.network)[(self.host, self.config.shm_key)] = self.node.directory
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        self.node.stop()
        _shm_registry(self.network).pop((self.host, self.config.shm_key), None)
        self._running = False

    def leave(self) -> None:
        """Graceful shutdown: announce departure, then stop the daemon."""
        if not self._running:
            return
        self.node.leave()
        _shm_registry(self.network).pop((self.host, self.config.shm_key), None)
        self._running = False

    # ------------------------------------------------------------------
    def register_service(self, name: str, partition: str) -> None:
        """Publish a service and its partition list, e.g. ``("Retriever", "1-3")``."""
        self.node.register_service(ServiceSpec.make(name, partition))

    def update_value(self, key: str, value: str) -> None:
        """Publish a key-value pair along with the membership information."""
        self.node.update_value(key, str(value))

    def delete_value(self, key: str) -> None:
        self.node.delete_value(key)


class MClient:
    """Consumer-side yellow-page handle (paper Fig. 9).

    Attaches to the directory of the daemon running on ``host`` through
    the shared-memory key.  Raises ``KeyError`` if no daemon on this host
    exposes that key — the same failure as a missing SysV segment.
    """

    def __init__(self, network: Network, host: str, shm_key: int) -> None:
        registry = _shm_registry(network)
        if (host, shm_key) not in registry:
            raise KeyError(f"no membership daemon with shm_key={shm_key} on {host}")
        self._directory = registry[(host, shm_key)]

    def lookup_service(
        self,
        service: str,
        partition: Optional[str] = None,
    ) -> MachineList:
        """Find machines providing ``service`` on ``partition``.

        Both arguments accept regular expressions (the partition also
        accepts ``"1-3,5"`` range syntax).  Returns the matched machines
        with their attribute lists, sorted by node id.
        """
        records = self._directory.lookup_service(service, partition)
        out: MachineList = []
        for rec in records:
            parts: set[int] = set()
            for name, p in rec.services.items():
                parts.update(p)
            out.append(
                Machine(node_id=rec.node_id, attrs=dict(rec.attrs), partitions=tuple(sorted(parts)))
            )
        return out

    def members(self) -> List[str]:
        """All currently-known nodes (convenience beyond the paper API)."""
        return list(self._directory.members())
