"""Per-channel group state.

A node participating in a channel keeps a :class:`GroupState`: the peers it
currently hears there (with their election flags and freshness) and its own
election posture on that channel.  TTL scoping means two nodes subscribed
to the same channel may see different peer sets — this per-node view is
exactly what makes the protocol correct on the overlapping topologies of
Fig. 4, where *group* is a per-observer notion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.core.heartbeat import Heartbeat

if TYPE_CHECKING:
    from repro.cluster.directory import _Entry

__all__ = ["PeerState", "GroupState"]


@dataclass(slots=True)
class PeerState:
    """What this node knows about one peer on one channel."""

    node_id: str
    last_heard: float
    is_leader: bool = False
    suppressed: bool = False
    backup: Optional[str] = None
    incarnation: int = 0
    #: the last heartbeat payload heard from this peer.  Senders intern
    #: unchanged heartbeats, so ``hb is last_hb`` identifies a no-change
    #: heartbeat in O(1) — the receive fast path's precondition.
    last_hb: Optional[Heartbeat] = None
    #: cached reference to this peer's entry in the owner's directory.
    #: The directory's main table spans the whole cluster, so at 10k
    #: nodes the per-heartbeat freshness probe is a random walk through
    #: megabytes of hash table; the cache turns it into one object
    #: touch.  Valid only while ``dir_entry.live`` — re-probe otherwise.
    dir_entry: "Optional[_Entry]" = None


@dataclass(slots=True)
class GroupState:
    """One node's view of one membership channel."""

    level: int
    peers: Dict[str, PeerState] = field(default_factory=dict)
    i_am_leader: bool = False
    suppressed: bool = False
    #: my designated backup (only meaningful while leader)
    my_backup: Optional[str] = None
    #: when we first observed "no leader visible" (election clock)
    leaderless_since: Optional[float] = None
    #: a purged leader whose vouched entries await re-attribution to the
    #: next leader that appears on this channel
    last_dead_leader: Optional[str] = None
    #: ids of peers currently flying the leader flag, maintained
    #: incrementally so election checks stop rescanning the peer table
    _leader_ids: Set[str] = field(default_factory=set, repr=False)
    _leaders_sorted: Optional[List[str]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Updates from received heartbeats
    # ------------------------------------------------------------------
    def note_heartbeat(self, hb: Heartbeat, now: float) -> bool:
        """Record a peer heartbeat; returns True if the peer is new."""
        peer = self.peers.get(hb.node_id)
        is_new = peer is None or peer.incarnation < hb.record.incarnation
        if peer is None:
            peer = PeerState(hb.node_id, now)
            self.peers[hb.node_id] = peer
        peer.last_heard = now
        if peer.is_leader != hb.is_leader:
            peer.is_leader = hb.is_leader
            if hb.is_leader:
                self._leader_ids.add(hb.node_id)
            else:
                self._leader_ids.discard(hb.node_id)
            self._leaders_sorted = None
        elif hb.is_leader:
            self._leader_ids.add(hb.node_id)  # heals a first-sighting miss
        peer.suppressed = hb.suppressed
        peer.backup = hb.backup
        peer.incarnation = hb.record.incarnation
        peer.last_hb = hb
        return is_new

    def drop_peer(self, node_id: str) -> Optional[PeerState]:
        peer = self.peers.pop(node_id, None)
        if peer is not None and node_id in self._leader_ids:
            self._leader_ids.discard(node_id)
            self._leaders_sorted = None
        return peer

    def purge_silent(self, now: float, timeout: float) -> List[PeerState]:
        """Remove and return peers silent for more than ``timeout``."""
        dead = [p for p in self.peers.values() if now - p.last_heard > timeout]
        self.purge_peers(dead)
        return dead

    def purge_peers(self, dead: List[PeerState]) -> None:
        """Remove an externally-judged dead set (the detector's verdict).

        Split out of :meth:`purge_silent` so the failure-detection
        strategy owns the *judgement* while the group keeps the
        bookkeeping (leader-set invalidation) in one place.
        """
        for p in dead:
            del self.peers[p.node_id]
            if p.node_id in self._leader_ids:
                self._leader_ids.discard(p.node_id)
                self._leaders_sorted = None

    # ------------------------------------------------------------------
    # Election views
    # ------------------------------------------------------------------
    def leader_visible(self) -> bool:
        """O(1): is any peer currently flying the leader flag?"""
        return bool(self._leader_ids)

    def visible_leaders(self) -> List[str]:
        """Peers currently flying the leader flag, sorted by id.

        Served from an incrementally-maintained set (invalidated only on
        flag flips and peer departures), so per-heartbeat election checks
        cost O(1) instead of a peer-table scan.
        """
        cached = self._leaders_sorted
        if cached is None:
            cached = sorted(self._leader_ids)
            self._leaders_sorted = cached
        return list(cached)

    def current_leader(self, self_id: str) -> Optional[str]:
        """The leader this node follows on the channel (or itself)."""
        if self.i_am_leader:
            return self_id
        cached = self._leaders_sorted
        if cached is None:
            cached = self._leaders_sorted = sorted(self._leader_ids)
        return cached[0] if cached else None

    def contenders_below(self, my_id: str) -> List[str]:
        """Visible non-suppressed peers with a smaller id than mine.

        These are the peers that would win a bully election this node
        could otherwise claim.  Suppressed peers (they see some leader we
        cannot) stand aside, which is what lets a higher-id node lead an
        overlapped group (paper Fig. 4: F leads G'2 although E < F).
        """
        return sorted(
            p.node_id
            for p in self.peers.values()
            if not p.suppressed and not p.is_leader and p.node_id < my_id
        )

    def member_ids(self) -> List[str]:
        return sorted(self.peers)
