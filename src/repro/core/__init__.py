"""The paper's contribution: the topology-adaptive hierarchical protocol.

Modules
-------
:mod:`repro.core.config`
    :class:`HierarchicalConfig` and the Fig. 7 configuration-file format.
:mod:`repro.core.heartbeat`, :mod:`repro.core.groups`, :mod:`repro.core.election`
    Heartbeat payloads, per-channel group views, and the bully election
    with suppression and backup fast path.
:mod:`repro.core.updates`
    Update messages: sequence numbers, piggyback loss recovery, relays.
:mod:`repro.core.roles`
    The daemon's five thread roles (paper Fig. 10): announcer, receiver,
    status tracker, informer, contender, over a shared ``NodeContext``.
:mod:`repro.core.node`
    :class:`HierarchicalNode` — the facade wiring the roles together and
    preserving the public protocol API.
:mod:`repro.core.proxy`
    The membership proxy protocol for multi-data-center deployments.
:mod:`repro.core.service_api`
    ``MService`` / ``MClient``, the paper's Section 5 library API.
"""

from repro.core.config import HierarchicalConfig, parse_config_text, render_config_text
from repro.core.node import HierarchicalNode
from repro.core.heartbeat import Heartbeat
from repro.core.updates import UpdateManager, UpdateMessage, UpdateOp
from repro.core.groups import GroupState, PeerState
from repro.core.election import Decision, decide
from repro.core.proxy import (
    MembershipProxy,
    ProxyConfig,
    ServiceSummary,
    install_proxy_forwarding,
)
from repro.core.service_api import MClient, MService, Machine, MachineList
from repro.core.introspect import (
    GroupInfo,
    hierarchy_invariant_errors,
    hierarchy_snapshot,
    render_hierarchy,
)

__all__ = [
    "HierarchicalConfig",
    "parse_config_text",
    "render_config_text",
    "HierarchicalNode",
    "Heartbeat",
    "UpdateManager",
    "UpdateMessage",
    "UpdateOp",
    "GroupState",
    "PeerState",
    "Decision",
    "decide",
    "MembershipProxy",
    "ProxyConfig",
    "ServiceSummary",
    "install_proxy_forwarding",
    "MClient",
    "MService",
    "Machine",
    "MachineList",
    "GroupInfo",
    "hierarchy_invariant_errors",
    "hierarchy_snapshot",
    "render_hierarchy",
]
