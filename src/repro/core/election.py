"""Leader election decisions (bully algorithm with backup fast path).

The paper elects with the bully algorithm on unique node IDs ("The member
with the lowest ID becomes the group leader"), refined by two rules:

1. *Suppression* — "If there is already a group leader, a node will not
   participate [in] the leader election in any groups with the same
   multicast address and TTL value."  A node that can see a leader stands
   aside even if its own ID is lower (Fig. 4's overlap cases).
2. *No mutual leaders* — "our group leader election algorithm guarantees
   that a group leader cannot see other leaders at the same level."  When
   two leaders come into view of each other (e.g. after a partition
   heals), the higher-ID one steps down.

Plus the availability fast path: "The backup leader is randomly chosen by
the primary group leader and it will take over the leadership if the
primary leader fails," skipping the election delay entirely.

Decisions are pure functions of a :class:`~repro.core.groups.GroupState`,
which keeps them unit-testable without a simulator.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.core.groups import GroupState

__all__ = ["Decision", "decide"]


class Decision(str, Enum):
    """Outcome of one election evaluation on one channel."""

    STAY = "stay"  # no change in posture
    BECOME_LEADER = "become_leader"
    STEP_DOWN = "step_down"


def decide(
    state: GroupState,
    self_id: str,
    now: float,
    election_delay: float,
) -> Decision:
    """Evaluate the election for one channel.

    Mutates ``state``'s bookkeeping fields (``suppressed``,
    ``leaderless_since``) and returns the action to take.  Must be called
    periodically (the status-tracker tick) and after peer changes.
    """
    visible = state.visible_leaders()

    if state.i_am_leader:
        # Rule 2: two leaders must not see each other; lowest ID wins.
        if visible and visible[0] < self_id:
            return Decision.STEP_DOWN
        return Decision.STAY

    if visible:
        # Rule 1: a visible leader suppresses contention.
        state.suppressed = True
        state.leaderless_since = None
        return Decision.STAY

    # No leader in sight: contend.
    state.suppressed = False
    if state.leaderless_since is None:
        state.leaderless_since = now
        return Decision.STAY
    if now - state.leaderless_since < election_delay:
        return Decision.STAY
    if state.contenders_below(self_id):
        return Decision.STAY  # a lower-ID contender should win; wait
    return Decision.BECOME_LEADER


def backup_should_take_over(
    state: GroupState,
    self_id: str,
    dead_leader_backup: Optional[str],
) -> bool:
    """Fast failover check when a leader was just purged.

    Returns True if this node was the purged leader's designated backup
    (and is not already a leader itself).
    """
    return dead_leader_backup == self_id and not state.i_am_leader
