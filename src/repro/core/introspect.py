"""Cluster-wide hierarchy introspection.

Debugging and administration helpers that assemble a global picture of the
membership tree from the per-node states — the moral equivalent of the
administrator pointing a monitoring tool at the cluster.  Only used by
tooling (CLI, examples, tests); protocol code never needs a global view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.node import HierarchicalNode

__all__ = ["GroupInfo", "hierarchy_snapshot", "render_hierarchy", "hierarchy_invariant_errors"]


@dataclass(frozen=True)
class GroupInfo:
    """One observed group: a leader and the members following it."""

    level: int
    leader: str
    members: tuple[str, ...]


def hierarchy_snapshot(nodes: Mapping[str, HierarchicalNode]) -> List[GroupInfo]:
    """Groups of the current hierarchy, derived from who follows whom.

    A group at level *l* is identified by its leader: every node
    participating at level *l* whose ``leader_of(l)`` names that leader is
    a member.  Overlapping groups appear once per leader, matching the
    paper's view that overlapped groups sharing a leader "are deemed as
    one group represented by" it.
    """
    following: Dict[tuple[int, str], set[str]] = {}
    for host, node in nodes.items():
        if not node.running:
            continue
        for level in node.levels():
            leader = node.leader_of(level)
            if leader is None:
                continue
            following.setdefault((level, leader), set()).add(host)
    out = [
        GroupInfo(level=level, leader=leader, members=tuple(sorted(members)))
        for (level, leader), members in following.items()
    ]
    return sorted(out, key=lambda g: (g.level, g.leader))


def render_hierarchy(nodes: Mapping[str, HierarchicalNode]) -> str:
    """ASCII rendering of the tree, one line per group, bottom-up."""
    lines = []
    for group in hierarchy_snapshot(nodes):
        indent = "  " * group.level
        members = ", ".join(m for m in group.members if m != group.leader)
        lines.append(
            f"{indent}L{group.level} [{group.leader}]"
            + (f" <- {members}" if members else " (alone)")
        )
    return "\n".join(lines)


def hierarchy_invariant_errors(nodes: Mapping[str, HierarchicalNode]) -> List[str]:
    """Check the structural invariants; returns human-readable violations.

    * every running node participates at level 0;
    * participation at level l+1 implies leadership at level l;
    * a leader never sees another leader on the same channel;
    * every node's level-0 group has some leader once formation settles.
    """
    errors: List[str] = []
    for host, node in nodes.items():
        if not node.running:
            continue
        levels = node.levels()
        if 0 not in levels:
            errors.append(f"{host}: does not participate at level 0")
        for level in levels:
            if level > 0 and not node.is_leader(level - 1):
                errors.append(
                    f"{host}: participates at L{level} without leading L{level - 1}"
                )
            if node.is_leader(level):
                seen = node._groups[level].visible_leaders()
                if seen:
                    errors.append(
                        f"{host}: leads L{level} but sees leaders {seen}"
                    )
        if node.leader_of(0) is None:
            errors.append(f"{host}: no level-0 leader in sight")
    return errors
