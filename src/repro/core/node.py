"""The hierarchical membership node (facade).

One :class:`HierarchicalNode` is the simulated equivalent of the paper's
C++ daemon (Fig. 10).  Its five thread roles are real modules in
:mod:`repro.core.roles`, sharing one
:class:`~repro.core.roles.context.NodeContext` and reaching the
environment only through the node's
:class:`~repro.runtime.ports.NodeRuntime`:

=================  ===========================================================
Announcer          :class:`~repro.core.roles.announcer.Announcer` — periodic
                   heartbeats on every channel the node participates in
Receiver           :class:`~repro.core.roles.receiver.Receiver` — per-channel
                   handlers and the ``hmember`` unicast port (heartbeats,
                   updates, sync polls)
Status Tracker     :class:`~repro.core.roles.tracker.Tracker` — purge silent
                   peers, expire relayed entries, drive elections
Contender          :class:`~repro.core.roles.contender.Contender` — apply
                   :mod:`repro.core.election` decisions, backups, step-downs
Informer           :class:`~repro.core.roles.informer.Informer` — update
                   origination/relay and the sync (bootstrap) server
=================  ===========================================================

This class wires the roles together, owns the two recurring daemon
timers, and preserves the public protocol API (lifecycle, introspection,
MService surface).  See ``docs/ARCHITECTURE.md`` for the full map.

Participation invariant: a node always subscribes to the level-0 channel;
it subscribes to channel *l+1* exactly while it is a leader at level *l*
("Lower level group leaders join a higher level group"), up to
``config.max_level``.

Directory semantics:

* peers heard directly on some channel are **direct** entries, purged after
  ``level_timeout(level)`` of silence;
* everything else is **relayed**, attributed to the direct peer that
  relayed it; relayed entries live as long as their relayer (leader
  heartbeats vouch for them in O(1)), are reattributed to the new leader on
  failover, and have a slow backstop timeout;
* removals ride explicit remove-updates with incarnation guards, so a
  restarted node is never deleted by old news about its previous life.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster.directory import NodeRecord
from repro.core.config import HierarchicalConfig
from repro.core.groups import GroupState, PeerState
from repro.core.roles import (
    HMEMBER_PORT,
    Announcer,
    Contender,
    Informer,
    NodeContext,
    Receiver,
    Tracker,
)
from repro.core.updates import UpdateManager, UpdateOp
from repro.protocols.base import MembershipNode

__all__ = ["HierarchicalNode", "HMEMBER_PORT"]


class HierarchicalNode(MembershipNode):
    """One node of the topology-adaptive hierarchical protocol.

    ``use_fast_path`` selects the protocol hot-path engine (on by default):
    interned heartbeat payloads, an identity-based no-change receive path,
    and deadline-heap directory purges.  The legacy scan-per-tick path is
    kept for A/B benchmarking; seeded traces are identical on both (see
    docs/PERFORMANCE.md).
    """

    config: HierarchicalConfig

    def __init__(self, *args, use_fast_path: bool = True, **kwargs) -> None:
        if "config" not in kwargs or kwargs["config"] is None:
            kwargs["config"] = HierarchicalConfig()
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, HierarchicalConfig):
            raise TypeError("HierarchicalNode requires a HierarchicalConfig")
        self.use_fast_path = use_fast_path
        self._ctx = NodeContext(
            node=self,
            runtime=self.runtime,
            config=self.config,
            directory=self.directory,
            rng=self.rng,
            updates=UpdateManager(
                self.node_id,
                self.config.piggyback_depth,
                uid_alloc=self._make_uid_alloc(),
            ),
            detector=self.detector,
        )
        self._announcer = Announcer(self._ctx)
        self._receiver = Receiver(self._ctx)
        self._tracker = Tracker(self._ctx)
        self._informer = Informer(self._ctx)
        self._contender = Contender(self._ctx)
        self._ctx.wire(
            self._announcer,
            self._receiver,
            self._tracker,
            self._informer,
            self._contender,
        )

    def _make_uid_alloc(self) -> Optional[Callable[[], int]]:
        """Ask the network for a per-node uid allocator, if it has one.

        The plain :class:`~repro.net.network.Network` has no such hook
        (the process-global counter suffices); the sharded kernel's
        facade provides one so uids stay unique and deterministic across
        shard processes.
        """
        hook = getattr(self.network, "uid_alloc", None)
        return hook(self.node_id) if callable(hook) else None

    # ==================================================================
    # Failure-detection seam
    # ==================================================================
    def _wire_detector(self) -> None:
        # Probes ride the existing hmember unicast port — an active
        # detector costs the scheme no extra bind, and the default
        # counter strategy sends nothing at all.  Called from the base
        # __init__ before ``_ctx`` exists: attach only closures/bound
        # methods that resolve state at call time.
        from repro.detect import UnicastProber

        self.detector.attach(
            prober=UnicastProber(self.runtime, HMEMBER_PORT, self.config.header_size),
            members=self._probe_candidates,
        )

    def _probe_candidates(self) -> List[str]:
        """Peers heard directly on any channel — the probe target pool."""
        seen: Set[str] = set()
        for group in self._ctx.groups.values():
            seen.update(group.peers)
        seen.discard(self.node_id)
        return sorted(seen)

    def _on_detector_rebuilt(self) -> None:
        self._ctx.detector = self.detector
        # Channel handlers pre-resolve the observation hook; rebuild them
        # so they point at the new strategy (subscribe replaces in place).
        for level in self._ctx.levels:
            self.runtime.subscribe(
                self.config.channel(level), self._receiver.channel_handler(level)
            )

    def apply_config(self, config: HierarchicalConfig) -> None:
        super().apply_config(config)
        # The context denormalises the config; keep it in lockstep (the
        # control plane replaces the frozen dataclass wholesale).
        self._ctx.config = self.config

    # ==================================================================
    # Lifecycle (template in MembershipNode; scheme hooks here)
    # ==================================================================
    def _reset_run_state(self) -> None:
        self.directory.use_fast_path = self.use_fast_path
        self._ctx.reset_for_start()
        self._announcer.reset()
        self._informer.reset()

    def _on_start(self) -> None:
        self.runtime.bind(HMEMBER_PORT, self._receiver.on_unicast)
        self._ctx.participate(0)
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        self.runtime.call_every(
            self.config.heartbeat_period,
            self._announcer.heartbeat_tick,
            first_delay=phase,
        )
        self.runtime.call_every(
            self.config.heartbeat_period, self._tracker.check_tick
        )

    def _on_stop(self) -> None:
        self._ctx.abandon_all()
        self.runtime.unbind(HMEMBER_PORT)

    def leave(self) -> None:
        """Graceful departure: announce, then stop.

        A planned removal should not cost the cluster ``max_loss`` periods
        of stale directory time: the node multicasts a ``leave`` op on all
        its channels (relayed through the tree like any update), then goes
        silent.  Receivers drop it immediately — the op bypasses the
        "I still hear it" guard that protects against false *remove*
        rumors, because only the node itself originates its leave.
        """
        if not self.running:
            return
        self._informer.originate([UpdateOp("leave", self.node_id, self.incarnation)])
        self.stop()

    def refute_death(self) -> None:
        """SWIM-style refutation of a false death rumor about this node.

        Bumps the incarnation (the higher incarnation beats the rumor and
        any death certificates guarding the old one) and moves the runtime
        epoch so one-shots scheduled against the old incarnation are
        dropped at fire time.
        """
        self.incarnation += 1
        self.runtime.bump_epoch()

    # ==================================================================
    # Introspection (used by tests, experiments and the proxy protocol)
    # ==================================================================
    def levels(self) -> List[int]:
        """Channels this node currently participates in, ascending.

        Derived from the groups dict (not the hot-path levels cache) so
        external inspection stays truthful even if tests poke the groups
        directly.
        """
        return sorted(self._ctx.groups)

    def is_leader(self, level: int) -> bool:
        group = self._ctx.groups.get(level)
        return bool(group and group.i_am_leader)

    def leader_of(self, level: int) -> Optional[str]:
        """The leader this node follows at ``level`` (itself if leading)."""
        group = self._ctx.groups.get(level)
        return group.current_leader(self.node_id) if group else None

    def group_members(self, level: int) -> List[str]:
        group = self._ctx.groups.get(level)
        return group.member_ids() if group else []

    @property
    def top_level(self) -> int:
        return max(self._ctx.groups) if self._ctx.groups else 0

    # ==================================================================
    # Self-publication changes (MService API surface)
    # ==================================================================
    def _self_changed(self) -> None:
        super()._self_changed()
        if self.running:
            record = self.self_record()
            self._informer.originate(
                [UpdateOp("add", self.node_id, record.incarnation, record)]
            )

    # ==================================================================
    # Stable internal surface
    #
    # The role split moved the daemon's state and logic into
    # ``repro.core.roles``; these aliases keep the node's historical
    # internal names addressable (tests, chaos harnesses and experiment
    # scripts poke them), and — for ``_maybe_sync`` — keep the facade
    # attribute the single seam through which every internal sync request
    # flows, so monkeypatching it intercepts all of them.
    # ==================================================================
    @property
    def _groups(self) -> Dict[int, GroupState]:
        return self._ctx.groups

    @property
    def _levels(self) -> Tuple[int, ...]:
        return self._ctx.levels

    @_levels.setter
    def _levels(self, value: Iterable[int]) -> None:
        self._ctx.levels = tuple(value)

    @property
    def _updates(self) -> UpdateManager:
        return self._ctx.updates

    @property
    def _tombstones(self) -> Dict[str, Tuple[int, float]]:
        return self._ctx.tombstones

    @property
    def _pending_syncs(self) -> Set[str]:
        return self._ctx.pending_syncs

    @property
    def _bootstrap_announce_until(self) -> float:
        return self._ctx.bootstrap_announce_until

    @_bootstrap_announce_until.setter
    def _bootstrap_announce_until(self, value: float) -> None:
        self._ctx.bootstrap_announce_until = value

    @property
    def _oneshots(self) -> set:
        return self.runtime.oneshots  # type: ignore[attr-defined]

    def _call_once(self, delay: float, fn, *args) -> None:
        self.runtime.call_once(delay, fn, *args)

    def _maybe_sync(self, peer: str) -> bool:
        return self._informer.maybe_sync(peer)

    def _send_heartbeat(self, level: int) -> None:
        self._announcer.send_heartbeat(level)

    def _originate(self, ops: Sequence[UpdateOp]) -> None:
        self._informer.originate(ops)

    def _apply_ops(self, ops: Sequence[UpdateOp], via: str) -> None:
        self._informer.apply_ops(ops, via)

    def _absorb_record(self, record: NodeRecord, via: str, now: float) -> bool:
        return self._informer.absorb_record(record, via, now)

    def _bury(self, node_id: str, incarnation: int) -> None:
        self._informer.bury(node_id, incarnation)

    def _handle_peer_death(self, level: int, peer: PeerState) -> None:
        self._tracker.handle_peer_death(level, peer)

    def _evaluate_election(self, level: int) -> None:
        self._contender.evaluate(level)
