"""The hierarchical membership node.

One :class:`HierarchicalNode` is the simulated equivalent of the paper's
C++ daemon (Fig. 10).  Its five thread roles map to event handlers:

=================  ===========================================================
Announcer          :meth:`_heartbeat_tick` — periodic heartbeats on every
                   channel the node participates in
Receiver           per-channel handlers (:meth:`_make_channel_handler`) and
                   :meth:`_on_unicast` — heartbeats, updates, sync polls
Status Tracker     :meth:`_check_tick` — purge silent peers, expire relayed
                   entries, drive elections
Contender          :mod:`repro.core.election` decisions invoked from the
                   tracker and on heartbeat receipt
Informer           update origination/relay and the sync (bootstrap) server
=================  ===========================================================

Participation invariant: a node always subscribes to the level-0 channel;
it subscribes to channel *l+1* exactly while it is a leader at level *l*
("Lower level group leaders join a higher level group"), up to
``config.max_level``.

Directory semantics:

* peers heard directly on some channel are **direct** entries, purged after
  ``level_timeout(level)`` of silence;
* everything else is **relayed**, attributed to the direct peer that
  relayed it; relayed entries live as long as their relayer (leader
  heartbeats vouch for them in O(1)), are reattributed to the new leader on
  failover, and have a slow backstop timeout;
* removals ride explicit remove-updates with incarnation guards, so a
  restarted node is never deleted by old news about its previous life.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.directory import NodeRecord
from repro.core.config import HierarchicalConfig
from repro.core.election import Decision, decide
from repro.core.groups import GroupState, PeerState
from repro.core.heartbeat import Heartbeat
from repro.core.updates import UpdateManager, UpdateMessage, UpdateOp
from repro.net.packet import Packet
from repro.protocols.base import MembershipNode

__all__ = ["HierarchicalNode", "HMEMBER_PORT"]

HMEMBER_PORT = "hmember"


class HierarchicalNode(MembershipNode):
    """One node of the topology-adaptive hierarchical protocol.

    ``use_fast_path`` selects the protocol hot-path engine (on by default):
    interned heartbeat payloads, an identity-based no-change receive path,
    deadline-heap directory purges, and allocation-free recurring timers.
    The legacy scan-per-tick path is kept for A/B benchmarking; seeded
    traces are identical on both (see docs/PERFORMANCE.md).
    """

    config: HierarchicalConfig

    def __init__(self, *args, use_fast_path: bool = True, **kwargs) -> None:
        if "config" not in kwargs or kwargs["config"] is None:
            kwargs["config"] = HierarchicalConfig()
        super().__init__(*args, **kwargs)
        if not isinstance(self.config, HierarchicalConfig):
            raise TypeError("HierarchicalNode requires a HierarchicalConfig")
        self.use_fast_path = use_fast_path
        self._groups: Dict[int, GroupState] = {}
        # Sorted view of self._groups' keys, maintained on join/leave so
        # the per-heartbeat/per-tick loops stop re-sorting the dict.
        self._levels: Tuple[int, ...] = ()
        # Interned outgoing heartbeat per level: (record, is_leader,
        # suppressed, backup, update_seq) -> frozen Heartbeat instance.
        self._hb_cache: Dict[int, tuple] = {}
        self._updates = UpdateManager(self.node_id, self.config.piggyback_depth)
        self._last_sync: Dict[str, float] = {}
        # Death certificates: node_id -> (incarnation, time of removal).
        # While quarantined, an add with the same (or older) incarnation is
        # rejected — otherwise a stale snapshot or in-flight update can
        # resurrect a dead node cluster-wide.  A genuinely restarted node
        # announces a higher incarnation and passes.
        self._tombstones: Dict[str, tuple[int, float]] = {}
        # Rate limiter for active tombstone refutations (see _absorb_record).
        self._tombstone_refutes: Dict[str, float] = {}
        # Peers we owe a completed sync exchange: retried from the status
        # tracker until their sync_resp lands (bootstrap over lossy UDP
        # must not be a one-shot).
        self._pending_syncs: set[str] = set()
        # While this deadline is in the future (set on becoming leader),
        # sync results are re-announced wholesale to our groups — the
        # bootstrap protocol's "the result is then propagated to all group
        # members", which repairs members' collateral removals after a
        # leader failover.
        self._bootstrap_announce_until = 0.0
        self._last_full_announce = float("-inf")
        self._hb_timer = None
        self._check_timer = None
        # Live one-shot timers created via _call_once, cancelled on stop().
        self._oneshots: set = set()

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.incarnation += 1
        self.directory.use_fast_path = self.use_fast_path
        self.directory.clear()
        self._updates.reset()
        self._last_sync.clear()
        self._groups.clear()
        self._levels = ()
        self._hb_cache.clear()
        self._tombstones.clear()
        self._tombstone_refutes.clear()
        self._pending_syncs.clear()
        self.directory.upsert(self.self_record(), self.network.now)
        self._emit_view_reset()
        self.network.bind(self.node_id, HMEMBER_PORT, self._on_unicast)
        self._participate(0)
        phase = self.rng.uniform(0, self.config.heartbeat_period)
        if self.use_fast_path:
            # Recurring timers: one reusable event each, zero allocations
            # per period.  Firing order and seq consumption are identical
            # to the legacy self-rescheduling callbacks below.
            self._hb_timer = self.network.sim.call_every(
                self.config.heartbeat_period, self._heartbeat_tick, first_delay=phase
            )
            self._check_timer = self.network.sim.call_every(
                self.config.heartbeat_period, self._check_tick
            )
        else:
            self._hb_timer = self.network.sim.call_after(phase, self._heartbeat_tick)
            self._check_timer = self.network.sim.call_after(
                self.config.heartbeat_period, self._check_tick
            )

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        for level in list(self._groups):
            self.network.unsubscribe(self.config.channel(level), self.node_id)
        self._groups.clear()
        self._levels = ()
        self._hb_cache.clear()
        self.network.transport.unbind(self.node_id, HMEMBER_PORT)
        if self._hb_timer is not None:
            self._hb_timer.cancel()
        if self._check_timer is not None:
            self._check_timer.cancel()
        for event in self._oneshots:
            event.cancel()
        self._oneshots.clear()
        self.directory.clear()

    def _call_once(self, delay: float, fn, *args) -> None:
        """Schedule a one-shot callback bound to *this run* of the node.

        The simulator outlives node lifecycles, so a bare ``call_after``
        from protocol code survives ``stop()`` and fires into the node's
        next life — ``self.running`` is True again after a restart, and
        the callback acts on state from a previous incarnation.  Timers
        scheduled here are cancelled by :meth:`stop` and, as a belt-and-
        braces guard, checked against the scheduling incarnation.
        """
        inc = self.incarnation
        event = None

        def fire() -> None:
            self._oneshots.discard(event)
            if self.running and self.incarnation == inc:
                fn(*args)

        event = self.network.sim.call_after(delay, fire)
        self._oneshots.add(event)

    def leave(self) -> None:
        """Graceful departure: announce, then stop.

        A planned removal should not cost the cluster ``max_loss`` periods
        of stale directory time: the node multicasts a ``leave`` op on all
        its channels (relayed through the tree like any update), then goes
        silent.  Receivers drop it immediately — the op bypasses the
        "I still hear it" guard that protects against false *remove*
        rumors, because only the node itself originates its leave.
        """
        if not self.running:
            return
        self._originate([UpdateOp("leave", self.node_id, self.incarnation)])
        self.stop()

    # ==================================================================
    # Introspection (used by tests, experiments and the proxy protocol)
    # ==================================================================
    def levels(self) -> List[int]:
        """Channels this node currently participates in, ascending.

        Derived from ``_groups`` (not the hot-path ``_levels`` cache) so
        external inspection stays truthful even if tests poke ``_groups``
        directly.
        """
        return sorted(self._groups)

    def is_leader(self, level: int) -> bool:
        group = self._groups.get(level)
        return bool(group and group.i_am_leader)

    def leader_of(self, level: int) -> Optional[str]:
        """The leader this node follows at ``level`` (itself if leading)."""
        group = self._groups.get(level)
        return group.current_leader(self.node_id) if group else None

    def group_members(self, level: int) -> List[str]:
        group = self._groups.get(level)
        return group.member_ids() if group else []

    @property
    def top_level(self) -> int:
        return max(self._groups) if self._groups else 0

    # ==================================================================
    # Participation
    # ==================================================================
    def _participate(self, level: int) -> None:
        if level in self._groups or level > self.config.max_level:
            return
        self._groups[level] = GroupState(level)
        self._levels = tuple(sorted(self._groups))
        channel = self.config.channel(level)
        self.network.subscribe(channel, self.node_id, self._make_channel_handler(level))
        self._send_heartbeat(level)  # announce presence immediately

    def _make_channel_handler(self, level: int):
        # Flat dispatch: one closure frame per delivery instead of three.
        # Heartbeats dominate steady-state receive traffic, so the kind
        # test orders them first.
        groups = self._groups

        def handler(packet: Packet) -> None:
            if not self.running or level not in groups:
                return
            if packet.kind == "heartbeat":
                self._on_heartbeat(packet.payload, level)
            elif packet.kind == "update":
                self._on_update(packet.payload, level)

        return handler

    def _leave(self, level: int, orphans: Optional[set] = None) -> None:
        """Drop out of ``level`` and, recursively, everything above it.

        Peers heard only on the abandoned channels are collected into
        ``orphans`` so the caller can re-home their directory entries (see
        :meth:`_step_down`); without that they would linger as direct
        entries nobody refreshes.
        """
        group = self._groups.pop(level, None)
        if group is None:
            return
        self._levels = tuple(sorted(self._groups))
        self._hb_cache.pop(level, None)
        self.network.unsubscribe(self.config.channel(level), self.node_id)
        if orphans is not None:
            orphans.update(group.member_ids())
        self._leave(level + 1, orphans)

    def _heard_level(self, node_id: str) -> Optional[int]:
        """Lowest level where ``node_id`` is currently a direct peer."""
        for level in self._levels:
            if node_id in self._groups[level].peers:
                return level
        return None

    # ==================================================================
    # Announcer
    # ==================================================================
    def _heartbeat_tick(self) -> None:
        if not self.running:
            return
        for level in self._levels:
            self._send_heartbeat(level)
        if not self.use_fast_path:
            self._hb_timer = self.network.sim.call_after(
                self.config.heartbeat_period, self._heartbeat_tick
            )

    def _send_heartbeat(self, level: int) -> None:
        group = self._groups.get(level)
        if group is None:
            return
        record = self.self_record()
        backup = group.my_backup if group.i_am_leader else None
        seq = self._updates.current_seq(level)
        hb: Optional[Heartbeat] = None
        if self.use_fast_path:
            # Interned payload: a heartbeat is identical between state
            # changes, so reuse the frozen instance while its signature
            # (record identity, election flags, backup, update seq) holds.
            cached = self._hb_cache.get(level)
            if (
                cached is not None
                and cached[0] is record
                and cached[1] == group.i_am_leader
                and cached[2] == group.suppressed
                and cached[3] == backup
                and cached[4] == seq
            ):
                hb = cached[5]
        if hb is None:
            hb = Heartbeat(
                record=record,
                level=level,
                is_leader=group.i_am_leader,
                suppressed=group.suppressed,
                backup=backup,
                update_seq=seq,
            )
            if self.use_fast_path:
                self._hb_cache[level] = (
                    record, group.i_am_leader, group.suppressed, backup, seq, hb,
                )
        self.network.obs.hb_tx.inc()
        self.network.multicast(
            self.node_id,
            self.config.channel(level),
            ttl=self.config.ttl_for_level(level),
            kind="heartbeat",
            payload=hb,
            size=self.config.message_size(1),
        )

    # ==================================================================
    # Receiver: multicast
    # ==================================================================
    def _on_heartbeat(self, hb: Heartbeat, level: int) -> None:
        group = self._groups[level]
        now = self.network.now
        obs = self.network.obs
        obs.hb_rx.inc()
        if self.use_fast_path:
            nid = hb.record.node_id
            peer = group.peers.get(nid)
            directory = self.directory
            if (
                peer is not None
                and hb is peer.last_hb
                and directory.refresh(nid, now, relayed_by=None)
            ):
                # No-change fast path: the sender interned this payload, so
                # nothing about the peer moved since its last heartbeat.
                # Freshness is bumped (peer + directory + vouch), the
                # failover/lost-update checks still run (they depend on
                # *our* state, not the sender's), and record absorption is
                # skipped entirely.  Election re-evaluation is skipped only
                # while a leader is in sight and we are not one ourselves —
                # the one configuration where an unchanged heartbeat
                # provably cannot move the election clock (the leaderless
                # countdown and the two-leaders rule both need a state
                # change or our own flag, and those route through the slow
                # path or the status tick).
                obs.hb_rx_fast.inc()
                if self._tombstones:
                    self._tombstones.pop(nid, None)
                peer.last_heard = now
                if hb.is_leader:
                    directory.vouch(nid, now)
                    if (
                        group.last_dead_leader is not None
                        and group.last_dead_leader != nid
                    ):
                        directory.reattribute(group.last_dead_leader, nid)
                        group.last_dead_leader = None
                elif level >= 1:
                    directory.vouch(nid, now)
                if self._updates.behind(nid, level, hb.update_seq):
                    self._maybe_sync(nid)
                if group.i_am_leader or not group.leader_visible():
                    self._evaluate_election(level)
                return
        was_known = hb.node_id in group.peers
        # Hearing a node directly is proof of life: clear any certificate.
        self._tombstones.pop(hb.node_id, None)
        peer_is_new = group.note_heartbeat(hb, now)
        newly_in_directory = hb.node_id not in self.directory
        self.directory.upsert(hb.record, now)
        self.directory.refresh(hb.node_id, now, relayed_by=None)
        if hb.is_leader or level >= 1:
            # An alive relay point keeps everything it relayed alive: the
            # flag-flying leader of this group, or any participant of a
            # level >= 1 channel (who is by construction the representative
            # of some lower-level subtree).
            self.directory.vouch(hb.node_id, now)
        if hb.is_leader:
            if group.last_dead_leader is not None and group.last_dead_leader != hb.node_id:
                # Failover completed: the new leader inherits the dead
                # leader's vouched entries.
                self.directory.reattribute(group.last_dead_leader, hb.node_id)
                group.last_dead_leader = None
        if newly_in_directory:
            self._emit_member_up(hb.node_id)
        if peer_is_new and self._is_relay_point():
            # "A group leader will also inform all other groups when a new
            # node joins" — any relay point announces a newly-heard direct
            # peer to the rest of its channels; covers first joins,
            # restarts (higher incarnation counts as new), and peers
            # returning after a healed partition.
            self._originate(
                [UpdateOp("add", hb.node_id, hb.record.incarnation, hb.record)]
            )
        if not was_known:
            # Bootstrap triggers: a group leader pulls a newcomer's state;
            # a newcomer pulls the leader's state when it spots the flag.
            if group.i_am_leader or hb.is_leader:
                self._maybe_sync(hb.node_id)
        elif self._updates.behind(hb.node_id, level, hb.update_seq):
            # The heartbeat advertises updates we never received (the lost
            # packet was the sender's last): poll for a directory sync.
            # The stream is marked caught-up only when the response lands.
            self._maybe_sync(hb.node_id)
        # React immediately to leader conflicts/appearance.
        self._evaluate_election(level)

    # ==================================================================
    # Receiver: unicast (sync protocol)
    # ==================================================================
    def _on_unicast(self, packet: Packet) -> None:
        if not self.running:
            return
        if packet.kind == "sync_req":
            self._merge_snapshot(packet.payload["snapshot"], via=packet.src)
            snapshot = [r for r in self.directory.records() if r.node_id != packet.src]
            seqs = {level: self._updates.current_seq(level) for level in self._groups}
            self.network.unicast(
                self.node_id,
                packet.src,
                kind="sync_resp",
                payload={"snapshot": snapshot, "seqs": seqs},
                size=self.config.message_size(max(1, len(snapshot))),
                port=HMEMBER_PORT,
            )
        elif packet.kind == "sync_resp":
            self.network.obs.sync_resps.inc()
            self._pending_syncs.discard(packet.src)
            self._merge_snapshot(
                packet.payload["snapshot"], via=packet.src, prune_relayer=True
            )
            # The snapshot subsumes every update the sender ever sent: mark
            # its streams caught-up (only now — a lost response must leave
            # us "behind" so the next heartbeat retriggers the poll).
            for level, seq in packet.payload.get("seqs", {}).items():
                if level in self._groups:
                    self._updates.note_synced(packet.src, level, seq)

    def _maybe_sync(self, peer: str) -> bool:
        """Bidirectional directory exchange with ``peer``, rate-limited.

        Returns True when a sync request was actually sent.  The peer stays
        in ``_pending_syncs`` (retried each status tick) until its response
        arrives, so a lost request or response is not fatal.
        """
        if not self.running:
            return False
        now = self.network.now
        self._pending_syncs.add(peer)
        last = self._last_sync.get(peer)
        if last is not None and now - last < self.config.min_sync_interval:
            return False
        self._last_sync[peer] = now
        snapshot = [r for r in self.directory.records() if r.node_id != peer]
        obs = self.network.obs
        obs.syncs_sent.inc()
        obs.sync_snapshot.observe(len(snapshot))
        self.network.unicast(
            self.node_id,
            peer,
            kind="sync_req",
            payload={"snapshot": snapshot},
            size=self.config.message_size(max(1, len(snapshot))),
            port=HMEMBER_PORT,
        )
        return True

    def _merge_snapshot(
        self,
        snapshot: Sequence[NodeRecord],
        via: str,
        prune_relayer: bool = False,
    ) -> None:
        """Merge a full-directory snapshot received from ``via``.

        Additive only: removals travel as updates or timeouts, never as
        absence from a snapshot (a snapshot may be older than a removal we
        already applied).  Newly-learned entries are re-announced as
        add-updates when this node is a relay point, so bootstrap payloads
        reach the rest of the tree.
        """
        now = self.network.now
        added: List[NodeRecord] = []
        for record in snapshot:
            if record.node_id == self.node_id:
                continue
            if self._absorb_record(record, via, now):
                added.append(record)
        if prune_relayer:
            # A full snapshot from our voucher is authoritative about what
            # it still vouches for: drop entries it no longer lists (heals
            # a missed remove-update that was the sender's last message).
            listed = {r.node_id for r in snapshot}
            for nid in self.directory.relayed_entries(via):
                if nid not in listed and self._heard_level(nid) is None:
                    rec = self.directory.get(nid)
                    self.directory.remove(nid)
                    if rec is not None:
                        self._bury(nid, rec.incarnation)
                    self._emit_member_down(nid, reason="sync_prune")
        if self._is_relay_point():
            if (
                now < self._bootstrap_announce_until
                and now - self._last_full_announce >= self.config.min_sync_interval
            ):
                # Fresh leadership: propagate the whole bootstrap result so
                # members recover entries they dropped during the failover
                # (their removals were collateral, not visible to us).
                # Rate-limited: one flood per sync interval is enough and
                # keeps formation-time traffic linear.
                self._last_full_announce = now
                announce = [
                    r
                    for r in snapshot
                    if r.node_id != self.node_id and r.node_id in self.directory
                ]
            else:
                announce = added
            if announce:
                self._originate(
                    [UpdateOp("add", r.node_id, r.incarnation, r) for r in announce]
                )

    def _is_relay_point(self) -> bool:
        return len(self._groups) > 1 or any(
            g.i_am_leader for g in self._groups.values()
        )

    def _vouch_anchor(self, via: str) -> str:
        """Who should vouch for second-hand information arriving from ``via``.

        Attribution decides whose death takes an entry down with it, so it
        must name the node that will actually keep the entry fresh:

        * ``via`` itself when we hear it on a channel of level >= 1 (any
          such participant is the leader of a lower group — exactly the
          subtree-representative relationship) or when it flies the leader
          flag on a shared channel;
        * ourselves when we are a leader (we are the relay point);
        * otherwise our level-0 group leader, whose heartbeats vouch for
          everything it relays to us.
        """
        for level in self._levels:
            peer = self._groups[level].peers.get(via)
            if peer is not None and (level >= 1 or peer.is_leader):
                return via
        if any(g.i_am_leader for g in self._groups.values()):
            return self.node_id
        if self._groups:
            lowest = self._groups[self._levels[0]]
            leader = lowest.current_leader(self.node_id)
            if leader is not None:
                return leader
        return via

    def _tombstoned(self, node_id: str, incarnation: int, now: float) -> bool:
        """True if ``(node_id, incarnation)`` is covered by a death certificate."""
        entry = self._tombstones.get(node_id)
        if entry is None:
            return False
        dead_inc, when = entry
        if now - when > self.config.tombstone_quarantine:
            del self._tombstones[node_id]
            return False
        return incarnation <= dead_inc

    def _bury(self, node_id: str, incarnation: int) -> None:
        """Record a death certificate for a node we just removed."""
        cur = self._tombstones.get(node_id)
        if cur is None or cur[0] <= incarnation:
            self._tombstones[node_id] = (incarnation, self.network.now)

    def _absorb_record(self, record: NodeRecord, via: str, now: float) -> bool:
        """Merge one second-hand record; returns True if it was new.

        Attribution rules: direct entries stay direct; existing relayed
        entries keep their relayer unless ``via`` is itself the
        authoritative voucher (a subtree leader we hear directly), which
        re-homes the entry — that is how a failed-over leader's successor
        takes ownership of the subtree in everyone's books.
        """
        if self._tombstoned(record.node_id, record.incarnation, now):
            inc, when = self._tombstones[record.node_id]
            # Active anti-entropy: whoever still advertises this dead
            # incarnation is stale — push the removal back out instead of
            # ever importing the staleness.  If the node is actually alive
            # (e.g. a healed partition), the remove rumor reaches it and it
            # refutes by bumping its incarnation, which beats every
            # certificate.  Rate-limited to avoid refutation storms.
            last = self._tombstone_refutes.get(record.node_id)
            if last is None or now - last >= self.config.min_sync_interval:
                self._tombstone_refutes[record.node_id] = now
                self._originate([UpdateOp("remove", record.node_id, inc)])
            # Backstop for quiet corners: re-pull from the source once the
            # quarantine ends (by then the cluster has converged on either
            # the removal or the higher incarnation).
            remaining = self.config.tombstone_quarantine - (now - when)
            self._call_once(
                max(remaining, 0.0) + self.config.heartbeat_period,
                self._maybe_sync,
                via,
            )
            return False
        existing = self.directory.get(record.node_id)
        if existing is not None and existing.incarnation > record.incarnation:
            return False
        if existing is None:
            relayed_by: Optional[str] = self._vouch_anchor(via)
        else:
            current = self.directory.relayed_by(record.node_id)
            if current is None:
                relayed_by = None  # direct knowledge outranks relays
            elif self._vouch_anchor(via) == via and (
                current == self.node_id or self._vouch_anchor(current) != current
            ):
                # The current relayer no longer functions as a vouching
                # relay point for us (dead, left the channel, or demoted to
                # a plain member) and an authoritative source re-announces
                # the entry: it takes over the vouching.  A *functioning*
                # voucher keeps its entries — otherwise a peer's
                # full-snapshot sync would steal attribution of other
                # subtrees and break the per-subtree failure cascade.
                relayed_by = via
            else:
                relayed_by = current
        if existing is record:
            # Same object as stored (payloads travel by reference in the
            # simulator): a pure freshness/attribution refresh, skipping
            # the deep-equality upsert path — the hot case during
            # formation-time announce floods.
            self.directory.refresh(record.node_id, now, relayed_by=relayed_by)
            return False
        self.directory.upsert(record, now, relayed_by=relayed_by)
        if existing is None:
            self._emit_member_up(record.node_id)
            return True
        return False

    # ==================================================================
    # Status tracker
    # ==================================================================
    def _check_tick(self) -> None:
        if not self.running:
            return
        now = self.network.now
        # Retry unfinished sync exchanges (the rate limiter paces them).
        if self._pending_syncs:
            for peer in sorted(self._pending_syncs):
                self._maybe_sync(peer)
        for level in self._levels:
            group = self._groups.get(level)
            if group is None:
                continue  # removed by a step-down earlier in this tick
            timeout = self.config.level_timeout(level)
            for peer in group.purge_silent(now, timeout):
                self._handle_peer_death(level, peer)
        for level in self._levels:
            if level in self._groups:
                self._evaluate_election(level)
        # Backstop: relayed entries nobody has vouched for in a long time.
        # On the fast path these purges are deadline-heap pops (amortised
        # O(1) in a quiet period) instead of full directory scans.
        incs: Dict[str, int] = {}
        purged: List[UpdateOp] = []
        for nid in self.directory.purge_stale_relayed(
            now, self.config.relayed_timeout, incarnations=incs
        ):
            purged.append(UpdateOp("remove", nid, incs.get(nid, 0)))
            self._bury(nid, incs.get(nid, 0))
            self._emit_member_down(nid, reason="relayed_timeout")
        # Safety net for orphaned direct entries (no live channel refreshes
        # them); generous so it never races real per-level detection.
        safety = self.config.level_timeout(self.config.max_level) + self.config.fail_timeout
        for nid in self.directory.purge_stale(now, safety, incarnations=incs):
            purged.append(UpdateOp("remove", nid, incs.get(nid, 0)))
            self._bury(nid, incs.get(nid, 0))
            self._emit_member_down(nid, reason="orphan_timeout")
        if purged and self._is_relay_point():
            # A relay point's heartbeats implicitly vouch for everything it
            # ever attributed to itself in its members' directories — so a
            # silent backstop purge here would leave the subtree holding
            # the dropped entries *forever* (vouching keeps them fresh and
            # no remove rumor ever arrives).  Originate the removals just
            # like the peer-death cascade does.
            self._originate(purged)
        if not self.use_fast_path:
            self._check_timer = self.network.sim.call_after(
                self.config.heartbeat_period, self._check_tick
            )

    def _freshly_heard(self, node_id: str, now: float) -> bool:
        """Still a direct peer on some channel, heard within ``fail_timeout``.

        Distinguishes *abdication* from *death* when a peer goes silent on
        one channel: a leader that steps down abandons its upper channels
        but keeps heartbeating below, so its entry there is fresh; a dead
        node is stale on every channel it was heard on (the lower levels
        purge first, leaving only entries at least ``fail_timeout`` old).
        """
        for lv in self._levels:
            entry = self._groups[lv].peers.get(node_id)
            if entry is not None and now - entry.last_heard <= self.config.fail_timeout:
                return True
        return False

    def _handle_peer_death(self, level: int, peer: PeerState) -> None:
        group = self._groups[level]
        now = self.network.now

        if peer.is_leader:
            group.last_dead_leader = peer.node_id
            if peer.backup == self.node_id and not group.i_am_leader:
                # Backup fast path: immediate takeover, no election delay.
                self.directory.reattribute(peer.node_id, self.node_id)
                group.last_dead_leader = None
                self._become_leader(level)
            elif peer.backup is not None and peer.backup in group.peers:
                # The designated backup is alive; expect it to take over and
                # inherit the vouched entries right away.
                self.directory.reattribute(peer.node_id, peer.backup)
                group.last_dead_leader = None

        if self._freshly_heard(peer.node_id, now):
            # Silent on *this* channel but alive on another: a leader
            # stepping down leaves the upper channels, it did not die.
            # The group-local failover bookkeeping above still applies
            # (this group genuinely lost its flag-flier); the directory
            # entry and everything it vouches for stay — removing them
            # here declared live nodes dead cluster-wide after every
            # step-down that outlived a higher-level timeout.
            if peer.node_id == group.my_backup:
                group.my_backup = self._pick_backup(group)
            return
        self._updates.forget_sender(peer.node_id)
        self._pending_syncs.discard(peer.node_id)
        # What did the dead peer vouch for?  (Must be computed before the
        # purge below.)  Reported upward/downward by relay-point nodes so
        # whole-subtree failures (switch partitions) propagate quickly.
        # Capture the incarnations we know before purging, so the remove
        # ops carry guards that match what other nodes have.
        relayed_incs = {
            nid: rec.incarnation
            for nid in self.directory.relayed_entries(peer.node_id)
            if (rec := self.directory.get(nid)) is not None
        }
        removed = []
        if self.directory.remove(peer.node_id):
            removed.append(UpdateOp("remove", peer.node_id, peer.incarnation))
            self._bury(peer.node_id, peer.incarnation)
            self._emit_member_down(peer.node_id)
        # Timeout protocol: "membership information that is relayed by the
        # dead node is also timeouted."
        for nid in self.directory.purge_relayed_by(peer.node_id):
            removed.append(UpdateOp("remove", nid, relayed_incs.get(nid, 0)))
            self._bury(nid, relayed_incs.get(nid, 0))
            self._emit_member_down(nid, reason="relayer_died")
        if removed and self._is_relay_point():
            self._originate(removed)
        if peer.node_id == group.my_backup:
            group.my_backup = self._pick_backup(group)

    # ==================================================================
    # Contender
    # ==================================================================
    def _evaluate_election(self, level: int) -> None:
        group = self._groups.get(level)
        if group is None:
            return
        decision = decide(group, self.node_id, self.network.now, self.config.election_delay)
        if decision is Decision.BECOME_LEADER:
            self._become_leader(level)
        elif decision is Decision.STEP_DOWN:
            self._step_down(level)

    def _become_leader(self, level: int) -> None:
        group = self._groups[level]
        group.i_am_leader = True
        group.suppressed = False
        group.leaderless_since = None
        group.my_backup = self._pick_backup(group)
        if group.last_dead_leader is not None:
            self.directory.reattribute(group.last_dead_leader, self.node_id)
            group.last_dead_leader = None
        self.network.obs.elections.inc()
        self.network.trace.emit(
            self.network.now, "leader_elected", node=self.node_id, level=level
        )
        # Bootstrap-results window: long enough for tombstone quarantines
        # to lapse and the deferred re-syncs to complete.
        self._bootstrap_announce_until = (
            self.network.now
            + self.config.tombstone_quarantine
            + 2 * self.config.min_sync_interval
        )
        self._send_heartbeat(level)  # fly the flag immediately
        # Re-announce the subtree this node now vouches for, so peers
        # re-attribute entries from the previous leader to us.
        subtree = self._subtree_records(level)
        if subtree:
            self._originate(
                [UpdateOp("add", r.node_id, r.incarnation, r) for r in subtree]
            )
        self._participate(level + 1)
        # Pull state from existing peers: a fresh leader is this group's
        # relay point and must know its peers' subtrees (bootstrap protocol,
        # leader side).
        for peer_id in group.member_ids():
            self._maybe_sync(peer_id)

    def _step_down(self, level: int) -> None:
        group = self._groups[level]
        group.i_am_leader = False
        group.my_backup = None
        group.suppressed = True
        self.network.obs.stepdowns.inc()
        self.network.trace.emit(
            self.network.now, "leader_stepdown", node=self.node_id, level=level
        )
        self._send_heartbeat(level)
        orphans: set = set()
        self._leave(level + 1, orphans)
        # Entries we only knew through the abandoned channels are handed to
        # the leader of our lowest remaining group — the relay point whose
        # heartbeats we will actually keep hearing (anchoring to the left
        # channel's leader would leave them vouched by someone a plain
        # member never hears again).
        anchor: Optional[str] = None
        if self._groups:
            lowest = self._groups[self._levels[0]]
            anchor = lowest.current_leader(self.node_id)
        now = self.network.now
        for nid in sorted(orphans):
            if nid == anchor or self._heard_level(nid) is not None:
                continue
            if nid in self.directory and anchor is not None:
                self.directory.refresh(nid, now, relayed_by=anchor)

    def _pick_backup(self, group: GroupState) -> Optional[str]:
        members = group.member_ids()
        if not members:
            return None
        return members[self.rng.randrange(len(members))]

    def _subtree_records(self, level: int) -> List[NodeRecord]:
        """Records this node vouches for when leading at ``level``.

        Everything heard directly at levels <= ``level`` plus itself —
        i.e. the subtree the new leader represents upward.
        """
        ids = {self.node_id}
        for lv in self._levels:
            if lv <= level:
                ids.update(self._groups[lv].member_ids())
        out = []
        for nid in sorted(ids):
            rec = self.directory.get(nid)
            if rec is not None:
                out.append(rec)
        return out

    # ==================================================================
    # Informer: updates
    # ==================================================================
    def _originate(self, ops: Sequence[UpdateOp]) -> None:
        """Multicast a locally-originated update on every channel we join."""
        if not ops:
            return
        uid = self._updates.new_uid()
        for level in self._levels:
            self._send_update(level, ops, uid=uid, origin=self.node_id)

    def _send_update(
        self,
        level: int,
        ops: Sequence[UpdateOp],
        uid: Optional[int],
        origin: Optional[str],
    ) -> None:
        if level not in self._groups:
            return
        msg = self._updates.build(level, ops, uid=uid, origin=origin)
        self.network.obs.updates_tx.inc()
        self.network.multicast(
            self.node_id,
            self.config.channel(level),
            ttl=self.config.ttl_for_level(level),
            kind="update",
            payload=msg,
            size=msg.size(self.config.member_size, self.config.header_size),
        )

    def _on_update(self, msg: UpdateMessage, level: int) -> None:
        obs = self.network.obs
        obs.updates_rx.inc()
        outcome = self._updates.receive(msg)
        if outcome.recovered:
            obs.piggyback_recovered.add(outcome.recovered)
        # Every newly-applied op group is relayed — including groups
        # recovered from the piggyback, otherwise a relay point that
        # recovered a lost update would starve its whole subtree of it.
        applied = 0
        for uid, ops in outcome.apply:
            applied += len(ops)
            self._apply_ops(ops, via=msg.sender)
            self._relay_ops(uid, msg.origin, ops, from_level=level)
        if applied:
            obs.update_ops.add(applied)
        if outcome.need_sync:
            self._maybe_sync(msg.sender)

    def _relay_ops(
        self,
        uid: int,
        origin: str,
        ops: Sequence[UpdateOp],
        from_level: int,
    ) -> None:
        """Forward an update per the propagation rules (Fig. 5).

        Sent on every other participating channel; echoed on the incoming
        channel too when we lead it (overlapped groups: members the sender
        could not reach still hear the leader's copy).
        """
        for level in self._levels:
            group = self._groups[level]
            if level == from_level and not group.i_am_leader:
                continue
            self._send_update(level, ops, uid=uid, origin=origin)

    def _apply_ops(self, ops: Sequence[UpdateOp], via: str) -> None:
        now = self.network.now
        for op in ops:
            if op.node_id == self.node_id:
                if op.op == "remove" and op.incarnation >= self.incarnation:
                    # Rumor of our own death: refute by bumping our
                    # incarnation (SWIM-style) — the higher incarnation
                    # beats the rumor and any death certificates guarding
                    # the old one.
                    self.incarnation += 1
                    record = self.self_record()
                    self.directory.upsert(record, now)
                    self._originate(
                        [UpdateOp("add", self.node_id, record.incarnation, record)]
                    )
                continue  # we are the authority on ourselves
            if op.op == "add":
                if op.record is None:
                    continue
                self._absorb_record(op.record, via, now)
            elif op.op == "leave":
                # Graceful departure: drop immediately, heartbeats heard a
                # moment ago notwithstanding (only the node itself
                # originates its leave, so there is no rumor to distrust).
                existing = self.directory.get(op.node_id)
                if existing is None or existing.incarnation > op.incarnation:
                    continue
                for level in self._levels:
                    group = self._groups.get(level)
                    if group is None:
                        continue  # left during this loop (leader takeover)
                    peer = group.peers.get(op.node_id)
                    if peer is not None and peer.is_leader:
                        # Same failover bookkeeping as a detected leader
                        # death: the backup (or the next elected leader)
                        # inherits the vouched entries.
                        if peer.backup == self.node_id and not group.i_am_leader:
                            self.directory.reattribute(op.node_id, self.node_id)
                            group.drop_peer(op.node_id)
                            self._become_leader(level)
                            continue
                        if peer.backup is not None and peer.backup in group.peers:
                            self.directory.reattribute(op.node_id, peer.backup)
                        else:
                            group.last_dead_leader = op.node_id
                    group.drop_peer(op.node_id)
                self.directory.remove(op.node_id)
                self._bury(op.node_id, op.incarnation)
                self._updates.forget_sender(op.node_id)
                self._emit_member_down(op.node_id, reason="leave")
            elif op.op == "remove":
                heard = self._heard_level(op.node_id)
                if heard is not None:
                    # We hear this node ourselves; our own failure detector
                    # outranks second-hand news.  Leaders refute the rumor
                    # so distant nodes that removed it re-add it quickly.
                    record = self.directory.get(op.node_id)
                    if record is not None and self._groups[heard].i_am_leader:
                        self._originate(
                            [UpdateOp("add", op.node_id, record.incarnation, record)]
                        )
                    continue
                existing = self.directory.get(op.node_id)
                if existing is None or existing.incarnation > op.incarnation:
                    continue
                self.directory.remove(op.node_id)
                self._bury(op.node_id, op.incarnation)
                self._emit_member_down(op.node_id, reason="update")

    # ==================================================================
    # Self-publication changes (MService API surface)
    # ==================================================================
    def _self_changed(self) -> None:
        super()._self_changed()
        if self.running:
            record = self.self_record()
            self._originate([UpdateOp("add", self.node_id, record.incarnation, record)])
