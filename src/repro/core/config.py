"""Configuration for the hierarchical membership service.

Includes a parser for the paper's configuration-file format (Fig. 7):

.. code-block:: text

    *SYSTEM
    SHM_KEY     = 999
    MAX_TTL     = 4
    MCAST_ADDR  = 239.255.0.2
    MCAST_PORT  = 10050
    MCAST_FREQ  = 1
    MAX_LOSS    = 5

    *SERVICE
    [HTTP]
        PARTITION = 0
        Port = 8080
    [Cache]
        PARTITION = 2

The ``*SYSTEM`` section maps onto :class:`HierarchicalConfig`; each
``[Name]`` block in ``*SERVICE`` becomes a
:class:`~repro.cluster.service.ServiceSpec` whose non-``PARTITION`` keys are
service parameters published as key-value pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Tuple

from repro.cluster.service import ServiceSpec
from repro.protocols.base import ProtocolConfig

__all__ = [
    "HierarchicalConfig",
    "parse_config_text",
    "render_config_text",
    "detector_overrides_from_env",
]


@dataclass(frozen=True)
class HierarchicalConfig(ProtocolConfig):
    """Tunables of the tree-based protocol.

    In addition to the common knobs (heartbeat period, ``max_loss``,
    member size), the hierarchical scheme has:

    ``base_channel``
        The single administrator-specified multicast channel; per-level
        channels are derived as ``f"{base_channel}/L{level}"`` with TTL
        ``level + 1`` ("All other channels can be derived from the base
        channel and a TTL value", Section 3.1.1).
    ``channel_overrides``
        "For maximum control flexibility, our implementation also allows
        administrators to specify multicast channels at each level" —
        a ``level -> channel name`` mapping taking precedence over the
        derived names.
    ``max_ttl``
        Group formation stops once the TTL reaches this bound.
    ``piggyback_depth``
        Each update message carries this many previous updates so the
        receiver tolerates that many consecutive losses (paper: 3).
    ``level_timeout_slope``
        Per-level growth of the declaration timeout: higher-level groups
        use larger timeouts so a lower-level re-election wins the race
        against the higher-level purge (Section 3.1.2, Timeout Protocol).
    ``election_delay``
        How long a node waits hearing no leader before contending.
    ``relayed_timeout_factor``
        Backstop lifetime of relayed entries, as a multiple of
        ``fail_timeout``; explicit remove-updates are the fast path.
    ``min_sync_interval``
        Rate limit for bootstrap/poll full-directory exchanges per peer.
    ``tombstone_quarantine_factor``
        How long (in multiples of ``fail_timeout``) a death certificate
        blocks re-adding the same incarnation of a removed node; long
        enough for the removal to converge cluster-wide, short enough not
        to delay partition healing.
    ``shm_key``
        Key of the shared-memory yellow page (used by the MClient API to
        find the daemon's directory, as in Fig. 9).
    """

    base_channel: str = "239.255.0.2:10050"
    channel_overrides: Tuple[Tuple[int, str], ...] = ()
    max_ttl: int = 4
    piggyback_depth: int = 3
    level_timeout_slope: float = 0.5
    election_delay: float = 2.5
    relayed_timeout_factor: float = 4.0
    min_sync_interval: float = 2.0
    tombstone_quarantine_factor: float = 2.0
    shm_key: int = 999

    # ------------------------------------------------------------------
    def channel(self, level: int) -> str:
        """Multicast channel name for groups at ``level``.

        Administrator overrides win; otherwise the name is derived from
        the base channel.
        """
        if level < 0 or level > self.max_level:
            raise ValueError(f"level {level} outside [0, {self.max_level}]")
        for lv, name in self.channel_overrides:
            if lv == level:
                return name
        return f"{self.base_channel}/L{level}"

    def with_channel_override(self, level: int, name: str) -> "HierarchicalConfig":
        """Return a config with one per-level channel pinned by the admin."""
        overrides = tuple((lv, nm) for lv, nm in self.channel_overrides if lv != level)
        return replace(self, channel_overrides=overrides + ((level, name),))

    def ttl_for_level(self, level: int) -> int:
        """TTL value used on the level's channel (level 0 -> TTL 1)."""
        return level + 1

    @property
    def max_level(self) -> int:
        """Highest group level (TTL of ``max_ttl``)."""
        return self.max_ttl - 1

    def level_timeout(self, level: int) -> float:
        """Silence threshold before a direct peer on ``level`` is dead.

        Grows with the level so a leader re-election at level *l* finishes
        before the level *l+1* group purges the subtree.
        """
        return self.fail_timeout * (1.0 + self.level_timeout_slope * level)

    @property
    def relayed_timeout(self) -> float:
        """Backstop lifetime of relayed (vouched-for) entries."""
        return self.fail_timeout * self.relayed_timeout_factor

    @property
    def tombstone_quarantine(self) -> float:
        """How long a death certificate blocks same-incarnation re-adds."""
        return self.fail_timeout * self.tombstone_quarantine_factor


def parse_config_text(text: str) -> Tuple[HierarchicalConfig, List[ServiceSpec]]:
    """Parse the Fig. 7 configuration format.

    Unknown ``*SYSTEM`` keys are rejected (configuration typos should fail
    loudly); service blocks accept arbitrary parameter keys.
    """
    system: Dict[str, str] = {}
    services: List[Tuple[str, Dict[str, str]]] = []
    section = None
    current_service: Dict[str, str] | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.upper() == "*SYSTEM":
            section = "system"
            continue
        if line.upper() == "*SERVICE":
            section = "service"
            continue
        if section == "service" and line.startswith("[") and line.endswith("]"):
            current_service = {}
            services.append((line[1:-1].strip(), current_service))
            continue
        if "=" not in line:
            raise ValueError(f"malformed config line: {raw_line!r}")
        key, _, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if section == "system":
            system[key.upper()] = value
        elif section == "service":
            if current_service is None:
                raise ValueError("service parameter outside a [Service] block")
            current_service[key] = value
        else:
            raise ValueError(f"config line before any section: {raw_line!r}")

    config = HierarchicalConfig()
    mapping = {
        "SHM_KEY": ("shm_key", int),
        "MAX_TTL": ("max_ttl", int),
        "MCAST_FREQ": ("heartbeat_period", lambda v: 1.0 / float(v)),
        "MAX_LOSS": ("max_loss", int),
        "MEMBER_SIZE": ("member_size", int),
        "PIGGYBACK": ("piggyback_depth", int),
        # Failure-detection strategy selection and knobs (repro.detect).
        "DETECTOR": ("detector", lambda v: v.strip().lower()),
        "PROBE_PERIOD": ("probe_period", float),
        "PROBE_TIMEOUT": ("probe_timeout", float),
        "INDIRECT_PROBES": ("indirect_probes", int),
        "SUSPICION_TIMEOUT": ("suspicion_timeout", float),
        "PHI_THRESHOLD": ("phi_threshold", float),
        "PHI_WINDOW": ("phi_window", int),
    }
    addr = system.pop("MCAST_ADDR", None)
    port = system.pop("MCAST_PORT", None)
    if addr is not None or port is not None:
        base = f"{addr or '239.255.0.2'}:{port or '10050'}"
        config = replace(config, base_channel=base)
    # Administrator-pinned per-level channels: CHANNEL_L<k> = <name>.
    overrides = []
    for key in sorted(k for k in system if k.startswith("CHANNEL_L")):
        level_str = key[len("CHANNEL_L") :]
        if not level_str.isdigit():
            raise ValueError(f"malformed channel override key {key!r}")
        overrides.append((int(level_str), system.pop(key)))
    if overrides:
        config = replace(config, channel_overrides=tuple(overrides))
    for key, value in system.items():
        if key not in mapping:
            raise ValueError(f"unknown *SYSTEM key {key!r}")
        attr, conv = mapping[key]
        config = replace(config, **{attr: conv(value)})
    _validate_detector(config.detector)

    specs: List[ServiceSpec] = []
    for name, params in services:
        params = dict(params)
        partition = params.pop("PARTITION", "0")
        specs.append(ServiceSpec.make(name, partition, **params))
    return config, specs


def _validate_detector(name: str) -> None:
    """Reject unknown detector names at parse time, not at node start."""
    from repro.detect import DETECTORS

    if name not in DETECTORS:
        raise ValueError(f"unknown DETECTOR {name!r}; pick one of {sorted(DETECTORS)}")


#: environment variables overriding the detector knobs (daemon runners);
#: variable -> (config attribute, converter).
_ENV_DETECTOR_KEYS: Dict[str, Tuple[str, object]] = {
    "REPRO_DETECTOR": ("detector", lambda v: v.strip().lower()),
    "REPRO_PROBE_PERIOD": ("probe_period", float),
    "REPRO_PROBE_TIMEOUT": ("probe_timeout", float),
    "REPRO_INDIRECT_PROBES": ("indirect_probes", int),
    "REPRO_SUSPICION_TIMEOUT": ("suspicion_timeout", float),
    "REPRO_PHI_THRESHOLD": ("phi_threshold", float),
    "REPRO_PHI_WINDOW": ("phi_window", int),
}


def detector_overrides_from_env(environ: Mapping[str, str]) -> Dict[str, object]:
    """Detector config overrides from ``REPRO_*`` environment variables.

    Returns ``{attribute: value}`` suitable for ``dataclasses.replace``;
    unknown detector names fail loudly here (same rule as the file parser).
    """
    overrides: Dict[str, object] = {}
    for var, (attr, conv) in _ENV_DETECTOR_KEYS.items():
        raw = environ.get(var)
        if raw is None or raw == "":
            continue
        overrides[attr] = conv(raw)  # type: ignore[operator]
    if "detector" in overrides:
        _validate_detector(str(overrides["detector"]))
    return overrides


def render_config_text(config: HierarchicalConfig, services: List[ServiceSpec]) -> str:
    """Inverse of :func:`parse_config_text` (round-trips the Fig. 7 format)."""
    addr, _, port = config.base_channel.partition(":")
    lines = [
        "*SYSTEM",
        f"SHM_KEY = {config.shm_key}",
        f"MAX_TTL = {config.max_ttl}",
        f"MCAST_ADDR = {addr}",
        f"MCAST_PORT = {port}",
        f"MCAST_FREQ = {1.0 / config.heartbeat_period:g}",
        f"MAX_LOSS = {config.max_loss}",
    ]
    # Detector block: emitted only when something differs from the default
    # strategy, so pre-existing configs round-trip to identical text.
    defaults = HierarchicalConfig()
    if config.detector != defaults.detector:
        lines.append(f"DETECTOR = {config.detector}")
    if config.probe_period != defaults.probe_period:
        lines.append(f"PROBE_PERIOD = {config.probe_period:g}")
    if config.probe_timeout != defaults.probe_timeout:
        lines.append(f"PROBE_TIMEOUT = {config.probe_timeout:g}")
    if config.indirect_probes != defaults.indirect_probes:
        lines.append(f"INDIRECT_PROBES = {config.indirect_probes}")
    if config.suspicion_timeout != defaults.suspicion_timeout:
        lines.append(f"SUSPICION_TIMEOUT = {config.suspicion_timeout:g}")
    if config.phi_threshold != defaults.phi_threshold:
        lines.append(f"PHI_THRESHOLD = {config.phi_threshold:g}")
    if config.phi_window != defaults.phi_window:
        lines.append(f"PHI_WINDOW = {config.phi_window}")
    for level, name in sorted(config.channel_overrides):
        lines.append(f"CHANNEL_L{level} = {name}")
    lines += ["", "*SERVICE"]
    for spec in services:
        lines.append(f"[{spec.name}]")
        lines.append(f"    PARTITION = {spec.partition_spec()}")
        for key, value in sorted(spec.params.items()):
            lines.append(f"    {key} = {value}")
    return "\n".join(lines) + "\n"
