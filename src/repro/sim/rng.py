"""Named, seeded random-number streams.

Every stochastic decision in a simulation (packet loss, gossip peer choice,
jitter, service times) draws from a stream obtained by name from a
:class:`RngRegistry`.  Stream seeds are derived deterministically from the
registry's root seed and the stream name, so

* the same ``(seed, name)`` always yields the same sequence, and
* adding a new consumer of randomness does not perturb existing streams —
  which keeps regression comparisons between protocol variants meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for deterministic per-purpose :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry whose root seed depends on ``name``.

        Used to give each node its own registry while staying reproducible.
        """
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
