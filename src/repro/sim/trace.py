"""Structured event tracing.

The experiment harness (:mod:`repro.metrics`) reconstructs failure-detection
and view-convergence times from trace records emitted by protocol nodes —
exactly how the paper did it ("each node dumps its membership directory to a
disk file when there is a change", Section 6.4), except our records carry
exact virtual timestamps so no clock-synchronisation start-message dance is
needed.

Storage and queries
-------------------
Records are kept both in one append-only list and in a **per-kind index**,
so ``records(kind=...)`` — the query every collector in
:mod:`repro.metrics.collectors` and the chaos invariant checker lean on —
no longer linear-scans the full trace.  Emit times are monotone during a
simulation run, which additionally lets time-window filters binary-search
the kind lists; manually emitted out-of-order times (tests) fall back to a
linear scan automatically.

For sweeps too large to retain in memory, construct the trace with
``retain=False`` and attach a streaming sink
(:mod:`repro.obs.sinks`): every record still reaches subscribers/sinks,
but nothing accumulates in the process (see docs/OBSERVABILITY.md).

Subscriber contract
-------------------
Subscribers see **every enabled emit**, before the ``kinds`` retention
filter is applied: ``kinds`` controls what the in-memory trace *stores*,
not what live collectors observe.  (A previous revision filtered first,
which silently starved collectors whenever a sweep restricted kinds.)
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Virtual time of the event.
    kind:
        Event category, e.g. ``"member_down"``, ``"member_up"``,
        ``"leader_elected"``, ``"packet_rx"``.
    node:
        Identifier of the node that observed/emitted the event.
    data:
        Free-form payload; keys depend on ``kind``.
    """

    time: float
    kind: str
    node: Optional[str]
    data: Dict[str, Any] = field(default_factory=dict)


def _time_of(rec: TraceRecord) -> float:
    return rec.time


class Trace:
    """Append-only in-memory trace with indexed filtered queries.

    Tracing can be disabled wholesale (``enabled=False``), restricted to a
    set of kinds (``kinds=...``), or switched to pure streaming
    (``retain=False``), which the large Fig. 11 sweeps use to avoid
    accumulating millions of packet records.
    """

    def __init__(
        self,
        enabled: bool = True,
        kinds: Optional[set[str]] = None,
        retain: bool = True,
    ) -> None:
        self.enabled = enabled
        self.kinds = kinds
        self.retain = retain
        self._records: List[TraceRecord] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # True while emit times have been non-decreasing; gates the
        # binary-searched time windows in records().
        self._monotonic = True
        self._last_time = float("-inf")

    def emit(self, time: float, kind: str, node: Optional[str] = None, **data: Any) -> None:
        """Record an event (no-op when disabled).

        Subscribers are notified of every enabled emit *before* the
        ``kinds`` retention filter decides whether the record is stored —
        a kind-restricted sweep must not starve live collectors.
        """
        if not self.enabled:
            return
        keep = self.retain and (self.kinds is None or kind in self.kinds)
        subs = self._subscribers
        if not keep and not subs:
            return
        rec = TraceRecord(time, kind, node, data)
        for sub in subs:
            sub(rec)
        if keep:
            self._records.append(rec)
            bucket = self._by_kind.get(kind)
            if bucket is None:
                self._by_kind[kind] = [rec]
            else:
                bucket.append(rec)
            if time < self._last_time:
                self._monotonic = False
            else:
                self._last_time = time

    def wants(self, kind: str) -> bool:
        """True when an emit of ``kind`` would reach storage or a subscriber.

        The n²-scale protocol paths (one ``member_up`` per node pair
        during formation) call this before building the emit's kwargs, so
        a disabled/streaming-without-sinks trace costs one predicate
        instead of a discarded record.
        """
        if not self.enabled:
            return False
        if self._subscribers:
            return True
        return self.retain and (self.kinds is None or kind in self.kinds)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every future record (live metric collectors)."""
        self._subscribers.append(fn)

    def attach_sink(self, sink: Callable[[TraceRecord], None]) -> Callable[[TraceRecord], None]:
        """Stream every future record into ``sink`` (returns it unchanged).

        Sinks are plain subscribers; see :mod:`repro.obs.sinks` for the
        JSONL and ring-buffer implementations.  Combine with
        ``retain=False`` for unbounded runs.
        """
        self.subscribe(sink)
        return sink

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def _kind_slice(
        self, kind: str, since: Optional[float], until: Optional[float]
    ) -> List[TraceRecord]:
        """Records of ``kind`` within the window, via the index."""
        bucket = self._by_kind.get(kind)
        if not bucket:
            return []
        lo, hi = 0, len(bucket)
        if self._monotonic:
            # Kind lists inherit the global emit order, so a monotone
            # trace can bisect the window instead of scanning.
            if since is not None:
                lo = bisect_left(bucket, since, key=_time_of)
            if until is not None:
                hi = bisect_right(bucket, until, key=_time_of)
            return bucket[lo:hi]
        return [
            r
            for r in bucket
            if (since is None or r.time >= since) and (until is None or r.time <= until)
        ]

    def records(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given filters, in time order."""
        if kind is not None:
            selected = self._kind_slice(kind, since, until)
            if node is None:
                return list(selected)
            return [r for r in selected if r.node == node]
        out = []
        for rec in self._records:
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def count(self, kind: str) -> int:
        """Number of stored records of ``kind`` (O(1))."""
        bucket = self._by_kind.get(kind)
        return len(bucket) if bucket else 0

    def kind_names(self) -> List[str]:
        """Kinds with at least one stored record, in first-seen order."""
        return [k for k, bucket in self._by_kind.items() if bucket]

    def _match(
        self, kind: str, node: Optional[str], filters: Dict[str, Any], reverse: bool
    ) -> Optional[TraceRecord]:
        bucket = self._by_kind.get(kind)
        if not bucket:
            return None
        it = reversed(bucket) if reverse else iter(bucket)
        for rec in it:
            if node is not None and rec.node != node:
                continue
            if all(rec.data.get(k) == v for k, v in filters.items()):
                return rec
        return None

    def first(
        self, kind: str, node: Optional[str] = None, **filters: Any
    ) -> Optional[TraceRecord]:
        """Earliest record of ``kind`` whose data matches ``filters``.

        ``node=`` filters the *emitting* node, consistent with
        :meth:`records` — it is not a data filter.  (It used to be
        silently matched against ``data["node"]``, which no record
        carries, so ``first("member_down", node=...)`` always returned
        ``None``.)
        """
        return self._match(kind, node, filters, reverse=False)

    def last(
        self, kind: str, node: Optional[str] = None, **filters: Any
    ) -> Optional[TraceRecord]:
        """Latest record of ``kind`` whose data matches ``filters``.

        ``node=`` filters the emitting node, like :meth:`first`.
        """
        return self._match(kind, node, filters, reverse=True)

    def clear(self) -> None:
        self._records.clear()
        self._by_kind.clear()
        self._monotonic = True
        self._last_time = float("-inf")
