"""Structured event tracing.

The experiment harness (:mod:`repro.metrics`) reconstructs failure-detection
and view-convergence times from trace records emitted by protocol nodes —
exactly how the paper did it ("each node dumps its membership directory to a
disk file when there is a change", Section 6.4), except our records carry
exact virtual timestamps so no clock-synchronisation start-message dance is
needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Trace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event.

    Attributes
    ----------
    time:
        Virtual time of the event.
    kind:
        Event category, e.g. ``"member_down"``, ``"member_up"``,
        ``"leader_elected"``, ``"packet_rx"``.
    node:
        Identifier of the node that observed/emitted the event.
    data:
        Free-form payload; keys depend on ``kind``.
    """

    time: float
    kind: str
    node: Optional[str]
    data: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only in-memory trace with cheap filtered queries.

    Tracing can be disabled wholesale (``enabled=False``) or restricted to a
    set of kinds, which the large Fig. 11 sweeps use to avoid accumulating
    millions of packet records.
    """

    def __init__(self, enabled: bool = True, kinds: Optional[set[str]] = None) -> None:
        self.enabled = enabled
        self.kinds = kinds
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, kind: str, node: Optional[str] = None, **data: Any) -> None:
        """Record an event (no-op when disabled or kind-filtered out)."""
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        rec = TraceRecord(time, kind, node, data)
        self._records.append(rec)
        for sub in self._subscribers:
            sub(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every future record (live metric collectors)."""
        self._subscribers.append(fn)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        kind: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Return records matching all the given filters, in time order."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            out.append(rec)
        return out

    def first(self, kind: str, **filters: Any) -> Optional[TraceRecord]:
        """Earliest record of ``kind`` whose data matches ``filters``."""
        for rec in self._records:
            if rec.kind != kind:
                continue
            if all(rec.data.get(k) == v for k, v in filters.items()):
                return rec
        return None

    def last(self, kind: str, **filters: Any) -> Optional[TraceRecord]:
        """Latest record of ``kind`` whose data matches ``filters``."""
        for rec in reversed(self._records):
            if rec.kind != kind:
                continue
            if all(rec.data.get(k) == v for k, v in filters.items()):
                return rec
        return None

    def clear(self) -> None:
        self._records.clear()
