"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a priority queue of scheduled
callbacks.  :meth:`Simulator.run` pops events in ``(time, priority, seq)``
order and executes them until the queue drains, a time horizon is reached, or
a stop is requested.

The kernel is deliberately small: multicast fabrics, transports, protocol
nodes and experiment harnesses are all built on these few primitives.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Simulator", "ScheduledEvent", "RecurringTimer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Cancellation marks the entry dead rather than removing it from the heap;
    the run loop skips dead entries when they surface.  This keeps both
    :meth:`Simulator.call_at` and :meth:`cancel` cheap, which matters because
    heartbeat-timeout style protocols cancel timers constantly.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "sort_key")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Precomputed so heap sifts compare one tuple instead of building
        # two on every __lt__ — the single hottest comparison in the kernel.
        self.sort_key = (time, priority, seq)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True
        # Drop references eagerly: a cancelled timer should not pin its
        # closure (and transitively a dead node's state) until it surfaces.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} prio={self.priority} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class RecurringTimer:
    """Handle for a :meth:`Simulator.call_every` periodic callback.

    One timer owns ONE :class:`ScheduledEvent` that is re-keyed and pushed
    back onto the heap after each firing, so a periodic tick costs zero
    allocations per period (no new closure, no new handle) — the point of
    the primitive for heartbeat/status-tracker ticks that previously
    re-created both every period.

    Ordering contract: the next occurrence's sequence number is allocated
    *after* the callback body runs, exactly like the legacy idiom of a
    callback whose last statement is ``sim.call_after(period, itself)``.
    Same-seed runs are therefore trace-identical whichever form is used.
    """

    __slots__ = ("_sim", "period", "fn", "args", "cancelled", "_ev")

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        first_at: float,
        priority: int,
    ) -> None:
        self._sim = sim
        self.period = period
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._ev = sim.call_at(first_at, self._fire, priority=priority)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        if self.cancelled:
            # The callback cancelled its own timer: do not re-arm.
            return
        sim = self._sim
        ev = self._ev
        ev.time = sim._now + self.period
        ev.seq = next(sim._seq)
        ev.sort_key = (ev.time, ev.priority, ev.seq)
        heapq.heappush(sim._queue, ev)

    def cancel(self) -> None:
        """Stop firing.  Idempotent; safe from inside the callback."""
        self.cancelled = True
        # Break the reference cycle and let the queued entry (if any) be
        # skipped by the run loop; fn/args are dropped like ScheduledEvent's.
        self._ev.cancel()
        self.fn = _noop
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<RecurringTimer period={self.period:.6f} {state}>"


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Notes
    -----
    Events scheduled for the same instant fire in ``(priority, seq)`` order
    where ``seq`` is the global scheduling order.  Lower priority values fire
    first; the default priority is 0.  Protocol code should not rely on
    priorities except to model genuinely ordered mechanisms (e.g. "deliver
    the packet before the timeout that was armed later").
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for perf accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) entries; O(1)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a :class:`ScheduledEvent` that may be cancelled.  Scheduling
        strictly in the past raises :class:`SimulationError`; scheduling at
        exactly ``now`` is allowed and fires after currently-executing work.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        ev = ScheduledEvent(float(time), priority, next(self._seq), fn, args)
        heapq.heappush(self._queue, ev)
        return ev

    def call_after(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args, priority=priority)

    def call_every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        first_delay: Optional[float] = None,
        priority: int = 0,
    ) -> RecurringTimer:
        """Schedule ``fn(*args)`` every ``period`` seconds of virtual time.

        ``first_delay`` defaults to ``period``; pass a different value to
        phase-shift the first firing (e.g. a randomised heartbeat phase).
        Returns a :class:`RecurringTimer` whose ``cancel()`` stops the
        series.  After each firing the *same* event object is re-keyed and
        pushed back, so steady-state ticking allocates nothing per period.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period!r}")
        delay = period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"negative first_delay {first_delay!r}")
        return RecurringTimer(self, period, fn, args, self._now + delay, priority)

    def call_at_batch(
        self,
        time: float,
        fn: Callable[..., Any],
        batch: Any,
        *shared: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(batch, *shared)`` at ``time`` as ONE queue entry.

        The fan-out primitive: a sender with *n* same-instant receivers
        passes them as a single batch, so the heap sees one push, one pop
        and one O(log n) sift instead of *n* — the callee loops over the
        batch itself.  Semantically equivalent to ``call_at`` with the same
        arguments, but skips the defensive time checks: callers are batch
        schedulers that already validated a non-negative delay.
        """
        ev = ScheduledEvent(time, priority, next(self._seq), fn, (batch, *shared))
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains or a limit is hit.

        Parameters
        ----------
        until:
            Inclusive time horizon.  Events scheduled strictly after
            ``until`` remain queued and the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            queue = self._queue
            while queue and not self._stopped:
                ev = queue[0]
                if ev.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(queue)
                self._now = ev.time
                ev.fn(*ev.args)
                self._events_executed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and not self._stopped and self._now < until:
                # Advance the clock to `until` iff no live work at or
                # before `until` remains queued.  Cancelled heads are popped
                # first so the check is exact — a dead entry must neither
                # mask pending work (max_events break with live events
                # behind a cancelled head) nor hold the clock back.
                while queue and queue[0].cancelled:
                    heapq.heappop(queue)
                if not queue or queue[0].time > until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fn(*ev.args)
            self._events_executed += 1
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
