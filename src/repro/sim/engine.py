"""The discrete-event simulator core.

A :class:`Simulator` owns a virtual clock and a queue of scheduled
callbacks.  :meth:`Simulator.run` pops events in ``(time, priority, seq)``
order and executes them until the queue drains, a time horizon is reached, or
a stop is requested.

Two interchangeable queue backends implement that contract:

* the **legacy binary heap** — one global heap of events, lazy deletion;
* the **hierarchical timer wheel** (default, ``use_timer_wheel``) — events
  are bucketed by time quantum into fine slots (1/256 s), a coarse
  one-second ring, or a far-future overflow heap, and only the events of
  the slot currently being drained live in a tiny "ready" heap.  Scheduling
  into an occupied slot is an O(1) append instead of an O(log n) sift over
  the whole pending set, which is what keeps per-event cost flat as the
  heartbeat/purge timer population grows with cluster size.

Both backends execute the exact same ``(time, priority, seq)`` total order,
so seeded runs are byte-identical whichever is active (see
``tests/sim/test_timer_wheel.py`` and the determinism guard).

The kernel is deliberately small: multicast fabrics, transports, protocol
nodes and experiment harnesses are all built on these few primitives.
"""

from __future__ import annotations

import heapq
import itertools
import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "RecurringTimer",
    "TimerWheel",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, re-running, ...)."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports O(1) cancellation.

    Cancellation marks the entry dead rather than removing it from the
    queue; the run loop skips dead entries when they surface.  This keeps
    both :meth:`Simulator.call_at` and :meth:`cancel` cheap, which matters
    because heartbeat-timeout style protocols cancel timers constantly.

    ``owned`` marks kernel-owned entries (batch deliveries whose handle the
    caller promises not to retain): after firing, the run loop recycles the
    object through the simulator's free-list instead of leaving it to the
    allocator.  An event is only ever recycled *after* it has surfaced from
    the queue — never at ``cancel()`` time — so a stale handle can never
    alias a reused entry that is still queued (the classic lazy-deletion
    blind spot).
    """

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "cancelled", "sort_key", "owned",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        # An opaque same-instant tiebreaker: a monotonic int under the
        # plain kernel, a derivation-tree tuple under the sharded kernel
        # (repro.shard.engine).  Only ordering is ever relied on.
        seq: Any,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.owned = False
        # Precomputed so heap sifts compare one tuple instead of building
        # two on every __lt__ — the single hottest comparison in the kernel.
        self.sort_key = (time, priority, seq)

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self.cancelled = True
        # Drop references eagerly: a cancelled timer should not pin its
        # closure (and transitively a dead node's state) until it surfaces.
        self.fn = _noop
        self.args = ()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} prio={self.priority} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


#: Fine slots per second (and its log2).  1/256 s ≈ 3.9 ms resolution: well
#: under the smallest delays the fabrics draw, so same-instant bursts share
#: one slot while distinct protocol deadlines almost never collide.
_SHIFT = 8
_FINE = 1 << _SHIFT
_G = 1.0 / _FINE
#: Fine-slot horizon: 8 s of 1/256 s slots ahead of the cursor.
_NEAR_SLOTS = 2048.0
#: Coarse-ring horizon in whole seconds ahead of the cursor's second.
_COARSE_SPAN = 128.0
#: Beyond this virtual time, slot arithmetic would lose integer exactness
#: (and ``inf`` is legal): such events bypass the wheel entirely.
_FAR_DIRECT = float(1 << 40)
#: Free-list bound: recycled event objects kept around for reuse.
_FREE_MAX = 4096


class TimerWheel:
    """Hierarchical slot-based timer queue with a matured-event heap.

    Layout
    ------
    * ``ready`` — min-heap (by ``sort_key``) of events whose slot has been
      drained; the run loop pops exclusively from here.
    * ``near`` — dict of fine slot index (``floor(t * 256)``) → event list,
      for events within 8 s of the cursor; ``near_heap`` tracks occupied
      slot indices (lazily deduplicated ints, far cheaper to sift than
      events).
    * ``coarse`` — dict of whole second → event list for events within
      128 s; a bucket is exploded into fine slots when the cursor nears it.
    * ``far`` — plain event heap for everything beyond the coarse horizon
      (long purge backstops, ``inf`` sentinels).

    Correctness invariant: every pending event with fine slot ≤ ``cursor``
    is in ``ready``; every other lane only holds slots > ``cursor``.  An
    event in ``ready`` therefore has ``time < (cursor + 1)/256`` while any
    undrained event has ``time ≥ (cursor + 1)/256`` — so ``ready[0]`` is
    always the global minimum and the exact ``(time, priority, seq)`` order
    of the legacy heap is reproduced bit-for-bit.
    """

    __slots__ = (
        "ready", "near", "near_heap", "coarse", "coarse_heap", "far", "cursor",
    )

    def __init__(self, now: float) -> None:
        self.ready: List[ScheduledEvent] = []
        self.near: dict[int, List[ScheduledEvent]] = {}
        self.near_heap: List[int] = []
        self.coarse: dict[int, List[ScheduledEvent]] = {}
        self.coarse_heap: List[int] = []
        self.far: List[ScheduledEvent] = []
        #: All slots ≤ cursor have been drained into ``ready``.
        self.cursor = int(now * _FINE)

    def pending(self) -> int:
        """Queued (possibly cancelled) entries.  O(occupied slots): this is
        a sampled observability figure, not hot-path state, so the wheel
        does not pay a per-event counter for it."""
        return (
            len(self.ready)
            + sum(map(len, self.near.values()))
            + sum(map(len, self.coarse.values()))
            + len(self.far)
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, ev: ScheduledEvent) -> None:
        """File ``ev`` into the lane its time falls in.  O(1) amortised."""
        t = ev.time
        c = self.cursor
        ts = t * 256.0  # exact: multiplication by a power of two
        if ts < c + 1.0:
            # Slot already drained (same-tick scheduling): matured lane.
            heappush(self.ready, ev)
        elif ts < c + _NEAR_SLOTS:
            s = int(ts)
            near = self.near
            lst = near.get(s)
            if lst is None:
                near[s] = [ev]
                heappush(self.near_heap, s)
            else:
                lst.append(ev)
        elif t < (c >> _SHIFT) + _COARSE_SPAN and t < _FAR_DIRECT:
            s = int(t)
            coarse = self.coarse
            lst = coarse.get(s)
            if lst is None:
                coarse[s] = [ev]
                heappush(self.coarse_heap, s)
            else:
                lst.append(ev)
        else:
            heappush(self.far, ev)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def advance(self) -> bool:
        """Drain the earliest undrained slot's live events into ``ready``.

        Precondition: ``ready`` is empty.  Returns ``False`` when nothing
        is pending anywhere; otherwise ``ready`` is non-empty afterwards.
        """
        near, near_heap = self.near, self.near_heap
        coarse, coarse_heap = self.coarse, self.coarse_heap
        far, ready = self.far, self.ready
        while True:
            while near_heap and near_heap[0] not in near:
                heappop(near_heap)  # stale index: slot drained earlier
            ns = near_heap[0] if near_heap else None
            while coarse_heap and coarse_heap[0] not in coarse:
                heappop(coarse_heap)
            cs = coarse_heap[0] if coarse_heap else None
            if cs is not None and (
                (ns is None or (cs << _SHIFT) <= ns)
                and (not far or cs <= far[0].time)
            ):
                # The coarse bucket may hold fine slots earlier than any
                # other candidate: explode it into the near ring first.
                heappop(coarse_heap)
                for bev in coarse.pop(cs):
                    s = int(bev.time * 256.0)
                    lst = near.get(s)
                    if lst is None:
                        near[s] = [bev]
                        heappush(near_heap, s)
                    else:
                        lst.append(bev)
                continue
            if ns is None:
                if not far:
                    return False
                f0 = far[0].time
                items = []
                if f0 >= _FAR_DIRECT:
                    # Beyond slot arithmetic (huge horizon or inf): take
                    # the equal-time run directly; sort_key ordering within
                    # it is preserved by the heap pops.
                    while far and far[0].time == f0:
                        items.append(heappop(far))
                else:
                    target = int(f0 * 256.0)
                    bound = (target + 1) * _G
                    while far and far[0].time < bound:
                        items.append(heappop(far))
                    self.cursor = target
            else:
                if far and far[0].time < ns * _G:
                    target = int(far[0].time * 256.0)
                    items = []
                else:
                    target = ns
                    heappop(near_heap)
                    items = near.pop(ns)
                bound = (target + 1) * _G
                while far and far[0].time < bound:
                    items.append(heappop(far))
                self.cursor = target
            live = [ev for ev in items if not ev.cancelled]
            if live:
                ready[:] = live
                heapify(ready)
                return True
            # Every entry in the slot was cancelled: keep advancing.

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None.  Drops cancelled heads."""
        ready = self.ready
        while True:
            while ready and ready[0].cancelled:
                heappop(ready)
            if ready:
                return ready[0].time
            if not self.advance():
                return None

    def drain_pending(self) -> List[ScheduledEvent]:
        """Remove and return all live pending events (backend migration)."""
        out = [ev for ev in self.ready if not ev.cancelled]
        for lst in self.near.values():
            out.extend(ev for ev in lst if not ev.cancelled)
        for lst in self.coarse.values():
            out.extend(ev for ev in lst if not ev.cancelled)
        out.extend(ev for ev in self.far if not ev.cancelled)
        self.ready.clear()
        self.near.clear()
        self.near_heap.clear()
        self.coarse.clear()
        self.coarse_heap.clear()
        self.far.clear()
        return out


class RecurringTimer:
    """Handle for a :meth:`Simulator.call_every` periodic callback.

    One timer owns ONE :class:`ScheduledEvent` that is re-keyed and filed
    back into the queue after each firing, so a periodic tick costs zero
    allocations per period (no new closure, no new handle) — the point of
    the primitive for heartbeat/status-tracker ticks that previously
    re-created both every period.

    Ordering contract: the next occurrence's sequence number is allocated
    *after* the callback body runs, exactly like the legacy idiom of a
    callback whose last statement is ``sim.call_after(period, itself)``.
    Same-seed runs are therefore trace-identical whichever form is used.

    Re-arm safety: the event is re-filed only from :meth:`_fire`, i.e.
    strictly after it surfaced from the queue — so the one event object can
    never be queued twice, and a timer cancelled and replaced within the
    same tick cannot make the replacement fire twice (regression-tested
    against both queue backends).
    """

    __slots__ = ("_sim", "period", "fn", "args", "cancelled", "_ev")

    def __init__(
        self,
        sim: "Simulator",
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        first_at: float,
        priority: int,
    ) -> None:
        self._sim = sim
        self.period = period
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._ev = sim.call_at(first_at, self._fire, priority=priority)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        if self.cancelled:
            # The callback cancelled its own timer: do not re-arm.
            return
        sim = self._sim
        ev = self._ev
        ev.time = sim._now + self.period
        ev.seq = next(sim._seq)
        ev.sort_key = (ev.time, ev.priority, ev.seq)
        wheel = sim._wheel
        if wheel is None:
            heapq.heappush(sim._queue, ev)
        else:
            wheel.schedule(ev)

    def cancel(self) -> None:
        """Stop firing.  Idempotent; safe from inside the callback."""
        self.cancelled = True
        # Break the reference cycle and let the queued entry (if any) be
        # skipped by the run loop; fn/args are dropped like ScheduledEvent's.
        self._ev.cancel()
        self.fn = _noop
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<RecurringTimer period={self.period:.6f} {state}>"


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.
    use_timer_wheel:
        Select the hierarchical timer-wheel backend (default) or the legacy
        single binary heap.  Pure A/B switch: both backends execute the
        identical event order (negative ``start_time`` falls back to the
        heap — the wheel's slot arithmetic assumes a non-negative clock).

    Notes
    -----
    Events scheduled for the same instant fire in ``(priority, seq)`` order
    where ``seq`` is the global scheduling order.  Lower priority values fire
    first; the default priority is 0.  Protocol code should not rely on
    priorities except to model genuinely ordered mechanisms (e.g. "deliver
    the packet before the timeout that was armed later").
    """

    def __init__(self, start_time: float = 0.0, use_timer_wheel: bool = True) -> None:
        self._now = float(start_time)
        self._queue: list[ScheduledEvent] = []
        self._wheel: Optional[TimerWheel] = None
        if use_timer_wheel and self._now >= 0.0:
            self._wheel = TimerWheel(self._now)
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._free: list[ScheduledEvent] = []
        #: The event whose callback is currently executing (None between
        #: events).  The sharded kernel derives deterministic child event
        #: keys from it; the base simulator only maintains it.
        self._current: Optional[ScheduledEvent] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for perf accounting)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) entries; O(1)."""
        wheel = self._wheel
        return wheel.pending() if wheel is not None else len(self._queue)

    # ------------------------------------------------------------------
    # Backend selection
    # ------------------------------------------------------------------
    @property
    def use_timer_wheel(self) -> bool:
        """True when the timer-wheel backend is active."""
        return self._wheel is not None

    @use_timer_wheel.setter
    def use_timer_wheel(self, enabled: bool) -> None:
        if enabled == (self._wheel is not None):
            return
        if self._running:
            raise SimulationError("cannot switch queue backend mid-run")
        if enabled:
            if self._now < 0.0:
                raise SimulationError(
                    "timer wheel requires a non-negative virtual clock"
                )
            wheel = TimerWheel(self._now)
            for ev in self._queue:
                if not ev.cancelled:
                    wheel.schedule(ev)
            self._queue = []
            self._wheel = wheel
        else:
            queue = self._wheel.drain_pending()
            heapq.heapify(queue)
            self._queue = queue
            self._wheel = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Returns a :class:`ScheduledEvent` that may be cancelled.  Scheduling
        strictly in the past raises :class:`SimulationError`; scheduling at
        exactly ``now`` is allowed and fires after currently-executing work.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        ev = ScheduledEvent(float(time), priority, next(self._seq), fn, args)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, ev)
        else:
            wheel.schedule(ev)
        return ev

    def call_after(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args, priority=priority)

    def call_every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        first_delay: Optional[float] = None,
        priority: int = 0,
    ) -> RecurringTimer:
        """Schedule ``fn(*args)`` every ``period`` seconds of virtual time.

        ``first_delay`` defaults to ``period``; pass a different value to
        phase-shift the first firing (e.g. a randomised heartbeat phase).
        Returns a :class:`RecurringTimer` whose ``cancel()`` stops the
        series.  After each firing the *same* event object is re-keyed and
        filed back, so steady-state ticking allocates nothing per period.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period!r}")
        delay = period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"negative first_delay {first_delay!r}")
        return RecurringTimer(self, period, fn, args, self._now + delay, priority)

    def call_at_batch(
        self,
        time: float,
        fn: Callable[..., Any],
        batch: Any,
        *shared: Any,
        priority: int = 0,
        owned: bool = False,
    ) -> ScheduledEvent:
        """Schedule ``fn(batch, *shared)`` at ``time`` as ONE queue entry.

        The fan-out primitive: a sender with *n* same-instant receivers
        passes them as a single batch, so the queue sees one entry instead
        of *n* — the callee loops over the batch itself.  Semantically
        equivalent to ``call_at`` with the same arguments, but skips the
        defensive time checks: callers are batch schedulers that already
        validated a non-negative delay.

        ``owned=True`` declares that the caller discards the returned
        handle (it remains valid to cancel *before* the event fires, but
        must not be retained past that): the kernel then recycles the event
        object through a free-list after it fires, eliminating the per-batch
        allocation.  The delivery fabrics pass ``owned=True``.
        """
        seq = next(self._seq)
        free = self._free
        if owned and free:
            ev = free.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = (batch, *shared)
            ev.cancelled = False
            ev.sort_key = (time, priority, seq)
        else:
            ev = ScheduledEvent(time, priority, seq, fn, (batch, *shared))
            ev.owned = owned
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, ev)
        else:
            wheel.schedule(ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Execute events until the queue drains or a limit is hit.

        Parameters
        ----------
        until:
            Inclusive time horizon.  Events scheduled strictly after
            ``until`` remain queued and the clock is advanced to ``until``.
        max_events:
            Safety valve for runaway simulations.

        Returns
        -------
        float
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        self._stopped = False
        try:
            if self._wheel is None:
                return self._run_heap(until, max_events)
            return self._run_wheel(until, max_events)
        finally:
            self._running = False

    def _run_heap(self, until: Optional[float], max_events: Optional[int]) -> float:
        executed = 0
        queue = self._queue
        free = self._free
        while queue and not self._stopped:
            ev = queue[0]
            if ev.cancelled:
                heapq.heappop(queue)
                continue
            if until is not None and ev.time > until:
                break
            heapq.heappop(queue)
            self._now = ev.time
            self._current = ev
            ev.fn(*ev.args)
            self._current = None
            self._events_executed += 1
            if ev.owned and not ev.cancelled:
                ev.fn = _noop
                ev.args = ()
                if len(free) < _FREE_MAX:
                    free.append(ev)
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._stopped and self._now < until:
            # Advance the clock to `until` iff no live work at or
            # before `until` remains queued.  Cancelled heads are popped
            # first so the check is exact — a dead entry must neither
            # mask pending work (max_events break with live events
            # behind a cancelled head) nor hold the clock back.
            while queue and queue[0].cancelled:
                heapq.heappop(queue)
            if not queue or queue[0].time > until:
                self._now = until
        return self._now

    def _run_wheel(self, until: Optional[float], max_events: Optional[int]) -> float:
        executed = 0
        wheel = self._wheel
        assert wheel is not None
        ready = wheel.ready
        advance = wheel.advance
        free = self._free
        while not self._stopped:
            if not ready and not advance():
                break
            ev = ready[0]
            if ev.cancelled:
                heappop(ready)
                continue
            if until is not None and ev.time > until:
                break
            heappop(ready)
            self._now = ev.time
            self._current = ev
            ev.fn(*ev.args)
            self._current = None
            self._events_executed += 1
            if ev.owned and not ev.cancelled:
                ev.fn = _noop
                ev.args = ()
                if len(free) < _FREE_MAX:
                    free.append(ev)
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._stopped and self._now < until:
            # Same exactness contract as the heap tail; peek() drops
            # cancelled heads (and may pre-drain a slot, which is safe:
            # matured events keep their exact keys in the ready heap).
            nxt = wheel.peek()
            if nxt is None or nxt > until:
                self._now = until
        return self._now

    def run_window(self, end: float) -> float:
        """Drain every event with ``time < end``, then set the clock to ``end``.

        The window-bounded primitive of the conservative parallel kernel:
        a shard runs its local queue up to (but excluding) the barrier
        time, after which cross-shard traffic produced inside the window
        is exchanged and merged.  Events scheduled at exactly ``end``
        belong to the *next* window — barrier-injected deliveries landing
        precisely on a window edge therefore execute after that barrier,
        identically for every shard count.
        """
        limit = math.nextafter(end, -math.inf)
        if limit > self._now:
            self.run(until=limit)
        if end > self._now:
            self._now = end
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event.  Returns False if none remain."""
        wheel = self._wheel
        if wheel is None:
            while self._queue:
                ev = heapq.heappop(self._queue)
                if ev.cancelled:
                    continue
                self._now = ev.time
                self._current = ev
                ev.fn(*ev.args)
                self._current = None
                self._events_executed += 1
                return True
            return False
        ready = wheel.ready
        while True:
            if not ready and not wheel.advance():
                return False
            ev = heappop(ready)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._current = ev
            ev.fn(*ev.args)
            self._current = None
            self._events_executed += 1
            return True

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        wheel = self._wheel
        if wheel is not None:
            return wheel.peek()
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
