"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  The generator ``yield``s
awaitables — :class:`Timeout` for a delay, :class:`Event` for a one-shot
signal, or another :class:`Process` to join it — and the kernel resumes it
when the awaitable fires.  This mirrors the thread-per-role structure of the
paper's C++ daemon (Announcer, Receiver, StatusTracker, Informer, Contender)
without real threads.

Example
-------
>>> from repro.sim import Simulator, Process, Timeout
>>> sim = Simulator()
>>> ticks = []
>>> def clock(sim):
...     while True:
...         yield Timeout(1.0)
...         ticks.append(sim.now)
>>> p = Process(sim, clock(sim), name="clock")
>>> _ = sim.run(until=3.5)
>>> ticks
[1.0, 2.0, 3.0]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.engine import ScheduledEvent, SimulationError, Simulator

__all__ = ["Process", "Timeout", "Event", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Awaitable delay of ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Event:
    """One-shot signalling primitive.

    A process yielding a pending :class:`Event` suspends until some other
    code calls :meth:`succeed`.  The value passed to :meth:`succeed` becomes
    the value of the ``yield`` expression.  Succeeding twice is an error;
    yielding an already-succeeded event resumes immediately.
    """

    __slots__ = ("sim", "_value", "_done", "_waiters")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._value: Any = None
        self._done = False
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimulationError("event has not triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Trigger the event, resuming all waiters at the current time."""
        if self._done:
            raise SimulationError("event already triggered")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            # Resume via the event queue so ordering stays deterministic and
            # succeed() never recursively re-enters a generator mid-yield.
            self.sim.call_at(self.sim.now, resume, value)

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self._done:
            self.sim.call_at(self.sim.now, resume, self._value)
        else:
            self._waiters.append(resume)


class Process:
    """Drives a generator as a cooperative simulation process.

    Parameters
    ----------
    sim:
        The owning simulator.
    gen:
        A generator whose ``yield`` expressions are :class:`Timeout`,
        :class:`Event`, or :class:`Process` instances.
    name:
        Label used in traces and reprs.

    A process is itself awaitable: yielding a :class:`Process` suspends the
    yielder until the target generator returns, and evaluates to the
    generator's return value.
    """

    def __init__(
        self,
        sim: Simulator,
        gen: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._completion = Event(sim)
        self._pending_timer: Optional[ScheduledEvent] = None
        # Start on the event queue, not synchronously: a process created at
        # t=0 must not run before the simulation does.
        sim.call_at(sim.now, self._resume, None)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name!r} still running")
        if self._error is not None:
            raise self._error
        return self._result

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the generator at the current time.

        A process blocked on a timeout has that timer cancelled.  A finished
        process ignores interrupts.
        """
        if self._done:
            return
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        self.sim.call_at(self.sim.now, self._throw, Interrupt(cause))

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self._done:
            return
        self._pending_timer = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - protocol bugs surface here
            self._finish(error=exc)
            return
        self._wait_on(yielded)

    def _throw(self, exc: BaseException) -> None:
        if self._done:
            return
        try:
            yielded = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as err:  # noqa: BLE001
            self._finish(error=err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self._pending_timer = self.sim.call_after(yielded.delay, self._resume, None)
        elif isinstance(yielded, Event):
            yielded._add_waiter(self._resume)
        elif isinstance(yielded, Process):
            yielded._completion._add_waiter(self._resume)
        else:
            self._finish(
                error=SimulationError(
                    f"process {self.name!r} yielded unsupported {yielded!r}"
                )
            )

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._error = error
        if error is not None:
            # Fail loudly: an unhandled exception inside a protocol process
            # is a bug in the model, not something to swallow.
            self._completion.succeed(None)
            raise error
        self._completion.succeed(result)

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self._done else "running"
        return f"<Process {self.name!r} {state}>"
