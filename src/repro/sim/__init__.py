"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for every protocol in :mod:`repro`.
The paper's evaluation ran on a 100-node Linux cluster; we replace wall-clock
time, OS threads and real sockets with a single-threaded event loop whose
virtual clock advances from event to event.  Everything that happens in a
simulation — heartbeat timers, packet deliveries, failure injections — is an
event scheduled on one :class:`~repro.sim.engine.Simulator`.

Design notes
------------
* **Determinism.**  Events firing at the same virtual time are ordered by a
  monotonically increasing sequence number, and all randomness flows through
  named, seeded streams (:class:`~repro.sim.rng.RngRegistry`).  A run is fully
  reproducible from ``(topology, scenario, seed)``.
* **Two programming styles.**  Plain callbacks via
  :meth:`Simulator.call_at` / :meth:`Simulator.call_after`, and
  generator-based processes (:class:`~repro.sim.process.Process`) that
  ``yield`` :class:`~repro.sim.process.Timeout` or
  :class:`~repro.sim.process.Event` instances, in the style of SimPy.
* **Performance.**  The hot path is a ``heapq`` of tuples; no per-event
  object allocation beyond the scheduled entry itself.  (See the repo's
  profiling notes: the kernel was written simple first and optimised only
  where the Fig. 11-13 sweeps showed cost.)
"""

from repro.sim.engine import Simulator, ScheduledEvent, SimulationError
from repro.sim.process import Process, Timeout, Event, Interrupt
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "SimulationError",
    "Process",
    "Timeout",
    "Event",
    "Interrupt",
    "RngRegistry",
    "Trace",
    "TraceRecord",
]
