"""Registry exporters: Prometheus text exposition and JSON.

Both walk families and children in creation (insertion) order and format
numbers deterministically, so a seeded simulation exports byte-identical
reports — the property the determinism-guard tests extend to the whole
observability layer.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from repro.obs.registry import Counter, Family, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus", "to_json", "to_json_str"]


def _fmt(v: float) -> str:
    """Prometheus sample value: integers without the trailing ``.0``."""
    if isinstance(v, float) and math.isinf(v):
        return "+Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _label_str(labels, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for fam in registry.families():
        if fam.help:
            lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, inst in fam.children():
            if isinstance(inst, Histogram):
                for bound, cum in inst.cumulative():
                    le = _label_str(labels, f'le="{_fmt(bound)}"')
                    lines.append(f"{fam.name}_bucket{le} {cum}")
                ls = _label_str(labels)
                lines.append(f"{fam.name}_sum{ls} {_fmt(inst.sum)}")
                lines.append(f"{fam.name}_count{ls} {inst.count}")
            else:
                lines.append(f"{fam.name}{_label_str(labels)} {_fmt(inst.get())}")
    return "\n".join(lines) + ("\n" if lines else "")


def _family_json(fam: Family) -> Dict:
    children = []
    for labels, inst in fam.children():
        entry: Dict[str, object] = {"labels": dict(labels)}
        if isinstance(inst, Histogram):
            entry["count"] = inst.count
            entry["sum"] = inst.sum
            entry["buckets"] = [
                {"le": ("+Inf" if math.isinf(b) else b), "count": c}
                for b, c in inst.cumulative()
            ]
        elif isinstance(inst, (Counter, Gauge)):
            entry["value"] = inst.get()
        children.append(entry)
    return {"name": fam.name, "kind": fam.kind, "help": fam.help, "samples": children}


def to_json(registry: MetricsRegistry) -> List[Dict]:
    """Registry as plain data (the shape ``repro obs --format json`` prints)."""
    return [_family_json(fam) for fam in registry.families()]


def to_json_str(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(to_json(registry), indent=indent)
