"""Observability layer: metrics registry, trace sinks, exporters.

The paper's evaluation reconstructed every metric offline from
directory-dump files (Section 6.4).  This package adds what a
production deployment of the protocol would actually expose:

* :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms with no-op twins, so instrumented hot paths cost a no-op
  call when observability is off;
* :mod:`repro.obs.sinks` — streaming trace sinks (JSONL files, bounded
  ring buffers) that replace the unbounded in-memory record list for
  large sweeps;
* :mod:`repro.obs.exporters` — deterministic Prometheus-text and JSON
  exports;
* :mod:`repro.obs.wiring` — the flat :class:`Instruments` bundle shared
  by the fabrics and protocol nodes, plus
  :func:`enable_observability`.

See docs/OBSERVABILITY.md for the design, the overhead benchmark
(``benchmarks/bench_obs_overhead.py``) and the determinism contract.
"""

from repro.obs.exporters import to_json, to_json_str, to_prometheus
from repro.obs.registry import (
    Counter,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import JsonlTraceSink, RingBufferSink, read_jsonl_trace
from repro.obs.wiring import (
    Instruments,
    NOOP,
    ObsHandle,
    disable_observability,
    enable_observability,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "JsonlTraceSink",
    "RingBufferSink",
    "read_jsonl_trace",
    "Instruments",
    "NOOP",
    "ObsHandle",
    "enable_observability",
    "disable_observability",
    "to_json",
    "to_json_str",
    "to_prometheus",
]
