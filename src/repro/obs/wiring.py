"""Wiring: the flat instrument bundle and how a Network gets one.

Every hot-path component (multicast fabric, unicast transport, protocol
nodes, chaos runner) reads instruments off one shared
:class:`Instruments` object.  By default that object is :data:`NOOP` —
every attribute a module-level no-op singleton — so an uninstrumented
run pays one no-op method call per counted event and nothing else (the
``Trace.enabled`` pattern, applied to metrics).

:func:`enable_observability` swaps the no-ops for real instruments
registered in a :class:`~repro.obs.registry.MetricsRegistry` and returns
an :class:`ObsHandle` for sampling kernel gauges and exporting.
Instrumentation never draws randomness, never schedules protocol work,
and never mutates protocol state, so enabling it cannot move a single
trace event (covered by the determinism-guard tests).

Each protocol-engine instrument increments at exactly **one** site, on
the role boundary that owns the event (``repro.core.roles``; the fabric
and transport instruments live in ``repro.net``):

======================  ===============================================
instrument              owning module (single increment site)
======================  ===============================================
``hb_tx``               ``roles.announcer`` — heartbeat publish
``hb_rx``               ``roles.receiver`` — channel dispatch
``hb_rx_fast``          ``roles.receiver`` — interned no-change path
``sync_resps``          ``roles.receiver`` — sync response arrival
``updates_tx``          ``roles.informer`` — update publish
``updates_rx``          ``roles.informer`` — update arrival
``update_ops``          ``roles.informer`` — ops applied
``piggyback_recovered`` ``roles.informer`` — gap recovery
``syncs_sent``          ``roles.informer`` — sync request (post limit)
``sync_snapshot``       ``roles.informer`` — snapshot size histogram
``elections``           ``roles.contender`` — leadership won
``stepdowns``           ``roles.contender`` — two-leaders rule
``member_up``           ``protocols.base`` — shared emit helper
``member_down``         ``protocols.base`` — shared emit helper
``view_resets``         ``protocols.base`` — daemon (re)start
``wire_errors``         ``runtime.anet`` — undecodable datagram dropped
``send_errors``         ``runtime.anet`` — send refused/errored
``relay_failovers``     ``runtime.anet`` — relay candidate switch
``frag_drops``          ``runtime.anet`` — reassembly buffer dropped
======================  ===============================================

The baselines (all-to-all, gossip) go through the shared
``protocols.base`` helpers only, so their counts stay comparable.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.exporters import to_json, to_prometheus
from repro.obs.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)

__all__ = ["Instruments", "NOOP", "ObsHandle", "enable_observability", "disable_observability"]


class _NullFamily:
    """No-op labeled family: every labelset resolves to the null counter."""

    __slots__ = ()

    def labels(self, **_labels: str):
        return NULL_COUNTER


_NULL_FAMILY = _NullFamily()

#: (attr, metric name, kind, help) — the protocol surface in one table.
_SPEC = [
    # delivery engine
    ("mc_tx", "repro_multicast_tx_packets_total", "counter",
     "multicast packets sent (post scope, pre loss)"),
    ("mc_deliveries", "repro_multicast_deliveries_total", "counter",
     "scheduled multicast receiver deliveries (pre loss)"),
    ("mc_drops", "repro_multicast_drops_total", "counter",
     "multicast deliveries dropped by the base loss process"),
    ("mc_rx", "repro_multicast_rx_packets_total", "counter",
     "multicast packets handed to a live subscriber handler"),
    ("uc_tx", "repro_unicast_tx_packets_total", "counter",
     "unicast datagrams sent"),
    ("uc_rx", "repro_unicast_rx_packets_total", "counter",
     "unicast datagrams delivered to a bound port"),
    ("uc_drops", "repro_unicast_drops_total", "counter",
     "unicast datagrams dropped by the base loss process"),
    ("uc_unroutable", "repro_unicast_unroutable_total", "counter",
     "unicast sends with no route (downed device or unbound address)"),
    # protocol engine
    ("hb_tx", "repro_heartbeats_tx_total", "counter",
     "heartbeats multicast by protocol nodes"),
    ("hb_rx", "repro_heartbeats_rx_total", "counter",
     "heartbeats received by protocol nodes"),
    ("hb_rx_fast", "repro_heartbeats_rx_fastpath_total", "counter",
     "heartbeats absorbed on the interned no-change fast path"),
    ("updates_tx", "repro_updates_tx_total", "counter",
     "update messages sent (originations and relays)"),
    ("updates_rx", "repro_updates_rx_total", "counter",
     "update messages received"),
    ("update_ops", "repro_update_ops_applied_total", "counter",
     "membership ops applied from update messages"),
    ("piggyback_recovered", "repro_piggyback_recovered_total", "counter",
     "lost updates recovered from piggyback (gap and duplicate paths)"),
    ("syncs_sent", "repro_sync_requests_total", "counter",
     "directory sync polls actually sent (post rate limit)"),
    ("sync_resps", "repro_sync_responses_total", "counter",
     "directory sync responses received"),
    ("member_up", "repro_member_up_total", "counter",
     "directory additions observed (member_up trace events)"),
    ("elections", "repro_elections_won_total", "counter",
     "leader elections won"),
    ("stepdowns", "repro_leader_stepdowns_total", "counter",
     "leaders stepping down (two-leaders rule)"),
    ("view_resets", "repro_view_resets_total", "counter",
     "directory wipes on daemon (re)start"),
    # real-network runtime (repro.runtime.anet)
    ("wire_errors", "repro_wire_errors_total", "counter",
     "datagrams dropped because they failed to decode"),
    ("send_errors", "repro_send_errors_total", "counter",
     "datagram sends refused or errored (oversize, OS error, ICMP report)"),
    ("relay_failovers", "repro_relay_failovers_total", "counter",
     "relay candidate switches after a health-check timeout"),
    ("frag_drops", "repro_fragment_drops_total", "counter",
     "fragment reassembly buffers dropped (missing-fragment timeout or budget eviction)"),
]

_HISTOGRAMS = [
    ("mc_fanout", "repro_multicast_fanout", DEFAULT_SIZE_BUCKETS,
     "recipients per multicast send"),
    ("sync_snapshot", "repro_sync_snapshot_records", DEFAULT_SIZE_BUCKETS,
     "records per directory sync snapshot"),
    ("detection", "repro_detection_seconds", DEFAULT_TIME_BUCKETS,
     "failure detection times (scenario harnesses)"),
    ("convergence", "repro_convergence_seconds", DEFAULT_TIME_BUCKETS,
     "view convergence times (scenario harnesses)"),
]

_GAUGES = [
    ("sim_now", "repro_sim_now_seconds", "virtual clock (sampled)"),
    ("sim_events", "repro_sim_events_executed", "kernel callbacks executed (sampled)"),
    ("sim_pending", "repro_sim_pending_events", "queued kernel entries (sampled)"),
]

_FAMILIES = [
    ("member_down", "repro_member_down_total", ("reason",),
     "directory removals by reason (member_down trace events)"),
    ("chaos_violations", "repro_chaos_violations_total", ("invariant",),
     "invariant-checker violations by invariant"),
    ("fault_effects", "repro_fault_effects_total", ("effect",),
     "chaos fault-plan effects applied (drops, delays, duplicates)"),
]


class Instruments:
    """The flat bundle of every instrument the hot paths touch.

    One instance is shared by the network facade, both fabrics and all
    protocol nodes of a deployment; attribute access is the entire
    dispatch cost.  ``enabled`` lets cold paths skip building label sets
    or observations wholesale.
    """

    __slots__ = (
        ["enabled", "registry"]
        + [attr for attr, *_ in _SPEC]
        + [attr for attr, *_ in _HISTOGRAMS]
        + [attr for attr, *_ in _GAUGES]
        + [attr for attr, *_ in _FAMILIES]
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        self.enabled = registry is not None
        if registry is None:
            for attr, *_ in _SPEC:
                setattr(self, attr, NULL_COUNTER)
            for attr, *_ in _HISTOGRAMS:
                setattr(self, attr, NULL_HISTOGRAM)
            for attr, *_ in _GAUGES:
                setattr(self, attr, NULL_GAUGE)
            for attr, *_ in _FAMILIES:
                setattr(self, attr, _NULL_FAMILY)
            return
        for attr, name, kind, help in _SPEC:
            assert kind == "counter"
            setattr(self, attr, registry.counter(name, help=help))
        for attr, name, bounds, help in _HISTOGRAMS:
            setattr(self, attr, registry.histogram(name, help=help, bounds=bounds))
        for attr, name, help in _GAUGES:
            setattr(self, attr, registry.gauge(name, help=help))
        for attr, name, labels, help in _FAMILIES:
            setattr(self, attr, registry.counter(name, help=help, labels=labels))


#: The disabled-observability singleton every component starts with.
NOOP = Instruments()


class ObsHandle:
    """What :func:`enable_observability` hands back.

    Bundles the registry, the live instruments and the network, and
    drives the only instrument that needs *pulling*: the kernel gauges
    (clock, executed events, queue depth), sampled on demand or on a
    recurring timer.
    """

    def __init__(self, network, registry: MetricsRegistry, instruments: Instruments) -> None:
        self.network = network
        self.registry = registry
        self.instruments = instruments
        self._sampler = None

    def sample_kernel(self) -> None:
        """Copy the simulator's counters into the kernel gauges."""
        sim = self.network.sim
        inst = self.instruments
        inst.sim_now.set(sim.now)
        inst.sim_events.set(sim.events_executed)
        inst.sim_pending.set(sim.pending_events)

    def start_sampler(self, period: float = 1.0) -> None:
        """Sample the kernel gauges every ``period`` virtual seconds.

        Sampling schedules kernel events but touches no RNG stream and
        no protocol state, so the protocol trace is unchanged.
        """
        if self._sampler is None:
            self._sampler = self.network.sim.call_every(period, self.sample_kernel)

    def stop_sampler(self) -> None:
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None

    def to_prometheus(self) -> str:
        self.sample_kernel()
        return to_prometheus(self.registry)

    def to_json(self):
        self.sample_kernel()
        return to_json(self.registry)


def enable_observability(
    network, registry: Optional[MetricsRegistry] = None
) -> ObsHandle:
    """Attach real instruments to ``network`` and everything it owns.

    Idempotent-ish: enabling twice with no registry creates a fresh
    registry and replaces the previous instruments.  Protocol nodes read
    ``network.obs`` dynamically, so enabling works before or after
    ``deploy()``.
    """
    if registry is None:
        registry = MetricsRegistry()
    instruments = Instruments(registry)
    network.obs = instruments
    network.multicast_fabric.obs = instruments
    network.transport.obs = instruments
    return ObsHandle(network, registry, instruments)


def disable_observability(network) -> None:
    """Swap the network back to the shared no-op instruments."""
    network.obs = NOOP
    network.multicast_fabric.obs = NOOP
    network.transport.obs = NOOP
