"""Metrics registry: counters, gauges, histograms — deterministic and cheap.

The paper measured everything offline by grepping directory-dump files
(Section 6.4); this module gives the reproduction the first-class
counter/gauge/histogram surface a production membership service exposes
(cf. the "core service" framing of Scalable Group Management,
arXiv:1003.5794).  Three design rules keep it compatible with the
simulator's contracts:

* **Determinism.**  Instruments never read wall-clock time or draw
  randomness; histograms use *fixed* bucket boundaries chosen at
  creation, so a seeded run produces byte-identical exports.
* **Hot-path cost.**  An enabled counter increment is one attribute add.
  A disabled deployment holds :data:`NULL_COUNTER`-style no-op
  instruments (the ``Trace.enabled`` pattern), so instrumented call
  sites cost a no-op method call and nothing else.
* **Export order.**  Families and children export in creation order
  (insertion-ordered dicts), never sorted-by-timestamp, so exports are
  reproducible too.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Family",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Seconds-scale latency buckets (detection/convergence/delay observations).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0
)

#: Count-scale buckets (fan-outs, snapshot sizes, op batch sizes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000
)

LabelValues = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing count.  ``inc``/``add`` only."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self) -> None:
        self.value += 1

    def add(self, n: int) -> None:
        self.value += n

    def get(self) -> int:
        return self.value


class Gauge:
    """A value that can go up and down (queue depths, clock samples)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def get(self) -> float:
        return self.value


class Histogram:
    """Cumulative histogram over *fixed* bucket boundaries.

    Boundaries are upper-inclusive edges, ascending; an implicit +Inf
    bucket catches the rest.  Fixing the boundaries at creation (no
    dynamic rebucketing) keeps seeded runs' exports byte-identical.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        edges = tuple(float(b) for b in bounds)
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram bounds must be strictly ascending: {bounds!r}")
        self.bounds = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # +Inf tail bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, v: float) -> None:
        self.count += 1
        self.sum += v
        i = 0
        bounds = self.bounds
        n = len(bounds)
        # Linear scan: bucket lists are short (~a dozen edges) and most
        # observations land early; a bisect would allocate nothing less.
        while i < n and v > bounds[i]:
            i += 1
        self.bucket_counts[i] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.bucket_counts):
            running += c
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


class NullCounter:
    """No-op counter: the disabled-observability stand-in."""

    __slots__ = ()

    def inc(self) -> None:
        pass

    def add(self, n: int) -> None:
        pass

    def get(self) -> int:
        return 0


class NullGauge:
    __slots__ = ()

    def set(self, v: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def get(self) -> float:
        return 0.0


class NullHistogram:
    __slots__ = ()

    def observe(self, v: float) -> None:
        pass


#: Module-level no-op singletons; every disabled instrument is one of these.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric and its per-labelset children.

    ``labels()`` with no arguments returns the unlabeled child; children
    are created on first use and kept in insertion order for stable
    exports.  Label *names* are fixed per family (Prometheus convention).
    """

    __slots__ = ("name", "kind", "help", "label_names", "bounds", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.bounds = tuple(bounds) if bounds is not None else None
        self._children: Dict[LabelValues, object] = {}

    def labels(self, **labels: str):
        """The child instrument for this labelset (created on first use)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(labels)}"
            )
        key: LabelValues = tuple((k, str(labels[k])) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = Histogram(self.bounds if self.bounds is not None else DEFAULT_TIME_BUCKETS)
            else:
                child = _KINDS[self.kind]()
            self._children[key] = child
        return child

    def children(self) -> Iterator[Tuple[LabelValues, object]]:
        return iter(self._children.items())


class MetricsRegistry:
    """Owns every metric family of one deployment.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family, so independent components
    can share an instrument by name.  Re-registering a name with a
    different kind is a bug and raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, Family] = {}

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        bounds: Optional[Sequence[float]] = None,
    ) -> Family:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, not {kind}"
                )
            return fam
        fam = Family(name, kind, help=help, label_names=label_names, bounds=bounds)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        fam = self._family(name, "counter", help, labels)
        return fam if labels else fam.labels()

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        fam = self._family(name, "gauge", help, labels)
        return fam if labels else fam.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        fam = self._family(name, "histogram", help, labels, bounds=bounds)
        return fam if labels else fam.labels()

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's samples into this one.

        The sharded runner gives every shard its own registry (lock-free
        hot paths) and merges them at flush time.  Counters and histogram
        samples add; gauges add too (queue depths and event counts are
        per-shard partial sums — callers needing a different fold should
        sample per shard instead).  Merging is only defined for families
        with matching kind/labels/bounds, which holds when both sides
        were wired by :mod:`repro.obs.wiring`.
        """
        for fam in other.families():
            mine = self._family(fam.name, fam.kind, fam.help, fam.label_names, fam.bounds)
            for key, child in fam.children():
                target = mine.labels(**dict(key))
                if fam.kind == "counter":
                    assert isinstance(child, Counter) and isinstance(target, Counter)
                    target.add(child.get())
                elif fam.kind == "gauge":
                    assert isinstance(child, Gauge) and isinstance(target, Gauge)
                    target.inc(child.get())
                else:
                    assert isinstance(child, Histogram) and isinstance(target, Histogram)
                    if target.bounds != child.bounds:
                        raise ValueError(
                            f"cannot merge histogram {fam.name!r}: bounds differ"
                        )
                    target.count += child.count
                    target.sum += child.sum
                    for i, c in enumerate(child.bucket_counts):
                        target.bucket_counts[i] += c

    def families(self) -> Iterator[Family]:
        return iter(self._families.values())

    def get(self, name: str) -> Optional[Family]:
        return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
