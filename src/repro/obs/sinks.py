"""Streaming trace sinks: JSONL files and bounded ring buffers.

The paper's nodes "dump the membership directory to a disk file when
there is a change" (Section 6.4); these sinks are that idea done
properly.  A sink is any callable taking a
:class:`~repro.sim.trace.TraceRecord`; attach one with
:meth:`Trace.attach_sink`, which also lets the trace run with
``retain=False`` so million-record Fig. 11 sweeps stream to disk (or a
bounded buffer) instead of accumulating an unbounded in-memory list.

Determinism: the JSONL encoding sorts data keys and uses ``repr``-exact
float formatting via :func:`json.dumps`, so two same-seed runs produce
byte-identical files — covered by the determinism-guard tests.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterator, List, Optional, Union

from repro.sim.trace import TraceRecord

__all__ = ["JsonlTraceSink", "RingBufferSink", "read_jsonl_trace"]


class JsonlTraceSink:
    """Append each trace record to a file as one JSON line.

    Records are written in emit order with sorted data keys::

        {"t": 12.0, "kind": "member_down", "node": "h3", "data": {...}}

    The sink buffers through the underlying file object; call
    :meth:`flush`/:meth:`close` (or use it as a context manager) before
    reading the file back.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def __call__(self, rec: TraceRecord) -> None:
        fh = self._fh
        if fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        fh.write(
            json.dumps(
                {"t": rec.time, "kind": rec.kind, "node": rec.node, "data": rec.data},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
        fh.write("\n")
        self.records_written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl_trace(path: Union[str, Path]) -> List[TraceRecord]:
    """Load a JSONL trace file back into :class:`TraceRecord` objects."""
    out: List[TraceRecord] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            out.append(TraceRecord(obj["t"], obj["kind"], obj["node"], obj["data"]))
    return out


class RingBufferSink:
    """Keep the most recent ``capacity`` records, O(1) per emit.

    The flight-recorder shape: a long soak run retains a bounded tail
    for post-mortem inspection while the full stream goes to a JSONL
    sink (or nowhere).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._buf: deque[TraceRecord] = deque(maxlen=capacity)
        self.records_seen = 0

    def __call__(self, rec: TraceRecord) -> None:
        self._buf.append(rec)
        self.records_seen += 1

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._buf)

    def records(self, kind: Optional[str] = None) -> List[TraceRecord]:
        if kind is None:
            return list(self._buf)
        return [r for r in self._buf if r.kind == kind]

    @property
    def dropped(self) -> int:
        """Records that fell off the front of the buffer."""
        return self.records_seen - len(self._buf)

    def clear(self) -> None:
        self._buf.clear()
