"""The per-shard network facade and its traffic-splitting fabrics.

One :class:`ShardNetwork` is the ``Network``-shaped world a shard's
protocol nodes live in: it owns a full **replica** of the topology (every
shard builds the identical graph from the scenario spec and applies the
identical control operations, so distance/route queries agree
everywhere), a :class:`~repro.shard.engine.ShardSimulator`, and the two
fabrics below.

Traffic classification
----------------------
* **Same-segment** (sender and receiver in one L2 segment, hence one
  shard): evaluated at send time against live local state, exactly like
  the plain fabrics — latency is below the cross-segment lookahead so
  these deliveries cannot wait for a barrier.
* **Cross-segment** (always crosses a router/WAN pinch, latency ≥ the
  lookahead): the send appends one :class:`Descriptor` to the shard's
  outbox.  At the next window barrier all outboxes are merged, sorted by
  ``(t_send, key)``, and *every* shard evaluates the merged stream
  against its own local receivers — even the sender's shard, for its
  locally-owned other segments.  This holds for shards=1 too, which is
  what makes the merged trace shard-count invariant.

Determinism of the stochastic processes
---------------------------------------
The plain fabrics draw loss/chaos from single shared streams in global
execution order — an order that does not survive partitioning.  The
shard fabrics instead draw from **per-destination** streams
(``shard.loss.<dst>``, ``shard.chaos.<dst>``): for one destination the
draw order is its shard's execution order (same-segment sends) merged
with the globally-sorted descriptor order (barrier evaluations), both of
which are shard-count invariant; draws for different destinations come
from independent streams, so their interleaving cannot matter.  Chaos
rule *matching* uses the send time (``t_send``), like the plain fabrics.

Virtual addresses (``bind_address`` / IP takeover) are intentionally
unsupported: only the two-DC proxy experiment uses them and it is out of
the sharded kernel's scope.
"""

from __future__ import annotations

import itertools
import random
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.bandwidth import BandwidthMeter
from repro.net.faults import FaultPlan
from repro.net.packet import Packet
from repro.net.topology import UNREACHABLE, Topology
from repro.obs.wiring import NOOP, Instruments
from repro.shard.engine import Key, ShardSimulator
from repro.shard.partition import ShardMap
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace

__all__ = ["Descriptor", "ShardNetwork", "ShardTrace"]

Handler = Callable[[Packet], None]


class Descriptor:
    """One cross-segment send, in declarative (evaluatable) form.

    ``key`` is the send's unique event key (allocated from the sending
    event's context, hence shard-count invariant); barrier-scheduled
    deliveries extend it with ``(receiver_rank, copy_index)``.  The
    packet rides along whole — receivers resolve scope, latency, loss
    and chaos themselves at the barrier, against replica state.
    """

    __slots__ = ("key", "t_send", "packet", "port")

    def __init__(
        self, key: Key, t_send: float, packet: Packet, port: Optional[str] = None
    ) -> None:
        self.key = key
        self.t_send = t_send
        self.packet = packet
        self.port = port

    def sort_key(self) -> Tuple[float, Key]:
        return (self.t_send, self.key)

    def __reduce__(self) -> Tuple[object, Tuple[object, ...]]:
        return (Descriptor, (self.key, self.t_send, self.packet, self.port))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Descriptor t={self.t_send:.6f} key={self.key} kind={self.packet.kind}>"


class ShardTrace(Trace):
    """A :class:`Trace` that stamps every retained record with a merge key.

    The merge key is ``(time, priority, seq, emit_index)`` — the sort key
    of the event (or root context) that emitted the record plus a
    per-event emission counter.  Sorting the union of all shards' records
    by it reproduces one global total order, byte-identical for every
    shard count.
    """

    def __init__(self, sim: ShardSimulator, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._sim = sim
        self.keys: List[Tuple[float, int, Key, int]] = []
        self._ctx_last: Optional[Tuple[int, Key]] = None
        self._ctx_idx = 0

    def emit(
        self, time: float, kind: str, node: Optional[str] = None, **data: object
    ) -> None:
        before = len(self._records)
        super().emit(time, kind, node, **data)
        if len(self._records) > before:
            ctx = self._sim.current_key()
            if ctx != self._ctx_last:
                self._ctx_last = ctx
                self._ctx_idx = 0
            self.keys.append((time, ctx[0], ctx[1], self._ctx_idx))
            self._ctx_idx += 1


class _ShardMulticastFabric:
    """TTL-scoped multicast, split by segment (see module docstring)."""

    def __init__(self, net: "ShardNetwork") -> None:
        self.net = net
        # channel -> host -> handler (local hosts only; remote nodes
        # subscribe in their own shard's replica of this fabric).
        self._subs: Dict[str, Dict[str, Handler]] = defaultdict(dict)

    # -- membership ----------------------------------------------------
    def subscribe(self, channel: str, host: str, handler: Handler) -> None:
        self._subs[channel][host] = handler

    def unsubscribe(self, channel: str, host: str) -> None:
        subs = self._subs.get(channel)
        if subs is not None:
            subs.pop(host, None)

    def unsubscribe_all(self, host: str) -> None:
        for subs in self._subs.values():
            subs.pop(host, None)

    def subscribers(self, channel: str) -> List[str]:
        return sorted(self._subs.get(channel, {}))

    def is_subscribed(self, channel: str, host: str) -> bool:
        return host in self._subs.get(channel, {})

    # -- sending -------------------------------------------------------
    def send(self, packet: Packet) -> int:
        """Send-time half: same-segment deliveries plus one descriptor.

        Returns the number of in-scope same-segment receivers (the
        cross-segment fan-out is not known until the barriers evaluate
        it — but the return value is the same for every shard count).
        """
        if packet.channel is None:
            raise ValueError("multicast send requires packet.channel")
        net = self.net
        topo = net.topo
        if not topo.is_up(packet.src):
            return 0
        sim = net.sim
        now = sim.now
        net.meter.record(now, packet.src, "tx", packet.kind, packet.size)
        obs = net.obs
        obs.mc_tx.inc()
        src_seg = topo.segment_of(packet.src)
        segment_of = topo.segment_of
        delivered = 0
        dropped = 0
        subs = self._subs.get(packet.channel)
        if subs:
            distance = topo.ttl_distance
            latency = topo.latency
            proc_delay = net.proc_delay
            for host, handler in subs.items():
                if host == packet.src or segment_of(host) != src_seg:
                    continue
                if distance(packet.src, host) > packet.ttl:
                    continue
                delivered += 1
                if not net._loss_ok(host):
                    dropped += 1
                    continue
                delay = latency(packet.src, host) + proc_delay
                offsets = net._fault_offsets(packet.src, host, now)
                if offsets is None:
                    sim.call_after(delay, self._deliver, packet, host, handler)
                else:
                    for off in offsets:
                        sim.call_after(delay + off, self._deliver, packet, host, handler)
        obs.mc_fanout.observe(delivered)
        if delivered:
            obs.mc_deliveries.add(delivered)
        if dropped:
            obs.mc_drops.add(dropped)
        # Cross-segment scope needs TTL >= 2 (at least one router hop), so
        # local-only sends — the L0 heartbeat bulk — skip the barrier
        # exchange entirely.  The condition depends only on the packet,
        # keeping descriptor keys aligned across shard counts.
        if packet.ttl >= 2:
            net.outbox.append(Descriptor(sim.next_key(), now, packet))
        return delivered

    # -- barrier half --------------------------------------------------
    def evaluate(self, d: Descriptor) -> None:
        """Schedule this descriptor's deliveries to *local* receivers."""
        net = self.net
        packet = d.packet
        subs = self._subs.get(packet.channel or "")
        if not subs:
            return
        topo = net.topo
        src_seg = topo.segment_of(packet.src)
        segment_of = topo.segment_of
        distance = topo.ttl_distance
        latency = topo.latency
        ranks = net.smap.host_rank
        sim = net.sim
        obs = net.obs
        extra = 0
        dropped = 0
        for host, handler in subs.items():
            if segment_of(host) == src_seg:
                continue  # covered at send time, in the sender's shard
            if distance(packet.src, host) > packet.ttl:
                continue
            extra += 1
            if not net._loss_ok(host):
                dropped += 1
                continue
            delay = latency(packet.src, host) + net.proc_delay
            offsets = net._fault_offsets(packet.src, host, d.t_send)
            copies = (0.0,) if offsets is None else offsets
            for ci, off in enumerate(copies):
                sim.call_at_keyed(
                    d.t_send + delay + off,
                    d.key + (ranks[host], ci),
                    self._deliver,
                    packet,
                    host,
                    handler,
                )
        if extra:
            obs.mc_deliveries.add(extra)
        if dropped:
            obs.mc_drops.add(dropped)

    def _deliver(self, packet: Packet, host: str, handler: Handler) -> None:
        net = self.net
        if not net.topo.is_up(host):
            return
        if self._subs.get(packet.channel or "", {}).get(host) is not handler:
            return
        net.meter.record(net.sim.now, host, "rx", packet.kind, packet.size)
        net.obs.mc_rx.inc()
        handler(packet)


class _ShardTransport:
    """Port-addressed unicast, split by segment (see module docstring)."""

    def __init__(self, net: "ShardNetwork") -> None:
        self.net = net
        self._ports: Dict[Tuple[str, str], Handler] = {}

    # -- binding -------------------------------------------------------
    def bind(self, host: str, port: str, handler: Handler) -> None:
        self._ports[(host, port)] = handler

    def unbind(self, host: str, port: str) -> None:
        self._ports.pop((host, port), None)

    def unbind_all(self, host: str) -> None:
        for key in [k for k in self._ports if k[0] == host]:
            del self._ports[key]

    def bind_address(self, address: str, host: str) -> None:
        raise NotImplementedError(
            "virtual addresses (IP takeover) are not supported by the "
            "sharded kernel; run the proxy scenario on the plain Network"
        )

    # -- sending -------------------------------------------------------
    def send(self, packet: Packet, port: str = "membership") -> bool:
        if packet.dst is None:
            raise ValueError("unicast send requires packet.dst")
        net = self.net
        topo = net.topo
        if not topo.is_up(packet.src):
            return False
        sim = net.sim
        now = sim.now
        net.meter.record(now, packet.src, "tx", packet.kind, packet.size)
        obs = net.obs
        obs.uc_tx.inc()
        dst = packet.dst
        if dst not in net.smap.host_rank:
            obs.uc_unroutable.inc()
            return False
        lat = topo.unicast_latency(packet.src, dst)
        if lat == UNREACHABLE:
            obs.uc_unroutable.inc()
            return False
        if topo.segment_of(dst) != topo.segment_of(packet.src):
            net.outbox.append(Descriptor(sim.next_key(), now, packet, port))
            return True
        if not net._loss_ok(dst):
            obs.uc_drops.inc()
            return False
        offsets = net._fault_offsets(packet.src, dst, now)
        delay = lat + net.proc_delay
        if offsets is not None:
            if not offsets:
                return False
            for off in offsets:
                sim.call_after(delay + off, self._deliver, packet, dst, port)
            return True
        sim.call_after(delay, self._deliver, packet, dst, port)
        return True

    # -- barrier half --------------------------------------------------
    def evaluate(self, d: Descriptor) -> None:
        net = self.net
        packet = d.packet
        host = packet.dst
        assert host is not None
        if not net.owns(host):
            return
        topo = net.topo
        lat = topo.unicast_latency(packet.src, host)
        if lat == UNREACHABLE:
            net.obs.uc_unroutable.inc()
            return
        if not net._loss_ok(host):
            net.obs.uc_drops.inc()
            return
        offsets = net._fault_offsets(packet.src, host, d.t_send)
        if offsets is not None and not offsets:
            return
        copies = (0.0,) if offsets is None else offsets
        rank = net.smap.host_rank[host]
        for ci, off in enumerate(copies):
            net.sim.call_at_keyed(
                d.t_send + lat + net.proc_delay + off,
                d.key + (rank, ci),
                self._deliver,
                packet,
                host,
                d.port or "membership",
            )

    def _deliver(self, packet: Packet, host: str, port: str) -> None:
        net = self.net
        if not net.topo.is_up(host):
            return
        handler = self._ports.get((host, port))
        if handler is None:
            return
        net.meter.record(net.sim.now, host, "rx", packet.kind, packet.size)
        net.obs.uc_rx.inc()
        handler(packet)


class ShardNetwork:
    """One shard's ``Network``-shaped facade (see module docstring)."""

    def __init__(
        self,
        topo: Topology,
        smap: ShardMap,
        shard_id: int,
        seed: int = 0,
        loss_rate: float = 0.0,
        proc_delay: float = 0.0,
        trace: Optional[ShardTrace] = None,
        keep_bandwidth_series: bool = False,
        retain_trace: bool = True,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.sim = ShardSimulator()
        self.topo = topo
        self.smap = smap
        self.shard_id = shard_id
        self.rng = RngRegistry(seed)
        self.meter = BandwidthMeter(keep_series=keep_bandwidth_series)
        self.trace: ShardTrace = (
            trace if trace is not None else ShardTrace(self.sim, retain=retain_trace)
        )
        self.loss_rate = loss_rate
        self.proc_delay = proc_delay
        self.fault_plan: Optional[FaultPlan] = None
        self.obs: Instruments = NOOP
        #: Cross-segment sends of the current window, exchanged at barriers.
        self.outbox: List[Descriptor] = []
        self.multicast_fabric = _ShardMulticastFabric(self)
        self.transport = _ShardTransport(self)
        self._loss_streams: Dict[str, random.Random] = {}
        self._chaos_streams: Dict[str, random.Random] = {}
        self._uid_counters: Dict[str, "itertools.count[int]"] = {}

    # ------------------------------------------------------------------
    # Network facade pass-throughs (the SimRuntime surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def subscribe(self, channel: str, host: str, handler: Handler) -> None:
        self.multicast_fabric.subscribe(channel, host, handler)

    def unsubscribe(self, channel: str, host: str) -> None:
        self.multicast_fabric.unsubscribe(channel, host)

    def multicast(
        self, src: str, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> int:
        return self.multicast_fabric.send(
            Packet(src=src, channel=channel, ttl=ttl, kind=kind, payload=payload, size=size)
        )

    def bind(self, host: str, port: str, handler: Handler) -> None:
        self.transport.bind(host, port, handler)

    def unicast(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: object,
        size: int,
        port: str = "membership",
    ) -> bool:
        return self.transport.send(
            Packet(src=src, dst=dst, kind=kind, payload=payload, size=size), port=port
        )

    # ------------------------------------------------------------------
    # Ownership / identity
    # ------------------------------------------------------------------
    def owns(self, host: str) -> bool:
        return self.smap.host_shard.get(host) == self.shard_id

    def uid_alloc(self, node_id: str) -> Callable[[], int]:
        """Per-node update-uid allocator (see ``UpdateManager.new_uid``).

        The plain kernel's process-global counter is execution-order
        dependent (and collides across worker processes); here node rank
        tags the high bits so uids are globally unique and identical for
        every shard count and process layout.
        """
        rank = self.smap.host_rank[node_id]
        counter = self._uid_counters.setdefault(node_id, itertools.count(1))

        def alloc() -> int:
            return (rank << 32) | next(counter)

        return alloc

    # ------------------------------------------------------------------
    # Stochastic processes (per-destination streams)
    # ------------------------------------------------------------------
    def _loss_ok(self, dst: str) -> bool:
        if self.loss_rate <= 0.0:
            return True
        stream = self._loss_streams.get(dst)
        if stream is None:
            stream = self._loss_streams[dst] = self.rng.stream(f"shard.loss.{dst}")
        return stream.random() >= self.loss_rate

    def _fault_offsets(
        self, src: str, dst: str, t_send: float
    ) -> Optional[Tuple[float, ...]]:
        plan = self.fault_plan
        if plan is None or not plan.rules:
            return None
        stream = self._chaos_streams.get(dst)
        if stream is None:
            stream = self._chaos_streams[dst] = self.rng.stream(f"shard.chaos.{dst}")
        plan.rng = stream
        return plan.offsets(src, dst, t_send)

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
        """Install ``plan`` (replicated identically on every shard)."""
        self.fault_plan = plan
        return plan

    def ensure_fault_plan(self) -> FaultPlan:
        if self.fault_plan is None:
            self.fault_plan = FaultPlan()
        return self.fault_plan

    # ------------------------------------------------------------------
    # Failure injection (applied on every shard by the runner's ops)
    # ------------------------------------------------------------------
    def crash_host(self, host: str) -> None:
        self.topo.set_up(host, False)
        self.multicast_fabric.unsubscribe_all(host)
        self.transport.unbind_all(host)
        if self.owns(host):
            self.trace.emit(self.sim.now, "host_crashed", node=host)

    def recover_host(self, host: str) -> None:
        self.topo.set_up(host, True)
        if self.owns(host):
            self.trace.emit(self.sim.now, "host_recovered", node=host)

    def fail_device(self, device: str) -> None:
        self.topo.set_up(device, False)
        if self.shard_id == 0:
            self.trace.emit(self.sim.now, "device_failed", node=device)

    def recover_device(self, device: str) -> None:
        self.topo.set_up(device, True)
        if self.shard_id == 0:
            self.trace.emit(self.sim.now, "device_recovered", node=device)

    # ------------------------------------------------------------------
    # Barrier hooks used by the runner
    # ------------------------------------------------------------------
    def take_outbox(self) -> List[Descriptor]:
        out = self.outbox
        self.outbox = []
        return out

    def evaluate(self, descriptors: List[Descriptor]) -> None:
        """Apply a merged, sorted descriptor stream to local receivers."""
        mc = self.multicast_fabric
        uc = self.transport
        for d in descriptors:
            if d.packet.channel is not None:
                mc.evaluate(d)
            else:
                uc.evaluate(d)
