"""Shard-local simulator with shard-count-invariant event keys.

The plain :class:`~repro.sim.engine.Simulator` orders same-instant events
by a global integer sequence — an *execution-order* artifact that differs
between one merged queue and N per-shard queues.  The sharded kernel
therefore replaces the integer with a **derivation-tree key**: every
event's ``seq`` is a tuple extending the key of the event (or deployment
context) that scheduled it.  Because a callback executes identically
whichever shard it lives on, the keys it hands out are a pure function of
the causal history — identical for every shard count — and the global
order ``(time, priority, seq)`` merges per-shard traces into one total
order that never depends on how the work was partitioned.

Key shapes
----------
* deployment root of host rank *r* — ``(r,)``
* runner control operation *i* (crash/stop/...) — ``(-1, i)``
* the *n*-th event scheduled by an event keyed ``K`` — ``K + (n,)``
* the *k*-th re-arm of a recurring timer first keyed ``B`` —
  ``B + (-1, k)`` (the ``-1`` marker cannot collide with child indices,
  which are always ≥ 0)
* a barrier-evaluated delivery of cross-shard send descriptor ``D`` to
  the receiver of global rank *r*, copy *c* — ``D + (r, c)``
  (scheduled explicitly via :meth:`ShardSimulator.call_at_keyed`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple, cast

from repro.sim.engine import (
    RecurringTimer,
    ScheduledEvent,
    Simulator,
    SimulationError,
)

__all__ = ["ShardSimulator"]

#: An event key: a tuple of small ints (see module docstring).
Key = Tuple[int, ...]

#: Root context before any deployment rank is set.
_UNSET_ROOT: Key = (-2,)


class _KeyAlloc:
    """Replacement for the kernel's ``itertools.count`` sequence source.

    ``next()`` returns ``parent_key + (n,)`` where ``parent_key`` is the
    seq of the currently-executing event (or the explicit root context)
    and ``n`` counts allocations under that parent.  Event seqs are
    globally unique, so a parent context is never re-entered and a value
    comparison is enough to reset the child counter.
    """

    __slots__ = ("_sim", "_parent", "_n")

    def __init__(self, sim: "ShardSimulator") -> None:
        self._sim = sim
        self._parent: Optional[Key] = None
        self._n = 0

    def __next__(self) -> Key:
        cur = self._sim._current
        parent: Key = cur.seq if cur is not None else self._sim._root
        if parent != self._parent:
            self._parent = parent
            self._n = 0
        n = self._n
        self._n = n + 1
        return parent + (n,)


class _ShardRecurringTimer(RecurringTimer):
    """Recurring timer whose re-arms stay at bounded key depth.

    The base timer re-keys its event through the sequence source, which
    under :class:`_KeyAlloc` would nest one level per period.  Here the
    *k*-th re-arm is keyed ``base + (-1, k)`` — still unique (child
    indices are never negative), still deterministic, and flat.
    """

    __slots__ = ("_base_key", "_fires")

    def __init__(
        self,
        sim: "ShardSimulator",
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        first_at: float,
        priority: int,
    ) -> None:
        super().__init__(sim, period, fn, args, first_at, priority)
        self._base_key: Key = self._ev.seq
        self._fires = 0

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fn(*self.args)
        if self.cancelled:
            return
        sim = self._sim
        ev = self._ev
        self._fires += 1
        ev.time = sim._now + self.period
        ev.seq = self._base_key + (-1, self._fires)
        ev.sort_key = (ev.time, ev.priority, ev.seq)
        wheel = sim._wheel
        if wheel is None:
            heapq.heappush(sim._queue, ev)
        else:
            wheel.schedule(ev)


class ShardSimulator(Simulator):
    """A :class:`Simulator` whose event order is shard-count invariant.

    Everything about execution (wheel/heap backends, ``run``,
    ``run_window``, cancellation) is inherited; only the sequence source
    and the recurring-timer re-arm are swapped for the tuple-key scheme,
    plus two extras the barrier runner needs:

    * :meth:`set_root` — names the deployment/control context whose
      direct scheduling (node start, crash ops) must be keyed
      identically in every shard count;
    * :meth:`call_at_keyed` — schedules an event under an explicit key
      (barrier-merged cross-shard deliveries carry their descriptor
      key so both sides of the merge agree on the order).
    """

    def __init__(self, start_time: float = 0.0, use_timer_wheel: bool = True) -> None:
        super().__init__(start_time, use_timer_wheel)
        self._seq = _KeyAlloc(self)  # type: ignore[assignment]
        self._root: Key = _UNSET_ROOT

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------
    def set_root(self, key: Key) -> None:
        """Enter an out-of-event scheduling context (deploy / control op)."""
        self._root = tuple(key)
        self._current = None

    def current_key(self) -> Tuple[int, Key]:
        """(priority, seq) of the executing event, or the root context."""
        cur = self._current
        if cur is not None:
            return (cur.priority, cur.seq)
        return (0, self._root)

    def next_key(self) -> Key:
        """Allocate a child key under the current context (see _KeyAlloc)."""
        # ``_seq`` is typed by the base class as the integer counter; here
        # it is the tuple-key allocator installed in ``__init__``.
        return cast(Key, next(self._seq))

    # ------------------------------------------------------------------
    # Scheduling overrides
    # ------------------------------------------------------------------
    def call_every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        first_delay: Optional[float] = None,
        priority: int = 0,
    ) -> RecurringTimer:
        if period <= 0:
            raise SimulationError(f"non-positive period {period!r}")
        delay = period if first_delay is None else first_delay
        if delay < 0:
            raise SimulationError(f"negative first_delay {first_delay!r}")
        return _ShardRecurringTimer(self, period, fn, args, self._now + delay, priority)

    def call_at_keyed(
        self,
        time: float,
        key: Key,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule under an explicit, caller-guaranteed-unique key."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        ev = ScheduledEvent(float(time), priority, key, fn, args)
        wheel = self._wheel
        if wheel is None:
            heapq.heappush(self._queue, ev)
        else:
            wheel.schedule(ev)
        return ev
