"""The windowed barrier loop of the sharded kernel.

:class:`ShardRun` deploys one :class:`~repro.shard.scenario.ShardScenario`
across *N* shards and advances them in conservative time windows of width
``L = Topology.cross_segment_lookahead()`` — the minimum latency of any
cross-segment path, so a packet sent inside window *k* can never be
delivered before window *k+1* begins.  The loop per window:

1. every shard drains its local events with ``run_window(end)``
   (strictly-below-``end`` semantics: events at exactly a barrier time
   run *after* the barrier's control ops);
2. outboxes (cross-segment :class:`Descriptor`\\ s) are collected and
   merged into one stream sorted by ``(t_send, key)``;
3. control operations due at the barrier are applied, in spec order,
   under root context ``(-1, op_index)``;
4. every shard evaluates the merged stream against its local receivers,
   scheduling deliveries under keys ``descriptor.key + (rank, copy)``.

Because steps 2–4 are pure functions of shard-count-invariant inputs,
the merged trace — per-shard records sorted by their
:class:`~repro.shard.netshard.ShardTrace` keys — is byte-identical for
every shard count, including ``shards=1``.

When a barrier has no work (no pending event anywhere, outboxes empty),
the loop jumps straight to the next control op / end time instead of
ticking empty windows; with a single segment (``L = inf``) it degrades
to plain sequential runs between ops.

:class:`ShardWorld` — one shard's fully-built universe — is the unit the
multiprocessing runner (:mod:`repro.shard.workers`) reuses verbatim, so
the in-process and spawned paths cannot drift apart on deployment or
control-op semantics.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import HierarchicalConfig
from repro.metrics.experiment import SCHEMES
from repro.obs.registry import MetricsRegistry
from repro.obs.wiring import Instruments
from repro.protocols.base import MembershipNode
from repro.shard.netshard import Descriptor, ShardNetwork
from repro.shard.partition import ShardMap
from repro.shard.scenario import ShardScenario

__all__ = [
    "ShardResult",
    "ShardRun",
    "ShardWorld",
    "next_barrier_end",
    "run_scenario",
    "trace_hash",
]

#: A merged trace: plain tuples, picklable, hashable via :func:`trace_hash`.
TraceList = List[Tuple[float, str, Optional[str], Dict[str, Any]]]

#: A resolved control op: (time, spec_index, op_name, host).
Op = Tuple[float, int, str, str]

#: A trace record paired with its deterministic merge key.
KeyedRecord = Tuple[
    Tuple[float, int, Tuple[int, ...], int],
    Tuple[float, str, Optional[str], Dict[str, Any]],
]


def trace_hash(trace: TraceList) -> str:
    """Golden-trace digest (same shape as the determinism-guard suite)."""
    return hashlib.sha256(repr(trace).encode()).hexdigest()


def resolve_ops(spec: ShardScenario, hosts: List[str]) -> List[Op]:
    """The spec's op timeline with host indices resolved, sorted stably."""
    ops: List[Op] = [
        (t, i, op, hosts[arg]) for i, (t, op, arg) in enumerate(spec.ops)
    ]
    ops.sort(key=lambda o: (o[0], o[1]))
    return ops


def _window_index(time: float, lookahead: float) -> int:
    """Largest k with ``k*L <= time`` (float-drift safe)."""
    k = int(time / lookahead)
    while k * lookahead > time:
        k -= 1
    while (k + 1) * lookahead <= time:
        k += 1
    return k


def next_barrier_end(
    t: float,
    until: float,
    t_next: Optional[float],
    lookahead: float,
    next_op: Optional[float],
) -> float:
    """The next barrier time in ``(t, until]``.

    Normally the end of the lookahead window holding the earliest
    pending event anywhere (jumping over empty windows — safe because
    outboxes are empty between barriers, so nothing can be scheduled
    before ``t_next + lookahead``); clamped by the next control op and
    ``until``.  Shared by the in-process and multiprocessing drivers so
    both cut identical barriers.
    """
    if t_next is None or math.isinf(lookahead):
        end = until
    else:
        base = t_next if t_next > t else t
        end = (_window_index(base, lookahead) + 1) * lookahead
        if end > until:
            end = until
    if next_op is not None and next_op < end:
        end = next_op
    return end


class ShardWorld:
    """One shard's fully-built universe: network, nodes, op semantics.

    Both drivers build one per shard — the in-process runner passes the
    shared topology replica in; a spawned worker rebuilds it from the
    (picklable) spec.  All state mutation driven from *outside* the
    event loop goes through :meth:`apply_op`, keyed by the op's spec
    index, so control timelines replay identically everywhere.
    """

    def __init__(
        self,
        spec: ShardScenario,
        shards: int,
        shard_id: int,
        topo: Optional[Any] = None,
        hosts: Optional[List[str]] = None,
        observe: bool = False,
    ) -> None:
        if topo is None or hosts is None:
            topo, hosts = spec.build_topology()
        self.spec = spec
        self.shard_id = shard_id
        self.topo = topo
        self.hosts: List[str] = hosts
        self.smap = ShardMap.build(topo, shards)
        self.net = ShardNetwork(
            topo,
            self.smap,
            shard_id,
            seed=spec.seed,
            loss_rate=spec.loss_rate,
            retain_trace=spec.retain_trace,
        )
        if observe:
            self.net.obs = Instruments(MetricsRegistry())
        plan = spec.make_plan(hosts)
        if plan is not None:
            self.net.set_fault_plan(plan)
        self.nodes: Dict[str, MembershipNode] = {}
        self._deploy()

    # ------------------------------------------------------------------
    def _node_kwargs(self) -> Dict[str, Any]:
        kwargs: Dict[str, Any] = {}
        if self.spec.scheme == "gossip":
            kwargs["seeds"] = list(self.hosts)
        elif self.spec.scheme == "hierarchical":
            if self.spec.max_ttl is not None:
                kwargs["config"] = HierarchicalConfig(max_ttl=self.spec.max_ttl)
            else:
                kwargs["config"] = HierarchicalConfig()
        return kwargs

    def _deploy(self) -> None:
        scheme = self.spec.scheme
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; pick one of {sorted(SCHEMES)}")
        cls = SCHEMES[scheme]
        kwargs = self._node_kwargs()
        ranks = self.smap.host_rank
        local = [h for h in self.hosts if self.smap.host_shard[h] == self.shard_id]
        # Mirror protocols.base.deploy: construct all, then start all in
        # host order.  Each start runs under root key (rank,), so
        # deployment-scheduled events key identically at every shard
        # count.
        for host in local:
            self.nodes[host] = cls(self.net, host, **kwargs)
        for host in local:
            self.net.sim.set_root((ranks[host],))
            self.nodes[host].start()

    # ------------------------------------------------------------------
    def apply_op(self, op: Op) -> None:
        _time, idx, name, host = op
        self.net.sim.set_root((-1, idx))
        if name == "stop_node":
            node = self.nodes.get(host)
            if node is not None:
                node.stop()
        elif name == "start_node":
            node = self.nodes.get(host)
            if node is not None:
                node.start()
        elif name == "crash_host":
            self.net.crash_host(host)
        elif name == "recover_host":
            self.net.recover_host(host)
        else:
            raise ValueError(f"unknown control op {name!r}")

    # Thin pass-throughs the barrier drivers use -----------------------
    def peek(self) -> Optional[float]:
        return self.net.sim.peek()

    def run_window(self, end: float) -> None:
        self.net.sim.run_window(end)

    def run(self, until: float) -> None:
        self.net.sim.run(until=until)

    def take_outbox(self) -> List[Descriptor]:
        return self.net.take_outbox()

    def evaluate(self, descriptors: List[Descriptor]) -> None:
        self.net.evaluate(descriptors)

    def keyed_records(self) -> List[KeyedRecord]:
        """This shard's retained trace, paired with merge keys (picklable)."""
        tr = self.net.trace
        recs = tr.records()
        if len(recs) != len(tr.keys):  # pragma: no cover - invariant
            raise RuntimeError(
                f"shard {self.shard_id}: {len(recs)} records vs {len(tr.keys)} keys"
            )
        return [
            (key, (r.time, r.kind, r.node, r.data)) for key, r in zip(tr.keys, recs)
        ]


@dataclass
class ShardResult:
    """Outcome of one sharded run."""

    shards: int
    trace: TraceList
    hash: str
    #: events executed per shard, in shard-id order (load-balance view).
    events: Tuple[int, ...]
    #: number of cross-shard descriptors exchanged at barriers.
    exchanged: int
    #: number of barrier synchronisations performed.
    barriers: int
    registry: Optional[MetricsRegistry] = None
    summary: Dict[str, Any] = field(default_factory=dict)


def merge_keyed_records(per_shard: List[List[KeyedRecord]]) -> TraceList:
    """Sort all shards' keyed records into the one global total order."""
    pairs: List[KeyedRecord] = []
    for records in per_shard:
        pairs.extend(records)
    pairs.sort(key=lambda kv: kv[0])
    return [rec for _, rec in pairs]


class ShardRun:
    """Deploy a scenario over N in-process shards and drive the barriers."""

    def __init__(
        self, spec: ShardScenario, shards: int, observe: bool = False
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.spec = spec
        self.shards = shards
        topo, hosts = spec.build_topology()
        self.topo = topo
        self.hosts = hosts
        self._lookahead = topo.cross_segment_lookahead()
        self._t = 0.0
        self.exchanged = 0
        self.barriers = 0
        self._pending = resolve_ops(spec, hosts)
        # One process: the topology replica can be shared — every
        # mutation of it is a control op applied on all shards anyway.
        self.worlds = [
            ShardWorld(spec, shards, sid, topo=topo, hosts=hosts, observe=observe)
            for sid in range(shards)
        ]
        self.smap = self.worlds[0].smap

    # ------------------------------------------------------------------
    def _global_peek(self) -> Optional[float]:
        t_next: Optional[float] = None
        for world in self.worlds:
            p = world.peek()
            if p is not None and (t_next is None or p < t_next):
                t_next = p
        return t_next

    def _apply_due_ops(self, t: float) -> None:
        while self._pending and self._pending[0][0] <= t:
            op = self._pending.pop(0)
            for world in self.worlds:
                world.apply_op(op)

    def _exchange(self) -> None:
        merged: List[Descriptor] = []
        for world in self.worlds:
            merged.extend(world.take_outbox())
        if merged:
            merged.sort(key=Descriptor.sort_key)
            self.exchanged += len(merged)
            for world in self.worlds:
                world.evaluate(merged)

    def advance(self, until: float) -> None:
        """Run all shards up to (exclusive) ``until`` via barriers."""
        t = self._t
        self._apply_due_ops(t)
        while t < until:
            end = next_barrier_end(
                t,
                until,
                self._global_peek(),
                self._lookahead,
                self._pending[0][0] if self._pending else None,
            )
            for world in self.worlds:
                world.run_window(end)
            t = end
            self.barriers += 1
            # Ops due exactly at the barrier fire before the window's
            # own events at that instant — and before the deliveries the
            # exchange schedules (which revalidate liveness anyway).
            self._apply_due_ops(t)
            self._exchange()
        self._t = t

    def run(self) -> ShardResult:
        """Drive the whole scenario and return the merged result."""
        until = self.spec.run_until
        self.advance(until)
        # The final instant is inclusive, like Simulator.run(until=...).
        for world in self.worlds:
            world.run(until)
        return self._result()

    # ------------------------------------------------------------------
    def node(self, host: str) -> MembershipNode:
        return self.worlds[self.smap.host_shard[host]].nodes[host]

    def merged_trace(self) -> TraceList:
        return merge_keyed_records([w.keyed_records() for w in self.worlds])

    def _result(self) -> ShardResult:
        trace = self.merged_trace()
        registry: Optional[MetricsRegistry] = None
        if any(w.net.obs.enabled for w in self.worlds):
            registry = MetricsRegistry()
            for world in self.worlds:
                if world.net.obs.registry is not None:
                    registry.merge_from(world.net.obs.registry)
        events = tuple(w.net.sim.events_executed for w in self.worlds)
        return ShardResult(
            shards=self.shards,
            trace=trace,
            hash=trace_hash(trace),
            events=events,
            exchanged=self.exchanged,
            barriers=self.barriers,
            registry=registry,
            summary={
                "hosts": len(self.hosts),
                "segments": len(self.smap.segment_shard),
                "lookahead": self._lookahead,
            },
        )


def run_scenario(
    spec: ShardScenario, shards: int = 1, observe: bool = False
) -> ShardResult:
    """Convenience one-shot: deploy, run to ``spec.run_until``, merge."""
    return ShardRun(spec, shards, observe=observe).run()
