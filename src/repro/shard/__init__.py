"""Process-parallel sharded simulation with a deterministic merge.

The plain kernel (:mod:`repro.sim.engine`) runs one global event queue.
This package partitions a deployment by L2 segment (the paper's level-0
group domain) into *N* shards, each owning the nodes of its segments and
running its own :class:`~repro.shard.engine.ShardSimulator`, and
synchronises them with conservative time-window barriers whose lookahead
is the minimum cross-segment link latency
(:meth:`~repro.net.topology.Topology.cross_segment_lookahead`).

Cross-segment packets never race: every one is buffered as a declarative
:class:`~repro.shard.netshard.Descriptor`, exchanged at the window edge,
and evaluated by the receiving shard in one deterministic total order —
so the merged trace of a run is **byte-identical for every shard count**
(the determinism contract; see docs/PERFORMANCE.md).

Layout
------
* :mod:`repro.shard.partition` — segment → shard assignment and
  boundary-link classification.
* :mod:`repro.shard.engine` — :class:`ShardSimulator`: tuple-keyed event
  ordering that is stable across shard counts, plus window draining.
* :mod:`repro.shard.netshard` — the per-shard network facade (multicast +
  unicast fabrics that split same-segment from cross-segment traffic).
* :mod:`repro.shard.scenario` — the picklable scenario spec (spawn-safe).
* :mod:`repro.shard.runner` — the in-process windowed barrier loop.
* :mod:`repro.shard.workers` — the multiprocessing (spawn) runner.
"""

from repro.shard.engine import ShardSimulator
from repro.shard.partition import ShardMap
from repro.shard.runner import ShardRun, run_scenario, trace_hash
from repro.shard.scenario import ShardScenario
from repro.shard.workers import run_scenario_mp

__all__ = [
    "ShardMap",
    "ShardRun",
    "ShardScenario",
    "ShardSimulator",
    "run_scenario",
    "run_scenario_mp",
    "trace_hash",
]
