"""Topology partitioning for the sharded kernel.

The unit of partitioning is the **L2 segment** (a connected component of
the device graph with routers and WAN edges removed — exactly the
paper's level-0 group domain, :meth:`Topology.segments`).  A segment is
never split across shards: all intra-segment traffic is therefore local
to one shard and can be evaluated at send time, while *every*
cross-segment delivery crosses a router or WAN pinch and is bounded
below by :meth:`Topology.cross_segment_lookahead` — the barrier window
of the conservative synchronisation scheme.

Segments are assigned round-robin in segment-id order, so the map is a
pure function of the topology and the shard count.  ``shards`` may
exceed the segment count; the surplus shards simply own nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.topology import Topology

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Deterministic host/segment → shard assignment.

    Attributes
    ----------
    shards:
        Number of shards the deployment is split into (≥ 1).
    segment_shard:
        ``segment id -> shard id`` (round-robin).
    host_shard:
        ``host -> shard id`` derived through the host's segment.
    host_rank:
        ``host -> global host index`` in topology insertion order — the
        rank used to key deployment-time events identically in every
        shard count.
    """

    shards: int
    segment_shard: Tuple[int, ...]
    host_shard: Dict[str, int]
    host_rank: Dict[str, int]

    @classmethod
    def build(cls, topo: Topology, shards: int) -> "ShardMap":
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        segments = topo.segments()
        segment_shard = tuple(seg % shards for seg in range(len(segments)))
        host_shard: Dict[str, int] = {}
        host_rank: Dict[str, int] = {}
        rank = 0
        for seg_id, hosts in enumerate(segments):
            for host in hosts:
                host_shard[host] = segment_shard[seg_id]
        for host in topo.hosts():
            host_rank[host] = rank
            rank += 1
        return cls(shards, segment_shard, host_shard, host_rank)

    def shard_of(self, host: str) -> int:
        return self.host_shard[host]

    def owns(self, shard_id: int, host: str) -> bool:
        return self.host_shard.get(host) == shard_id

    def local_hosts(self, shard_id: int) -> List[str]:
        """Hosts owned by ``shard_id``, in global rank order."""
        ranked = sorted(self.host_rank, key=self.host_rank.__getitem__)
        return [h for h in ranked if self.host_shard[h] == shard_id]

    def is_boundary(self, topo: Topology, a: str, b: str) -> bool:
        """Classify a link as shard-boundary (cross-segment) or internal.

        A link is a boundary link when traffic over it can connect two
        different segments: either endpoint is a router, or the edge is a
        WAN edge.  Host/switch links inside one segment are internal —
        packets over them never enter the barrier exchange.
        """
        from repro.net.topology import NodeKind

        if topo.is_wan_edge(a, b):
            return True
        return topo.kind(a) is NodeKind.ROUTER or topo.kind(b) is NodeKind.ROUTER
