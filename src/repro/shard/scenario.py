"""Declarative, picklable scenario specs for the sharded kernel.

A :class:`ShardScenario` is everything a worker process needs to rebuild
its replica of the world from scratch: the topology is named by builder
key + arguments (never pickled — every shard constructs the identical
graph), the chaos plan is a tuple of declarative rules over host *index
ranges*, and failure injection is a timeline of ``(time, op, host_idx)``
control operations applied at window barriers.

The ``golden`` constructor reproduces the pinned determinism-guard
scenario of ``tests/integration/test_timer_wheel_differential.py`` so
the sharded differential suite exercises the exact same workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.builders import (
    build_overlap_topology,
    build_router_tree,
    build_switched_cluster,
    build_two_datacenters,
)
from repro.net.faults import FaultPlan
from repro.net.topology import Topology

__all__ = ["LinkRule", "PartitionRule", "ShardScenario"]

#: ``hosts[start:stop]`` with ``stop=None`` meaning "to the end".
Span = Tuple[int, Optional[int]]

BUILDERS: Dict[str, Callable[..., Tuple[Any, ...]]] = {
    "switched": build_switched_cluster,
    "router-tree": build_router_tree,
    "overlap": build_overlap_topology,
    "two-dc": build_two_datacenters,
}


@dataclass(frozen=True)
class PartitionRule:
    """A :meth:`FaultPlan.partition` call over host index spans."""

    side_a: Span
    side_b: Span
    start: float = 0.0
    until: float = float("inf")
    symmetric: bool = True
    loss: float = 1.0


@dataclass(frozen=True)
class LinkRule:
    """A :meth:`FaultPlan.add` call over host index spans."""

    src: Optional[Span] = None
    dst: Optional[Span] = None
    loss: float = 0.0
    jitter: float = 0.0
    reorder: float = 0.0
    reorder_window: float = 0.0
    duplicate: float = 0.0
    dup_lag: float = 0.0
    start: float = 0.0
    until: float = float("inf")


def _span(hosts: List[str], span: Span) -> List[str]:
    return hosts[span[0] : span[1]]


@dataclass(frozen=True)
class ShardScenario:
    """A fully-declarative run spec (see module docstring)."""

    builder: str = "switched"
    builder_args: Tuple[int, ...] = (3, 10)
    scheme: str = "hierarchical"
    seed: int = 0
    loss_rate: float = 0.0
    run_until: float = 50.0
    #: Hierarchical scheme only: announce-TTL ceiling (router-tree rows
    #: need it to cover the tree diameter, like the plain-engine bench).
    max_ttl: Optional[int] = None
    #: Disable for huge benchmark runs: a 10k-node formation emits ~10^8
    #: records, and hashing is only meaningful when retention is on.
    retain_trace: bool = True
    #: Barrier-applied control timeline: ``(time, op, host_index)`` with
    #: op in {"stop_node", "crash_host", "recover_host", "start_node"}.
    ops: Tuple[Tuple[float, str, int], ...] = ()
    partitions: Tuple[PartitionRule, ...] = field(default=())
    link_rules: Tuple[LinkRule, ...] = field(default=())

    # ------------------------------------------------------------------
    def build_topology(self) -> Tuple[Topology, List[str]]:
        try:
            builder = BUILDERS[self.builder]
        except KeyError:
            raise ValueError(
                f"unknown builder {self.builder!r}; known: {sorted(BUILDERS)}"
            ) from None
        out = builder(*self.builder_args)
        # Builders return (topo, hosts) or (topo, hosts_a, hosts_b, ...);
        # flatten to one host list in builder emission order.
        topo = out[0]
        hosts: List[str] = []
        for part in out[1:]:
            hosts.extend(part)
        return topo, hosts

    def make_plan(self, hosts: List[str]) -> Optional[FaultPlan]:
        """Materialise the chaos rules (identically on every shard)."""
        if not self.partitions and not self.link_rules:
            return None
        plan = FaultPlan()
        for p in self.partitions:
            plan.partition(
                _span(hosts, p.side_a),
                _span(hosts, p.side_b),
                start=p.start,
                until=p.until,
                symmetric=p.symmetric,
                loss=p.loss,
            )
        for r in self.link_rules:
            plan.add(
                src=_span(hosts, r.src) if r.src is not None else None,
                dst=_span(hosts, r.dst) if r.dst is not None else None,
                loss=r.loss,
                jitter=r.jitter,
                reorder=r.reorder,
                reorder_window=r.reorder_window,
                duplicate=r.duplicate,
                dup_lag=r.dup_lag,
                start=r.start,
                until=r.until,
            )
        return plan

    # ------------------------------------------------------------------
    @classmethod
    def golden(cls, scheme: str, seed: int, chaos: bool = False) -> "ShardScenario":
        """The pinned 3x10 determinism-guard workload.

        Mirrors ``run_scheme_trace`` of the timer-wheel differential
        suite: 2% uniform loss, node 5 stopped and crashed at t=20,
        observed until t=50; the chaos variant adds an asymmetric
        partition and a lossy/jittery/reordering inter-segment rule over
        t in [15, 30).
        """
        partitions: Tuple[PartitionRule, ...] = ()
        link_rules: Tuple[LinkRule, ...] = ()
        if chaos:
            partitions = (
                PartitionRule(
                    side_a=(0, 10),
                    side_b=(10, None),
                    start=15.0,
                    until=30.0,
                    symmetric=False,
                ),
            )
            link_rules = (
                LinkRule(
                    src=(10, 20),
                    dst=(20, None),
                    loss=0.2,
                    jitter=0.05,
                    reorder=0.3,
                    reorder_window=0.2,
                    duplicate=0.1,
                    dup_lag=0.05,
                    start=15.0,
                    until=30.0,
                ),
            )
        return cls(
            builder="switched",
            builder_args=(3, 10),
            scheme=scheme,
            seed=seed,
            loss_rate=0.02,
            run_until=50.0,
            ops=((20.0, "stop_node", 5), (20.0, "crash_host", 5)),
            partitions=partitions,
            link_rules=link_rules,
        )
