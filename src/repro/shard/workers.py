"""Process-parallel driver for the sharded kernel (spawn-safe).

Each shard's :class:`~repro.shard.runner.ShardWorld` lives in its own
worker process; the parent cuts barriers with the very same
:func:`~repro.shard.runner.next_barrier_end` as the in-process
:class:`~repro.shard.runner.ShardRun` and plays message broker for the
descriptor exchange.  The wire protocol is two-phase per barrier so the
parent's window choice sees post-apply queue state — exactly what the
in-process loop sees — and both drivers cut *identical* barriers:

``("apply", ops, descriptors)``
    apply control ops (spec order) and evaluate the merged descriptor
    stream at the current barrier; reply ``("applied", peek)``.
``("run", end)``
    drain local events strictly below ``end``; reply
    ``("barrier", outbox)``.
``("finish", until)``
    final *inclusive* run to ``until``; reply
    ``("done", keyed_records, events_executed)``.

Workers rebuild their world from the picklable scenario spec, so the
``spawn`` start method (the only portable one) works and nothing
unpicklable ever crosses a pipe — descriptors carry packets, not
handlers.  Determinism note: payload *identity* is lost across pickling,
but all protocol state transitions compare records by content (an
equal-record upsert is a pure refresh), so the merged trace still
matches the in-process runner byte for byte — pinned by the mp smoke
test in the differential suite.

On a single-core host this path demonstrates the topology, not a
speed-up; the in-process runner is the default everywhere.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing.connection import Connection
from typing import List, Optional, Tuple

from repro.shard.netshard import Descriptor
from repro.shard.runner import (
    KeyedRecord,
    Op,
    ShardResult,
    ShardWorld,
    merge_keyed_records,
    next_barrier_end,
    resolve_ops,
    trace_hash,
)
from repro.shard.scenario import ShardScenario

__all__ = ["run_scenario_mp", "shard_worker"]


def shard_worker(
    conn: Connection, spec: ShardScenario, shards: int, shard_id: int
) -> None:
    """Worker entry point (module-level: picklable under spawn)."""
    try:
        world = ShardWorld(spec, shards, shard_id)
        conn.send(("ready", world.peek()))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "apply":
                _, ops, descriptors = msg
                for op in ops:
                    world.apply_op(op)
                if descriptors:
                    world.evaluate(descriptors)
                conn.send(("applied", world.peek()))
            elif cmd == "run":
                world.run_window(msg[1])
                conn.send(("barrier", world.take_outbox()))
            elif cmd == "finish":
                world.run(msg[1])
                conn.send(
                    ("done", world.keyed_records(), world.net.sim.events_executed)
                )
                return
            else:  # pragma: no cover - protocol error
                raise ValueError(f"unknown worker command {cmd!r}")
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        try:
            conn.send(("error", repr(exc)))
        finally:
            raise


def _recv(conn: Connection, expect: str) -> Tuple[object, ...]:
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(f"shard worker failed: {msg[1]}")
    if msg[0] != expect:
        raise RuntimeError(f"expected {expect!r} from worker, got {msg[0]!r}")
    return tuple(msg[1:])


def run_scenario_mp(spec: ShardScenario, shards: int) -> ShardResult:
    """Run ``spec`` with one spawned process per shard and merge results."""
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    # The parent needs its own replica only for barrier math and op
    # resolution — no nodes are deployed here.
    topo, hosts = spec.build_topology()
    lookahead = topo.cross_segment_lookahead()
    pending = resolve_ops(spec, hosts)
    until = spec.run_until

    ctx = mp.get_context("spawn")
    conns: List[Connection] = []
    procs: List[mp.process.BaseProcess] = []
    try:
        for sid in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker,
                args=(child_conn, spec, shards, sid),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        peeks: List[Optional[float]] = []
        for conn in conns:
            (peek,) = _recv(conn, "ready")
            peeks.append(peek)  # type: ignore[arg-type]

        def due_ops(t: float) -> List[Op]:
            out: List[Op] = []
            while pending and pending[0][0] <= t:
                out.append(pending.pop(0))
            return out

        def apply_phase(t: float, staged: List[Descriptor]) -> Optional[float]:
            """Ship due ops + staged descriptors; return the global peek."""
            ops_now = due_ops(t)
            for conn in conns:
                conn.send(("apply", ops_now, staged))
            fresh: List[Optional[float]] = []
            for conn in conns:
                (peek,) = _recv(conn, "applied")
                fresh.append(peek)  # type: ignore[arg-type]
            live = [p for p in fresh if p is not None]
            return min(live) if live else None

        t = 0.0
        staged: List[Descriptor] = []
        exchanged = 0
        barriers = 0
        while t < until:
            t_next = apply_phase(t, staged)
            end = next_barrier_end(
                t, until, t_next, lookahead, pending[0][0] if pending else None
            )
            for conn in conns:
                conn.send(("run", end))
            t = end
            barriers += 1
            merged: List[Descriptor] = []
            for conn in conns:
                (outbox,) = _recv(conn, "barrier")
                merged.extend(outbox)  # type: ignore[arg-type]
            merged.sort(key=Descriptor.sort_key)
            exchanged += len(merged)
            staged = merged

        # Barrier at exactly `until`: ops due there and the last staged
        # batch apply before the final inclusive run, mirroring ShardRun.
        apply_phase(t, staged)
        for conn in conns:
            conn.send(("finish", until))
        per_shard: List[List[KeyedRecord]] = []
        events: List[int] = []
        for conn in conns:
            records, executed = _recv(conn, "done")
            per_shard.append(records)  # type: ignore[arg-type]
            events.append(executed)  # type: ignore[arg-type]
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()

    trace = merge_keyed_records(per_shard)
    return ShardResult(
        shards=shards,
        trace=trace,
        hash=trace_hash(trace),
        events=tuple(events),
        exchanged=exchanged,
        barriers=barriers,
        summary={
            "hosts": len(hosts),
            "segments": len(topo.segments()),
            "lookahead": lookahead,
            "mp": True,
        },
    )
