"""The transport-agnostic ports a membership daemon is written against.

:class:`NodeRuntime` is one node's execution environment.  It bundles

* a **clock** (:attr:`NodeRuntime.now`);
* **timers** — :meth:`NodeRuntime.call_once` one-shots that are
  registered, cancelled wholesale on :meth:`NodeRuntime.deactivate`, and
  guarded by the activation *epoch* so a timer scheduled in one life of
  the daemon can never fire into the next; and
  :meth:`NodeRuntime.call_every` recurring timers with the
  self-reschedule ordering contract of
  :class:`repro.sim.engine.RecurringTimer`;
* **multicast channels** — subscribe/unsubscribe/publish, scoped to this
  node's identity;
* **unicast datagrams** — per-port bind/unbind/send;
* **observability** — the shared instrument bundle (:attr:`obs`) and
  structured trace emission stamped with this node's id (:meth:`emit`).

Epoch semantics: :meth:`activate` starts a new life (a daemon start) and
:meth:`bump_epoch` invalidates pending one-shots mid-life — protocol
code calls it when the node's incarnation moves without a restart (the
SWIM-style refutation of a false death rumor), because a one-shot
scheduled against the old incarnation must not act on the new one's
state.  Recurring timers are *not* epoch-guarded; they belong to the
life, not the incarnation, and die with :meth:`deactivate`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Optional, Protocol

if TYPE_CHECKING:
    import random

    from repro.net.packet import Packet
    from repro.obs.wiring import Instruments

__all__ = ["NodeRuntime", "PacketHandler", "TimerHandle"]

#: A channel or port delivery callback.
PacketHandler = Callable[["Packet"], None]


class TimerHandle(Protocol):
    """Cancellable handle returned by the timer ports."""

    cancelled: bool

    def cancel(self) -> None:
        """Prevent (further) firings.  Idempotent."""


class NodeRuntime(ABC):
    """One node's execution environment (see module docstring)."""

    #: The identity every send/subscribe/emit is scoped to.
    node_id: str

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds."""

    # ------------------------------------------------------------------
    # Lifecycle / epochs
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def active(self) -> bool:
        """True between :meth:`activate` and :meth:`deactivate`."""

    @abstractmethod
    def activate(self) -> None:
        """Begin a new life: bump the epoch and accept timers."""

    @abstractmethod
    def deactivate(self) -> None:
        """End the current life and cancel every registered timer."""

    @abstractmethod
    def bump_epoch(self) -> None:
        """Invalidate pending one-shots without ending the life."""

    @property
    @abstractmethod
    def live_timers(self) -> int:
        """Registered, not-yet-cancelled timers (one-shot + recurring)."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    @abstractmethod
    def call_once(
        self, delay: float, fn: Callable[..., object], *args: object
    ) -> TimerHandle:
        """One-shot ``fn(*args)`` after ``delay``, bound to this life.

        The callback is dropped (not an error) when the runtime has been
        deactivated or the epoch has moved since scheduling.
        """

    @abstractmethod
    def call_every(
        self,
        period: float,
        fn: Callable[..., object],
        *args: object,
        first_delay: Optional[float] = None,
    ) -> TimerHandle:
        """Recurring ``fn(*args)`` every ``period``; cancelled on deactivate."""

    # ------------------------------------------------------------------
    # Multicast channels
    # ------------------------------------------------------------------
    @abstractmethod
    def subscribe(self, channel: str, handler: PacketHandler) -> None:
        """Join ``channel``; ``handler`` receives every delivery."""

    @abstractmethod
    def unsubscribe(self, channel: str) -> None:
        """Leave ``channel``."""

    @abstractmethod
    def publish(
        self, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> bool:
        """TTL-scoped multicast from this node.

        Returns True when the datagram was *accepted for send* — handed to
        the transport with a live local endpoint.  Nothing more: delivery
        counts, receiver liveness and loss are simulator-only knowledge a
        real transport cannot provide, so protocol code must never branch
        on how many peers (if any) a publish reached.  Reliability lives
        in the protocol itself (heartbeat repetition, piggyback recovery,
        sync polls), not in this return value.
        """

    # ------------------------------------------------------------------
    # Unicast datagrams
    # ------------------------------------------------------------------
    @abstractmethod
    def bind(self, port: str, handler: PacketHandler) -> None:
        """Receive unicast datagrams addressed to this node on ``port``."""

    @abstractmethod
    def unbind(self, port: str) -> None:
        """Stop receiving on ``port``."""

    @abstractmethod
    def send(
        self, dst: str, kind: str, payload: object, size: int, port: str = "membership"
    ) -> bool:
        """Unicast a datagram to a host or virtual address.

        Returns True when the datagram was *accepted for send* — the
        destination resolved to an address and the bytes were handed to
        the transport.  False means the send was refused locally (unknown
        destination, endpoint closed); True promises nothing about
        delivery, which only the simulator could ever know.  As with
        :meth:`publish`, protocol code must not treat the return value as
        a delivery report.
        """

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def obs(self) -> "Instruments":
        """The deployment's shared instrument bundle (no-op by default)."""

    @abstractmethod
    def emit(self, kind: str, **data: object) -> None:
        """Emit a structured trace event stamped ``(now, kind, node_id)``."""

    def emit_view_event(self, kind: str, target: str) -> None:
        """Emit a ``target``-shaped view event (``member_up``/``member_down``).

        Semantically identical to ``emit(kind, target=target)`` — a
        dedicated lane because formation emits one ``member_up`` per node
        *pair* (n² of them at 10k nodes), and adapters can override this
        to skip the kwargs packing when nothing is listening.
        """
        self.emit(kind, target=target)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    @abstractmethod
    def rng_stream(self, name: str) -> "random.Random":
        """A named deterministic RNG stream from the deployment registry."""
