"""The channel relay: TTL-scoped multicast over localhost UDP.

IP multicast is unreliable-to-unavailable on a loopback test rig (and in
most container environments), so the real-network harness replaces the
switch/router fabric with one small relay process.  Daemons announce
their channel subscriptions (``relay_sub`` control datagrams, re-sent
periodically so the tables are soft state); a published channel datagram
is forwarded — as the *original bytes*, the relay never re-encodes — to
every subscriber within TTL distance of the sender, and never back to
the sender itself, matching the simulated fabric's semantics.

TTL distance mirrors :func:`repro.net.topology.Topology` on the standard
LAN layout: ``1`` between nodes on the same segment (one switch hop),
``1 + routers_between_segments`` across segments.  With the default of
one core router, a TTL-1 (level-0) heartbeat reaches only the sender's
segment while TTL-2+ channels span the cluster — exactly the scoping the
hierarchical protocol's group levels rely on.

Run as a process::

    python -m repro.runtime.relay --spec cluster.json

The relay prints ``relay ready on HOST:PORT`` to stdout once bound, so
launchers can wait for it before booting daemons.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Dict, List, Optional, Tuple, cast

from repro.runtime.anet import RELAY_SUB, RELAY_UNSUB, ClusterSpec
from repro.runtime.wire import WireError, decode_packet

__all__ = ["ChannelRelay", "main"]


class ChannelRelay(asyncio.DatagramProtocol):
    """Fan-out state machine behind one UDP socket."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        #: node -> (last seen address, segment)
        self.members: Dict[str, Tuple[Tuple[str, int], str]] = {}
        #: channel -> subscriber node ids (insertion-ordered)
        self.channels: Dict[str, Dict[str, None]] = {}
        #: datagrams dropped because they failed to decode
        self.wire_errors = 0
        self._transport: Optional[asyncio.DatagramTransport] = None

    # -- asyncio protocol ----------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        # Not isinstance-checked: CPython's selector event loop hands a
        # _SelectorDatagramTransport that does not subclass
        # asyncio.DatagramTransport (bpo-46756 lineage).
        self._transport = cast(asyncio.DatagramTransport, transport)

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        try:
            pkt, _port = decode_packet(data)
        except WireError:
            self.wire_errors += 1
            return
        if pkt.kind == RELAY_SUB:
            self._on_sub(pkt.payload, addr)
        elif pkt.kind == RELAY_UNSUB:
            self._on_unsub(pkt.payload)
        elif pkt.channel is not None:
            self._forward(data, pkt.src, pkt.channel, pkt.ttl, addr)

    # -- control -------------------------------------------------------
    def _on_sub(self, payload: object, addr: Tuple[str, int]) -> None:
        if not isinstance(payload, dict):
            return
        node = payload.get("node")
        segment = payload.get("segment")
        channels = payload.get("channels")
        if not isinstance(node, str) or not isinstance(segment, str):
            return
        if not isinstance(channels, list):
            return
        self.members[node] = (addr, segment)
        for channel in channels:
            if isinstance(channel, str):
                self.channels.setdefault(channel, {})[node] = None

    def _on_unsub(self, payload: object) -> None:
        if not isinstance(payload, dict):
            return
        node = payload.get("node")
        channels = payload.get("channels")
        if not isinstance(node, str) or not isinstance(channels, list):
            return
        for channel in channels:
            subs = self.channels.get(channel)
            if subs is not None:
                subs.pop(node, None)

    # -- fan-out -------------------------------------------------------
    def _forward(
        self,
        data: bytes,
        src: str,
        channel: str,
        ttl: int,
        src_addr: Tuple[str, int],
    ) -> None:
        transport = self._transport
        if transport is None:
            return
        sender = self.members.get(src)
        # A publish can race the first relay_sub; the sender's datagram
        # source address plus its spec segment keep scoping correct.
        if sender is not None:
            src_segment = sender[1]
        else:
            node_spec = self.spec.nodes.get(src)
            src_segment = node_spec.segment if node_spec is not None else ""
        subs = self.channels.get(channel)
        if not subs:
            return
        for node in subs:
            if node == src:
                continue  # the fabric never echoes to the sender
            member = self.members.get(node)
            if member is None:
                continue
            addr, segment = member
            if src_segment and self.spec.ttl_distance(src_segment, segment) > ttl:
                continue
            transport.sendto(data, addr)


async def serve(spec: ClusterSpec, host: str, port: int) -> ChannelRelay:
    """Bind the relay socket; returns the live protocol instance."""
    loop = asyncio.get_running_loop()
    relay = ChannelRelay(spec)
    await loop.create_datagram_endpoint(lambda: relay, local_addr=(host, port))
    return relay


async def _run(spec_path: str, host: Optional[str], port: Optional[int]) -> None:
    spec = ClusterSpec.load(spec_path)
    bind_host = host if host is not None else spec.relay.host
    bind_port = port if port is not None else spec.relay.port
    await serve(spec, bind_host, bind_port)
    print(f"relay ready on {bind_host}:{bind_port}", flush=True)
    await asyncio.Event().wait()  # run until killed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.relay",
        description="TTL-scoped channel relay for real-network clusters",
    )
    parser.add_argument("--spec", required=True, help="cluster spec JSON path")
    parser.add_argument("--host", default=None, help="bind host (default: spec)")
    parser.add_argument("--port", type=int, default=None, help="bind port (default: spec)")
    opts = parser.parse_args(argv)
    try:
        asyncio.run(_run(opts.spec, opts.host, opts.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
