"""The channel relay: TTL-scoped multicast over localhost UDP.

IP multicast is unreliable-to-unavailable on a loopback test rig (and in
most container environments), so the real-network harness replaces the
switch/router fabric with one small relay process.  Daemons announce
their channel subscriptions (``relay_sub`` control datagrams, re-sent
periodically so the tables are soft state); a published channel datagram
is forwarded — as the *original bytes*, the relay never re-encodes — to
every subscriber within TTL distance of the sender, and never back to
the sender itself, matching the simulated fabric's semantics.

Soft state means *expiring* soft state: a member that stops
re-announcing (SIGKILLed daemon, or one whose single ``relay_unsub``
datagram was lost) is dropped from the fan-out tables after
:data:`MEMBER_EXPIRY` seconds, so a dead daemon never keeps receiving
traffic forever.  Every accepted ``relay_sub`` is answered with a
``relay_ack`` datagram — the health signal daemons use to detect a dead
relay and fail over to a replica (:mod:`repro.runtime.anet`).

Fragmented frames (see :mod:`repro.runtime.wire`) are reassembled just
far enough to read the routing header, then forwarded as the original
fragment datagrams, byte-for-byte.

TTL distance mirrors :func:`repro.net.topology.Topology` on the standard
LAN layout: ``1`` between nodes on the same segment (one switch hop),
``1 + routers_between_segments`` across segments.  With the default of
one core router, a TTL-1 (level-0) heartbeat reaches only the sender's
segment while TTL-2+ channels span the cluster — exactly the scoping the
hierarchical protocol's group levels rely on.

Run as a process::

    python -m repro.runtime.relay --spec cluster.json

Replicas listed under the spec's ``relay_replicas`` are run the same
way with ``--replica N`` (1-based; 0 is the primary).  The relay prints
``relay ready on HOST:PORT`` to stdout once bound, so launchers can
wait for it before booting daemons.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, cast

from repro.net.packet import Packet
from repro.runtime.anet import (
    REANNOUNCE_PERIOD,
    RELAY_ACK,
    RELAY_DST,
    RELAY_SUB,
    RELAY_UNSUB,
    ClusterSpec,
)
from repro.runtime.wire import (
    Reassembler,
    WireError,
    decode_packet,
    encode_packet,
    is_fragment,
)

__all__ = ["ChannelRelay", "MEMBER_EXPIRY", "main", "serve"]

#: A member not re-announced within this window is dropped from the
#: fan-out tables (3 missed re-announce periods).
MEMBER_EXPIRY = 3 * REANNOUNCE_PERIOD


@dataclass(slots=True)
class _Member:
    """One subscriber's soft state."""

    addr: Tuple[str, int]
    segment: str
    last_seen: float


class ChannelRelay(asyncio.DatagramProtocol):
    """Fan-out state machine behind one UDP socket."""

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        clock: Callable[[], float] = time.monotonic,
        expiry: float = MEMBER_EXPIRY,
    ) -> None:
        self.spec = spec
        self._clock = clock
        self.expiry = expiry
        #: node -> soft state (last seen address, segment, last announce)
        self.members: Dict[str, _Member] = {}
        #: channel -> subscriber node ids (insertion-ordered)
        self.channels: Dict[str, Dict[str, None]] = {}
        #: datagrams dropped because they failed to decode
        self.wire_errors = 0
        #: members dropped by soft-state expiry
        self.expired = 0
        self._reasm = Reassembler(clock=clock)
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._sweep_handle: Optional[asyncio.TimerHandle] = None

    # -- asyncio protocol ----------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        # Not isinstance-checked: CPython's selector event loop hands a
        # _SelectorDatagramTransport that does not subclass
        # asyncio.DatagramTransport (bpo-46756 lineage).
        self._transport = cast(asyncio.DatagramTransport, transport)

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        if is_fragment(data):
            try:
                frame = self._reasm.add(data)
            except WireError:
                self.wire_errors += 1
                return
            if frame is None:
                return
            self._handle_frame(frame.payload, addr, frame.fragments)
        else:
            self._handle_frame(data, addr, (data,))

    def _handle_frame(
        self, data: bytes, addr: Tuple[str, int], datagrams: Sequence[bytes]
    ) -> None:
        try:
            pkt, _port = decode_packet(data)
        except WireError:
            self.wire_errors += 1
            return
        if pkt.kind == RELAY_SUB:
            self._on_sub(pkt.payload, addr)
        elif pkt.kind == RELAY_UNSUB:
            self._on_unsub(pkt.payload)
        elif pkt.channel is not None:
            self._forward(datagrams, pkt.src, pkt.channel, pkt.ttl, addr)

    # -- soft-state expiry ---------------------------------------------
    def expire(self, now: Optional[float] = None) -> int:
        """Drop members not re-announced within :attr:`expiry` seconds."""
        if now is None:
            now = self._clock()
        stale = [
            node
            for node, member in self.members.items()
            if now - member.last_seen > self.expiry
        ]
        for node in stale:
            del self.members[node]
            for subs in self.channels.values():
                subs.pop(node, None)
        self.expired += len(stale)
        self._reasm.expire(now)
        return len(stale)

    def start_sweeper(self, loop: asyncio.AbstractEventLoop) -> None:
        """Run :meth:`expire` periodically on ``loop``."""
        interval = max(self.expiry / 3.0, 0.05)

        def tick() -> None:
            self.expire()
            self._sweep_handle = loop.call_later(interval, tick)

        self._sweep_handle = loop.call_later(interval, tick)

    def stop_sweeper(self) -> None:
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None

    # -- control -------------------------------------------------------
    def _on_sub(self, payload: object, addr: Tuple[str, int]) -> None:
        if not isinstance(payload, dict):
            return
        node = payload.get("node")
        segment = payload.get("segment")
        channels = payload.get("channels")
        if not isinstance(node, str) or not isinstance(segment, str):
            return
        if not isinstance(channels, list):
            return
        self.members[node] = _Member(addr=addr, segment=segment, last_seen=self._clock())
        for channel in channels:
            if isinstance(channel, str):
                self.channels.setdefault(channel, {})[node] = None
        self._ack(node, addr)

    def _ack(self, node: str, addr: Tuple[str, int]) -> None:
        """Answer an announce: the daemon's relay health signal."""
        transport = self._transport
        if transport is None:
            return
        ack = Packet(src=RELAY_DST, kind=RELAY_ACK, payload=None, size=0, dst=node)
        transport.sendto(encode_packet(ack), addr)

    def _on_unsub(self, payload: object) -> None:
        if not isinstance(payload, dict):
            return
        node = payload.get("node")
        channels = payload.get("channels")
        if not isinstance(node, str) or not isinstance(channels, list):
            return
        for channel in channels:
            subs = self.channels.get(channel)
            if subs is not None:
                subs.pop(node, None)

    # -- fan-out -------------------------------------------------------
    def _forward(
        self,
        datagrams: Sequence[bytes],
        src: str,
        channel: str,
        ttl: int,
        src_addr: Tuple[str, int],
    ) -> None:
        transport = self._transport
        if transport is None:
            return
        sender = self.members.get(src)
        # A publish can race the first relay_sub; the sender's datagram
        # source address plus its spec segment keep scoping correct.
        if sender is not None:
            src_segment = sender.segment
        else:
            node_spec = self.spec.nodes.get(src)
            src_segment = node_spec.segment if node_spec is not None else ""
        subs = self.channels.get(channel)
        if not subs:
            return
        for node in subs:
            if node == src:
                continue  # the fabric never echoes to the sender
            member = self.members.get(node)
            if member is None:
                continue
            if src_segment and self.spec.ttl_distance(src_segment, member.segment) > ttl:
                continue
            for datagram in datagrams:
                transport.sendto(datagram, member.addr)


async def serve(spec: ClusterSpec, host: str, port: int) -> ChannelRelay:
    """Bind the relay socket; returns the live protocol instance."""
    loop = asyncio.get_running_loop()
    relay = ChannelRelay(spec)
    await loop.create_datagram_endpoint(lambda: relay, local_addr=(host, port))
    relay.start_sweeper(loop)
    return relay


async def _run(
    spec_path: str, host: Optional[str], port: Optional[int], replica: int
) -> None:
    spec = ClusterSpec.load(spec_path)
    candidates = spec.relay_list
    if not (0 <= replica < len(candidates)):
        raise SystemExit(
            f"--replica {replica} out of range: spec lists {len(candidates)} relay(s)"
        )
    endpoint = candidates[replica]
    bind_host = host if host is not None else endpoint.host
    bind_port = port if port is not None else endpoint.port
    await serve(spec, bind_host, bind_port)
    print(f"relay ready on {bind_host}:{bind_port}", flush=True)
    await asyncio.Event().wait()  # run until killed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.relay",
        description="TTL-scoped channel relay for real-network clusters",
    )
    parser.add_argument("--spec", required=True, help="cluster spec JSON path")
    parser.add_argument("--host", default=None, help="bind host (default: spec)")
    parser.add_argument("--port", type=int, default=None, help="bind port (default: spec)")
    parser.add_argument(
        "--replica", type=int, default=0,
        help="which relay endpoint to bind: 0 = primary, N >= 1 = spec relay_replicas[N-1]",
    )
    opts = parser.parse_args(argv)
    try:
        asyncio.run(_run(opts.spec, opts.host, opts.port, opts.replica))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
