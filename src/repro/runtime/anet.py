"""The real-network adapter: :class:`NodeRuntime` over asyncio/UDP.

Where :class:`~repro.runtime.sim.SimRuntime` maps the ports onto the
discrete-event kernel, :class:`AsyncRuntime` maps the *same* ports onto
an asyncio event loop and one UDP socket per daemon:

* **clock** — the loop's monotonic clock, rebased so ``now`` starts near
  zero at :meth:`AsyncRuntime.start` (traces stay comparable to sim
  runs);
* **timers** — one-shots via ``loop.call_later`` with the same epoch
  guard as the simulator (scheduled-in-one-life never fires into the
  next); recurring timers reimplement the
  :class:`~repro.sim.engine.RecurringTimer` contract exactly — first
  fire at ``now + (first_delay if given else period)``, re-arm at
  ``fire_time + period`` *after* the callback so a self-cancelling
  callback stops cleanly, and no epoch guard (they belong to the life,
  not the incarnation);
* **unicast** — datagrams to the peer's address from the
  :class:`ClusterSpec` address book, framed by :mod:`repro.runtime.wire`
  and dispatched to the bound handler by port name;
* **multicast** — there is no usable IP multicast on a loopback test
  rig, so TTL-scoped channels go through the channel relay
  (:mod:`repro.runtime.relay`): ``publish`` sends one framed datagram to
  the relay, which fans out to every subscriber within TTL distance and
  never back to the sender (matching the simulated fabric).

Hardening (the two real-network cliffs):

* **Fragmentation** — frames larger than the spec's ``max_datagram``
  are split by :func:`repro.runtime.wire.fragment_frame` and
  reassembled transparently on receive; oversized raw datagrams (and
  OS-level send errors, including ICMP errors surfaced through
  ``error_received``) are counted as send failures and refused, so
  ``publish``/``send`` keep their *accepted for send* contract honest.
* **Relay failover** — the spec may list relay replicas.  Each
  ``relay_sub`` announce is acked by the relay; when the active relay
  stops acking for :data:`RELAY_TIMEOUT`, the runtime fails over to the
  next candidate (capped exponential backoff between full cycles), and
  once every candidate has failed it degrades to **direct unicast
  fan-out**: ``publish`` sends the framed channel datagram straight to
  every spec node within TTL distance (computed locally from segments).
  The first ack from any probed relay restores relay mode.

The runtime must be started inside a running event loop
(``await runtime.start()``) before any protocol ``start()`` schedules
timers or sends datagrams.
"""

from __future__ import annotations

import asyncio
import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet
from repro.obs.wiring import NOOP, Instruments
from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle
from repro.runtime.wire import (
    DEFAULT_MAX_DATAGRAM,
    MAX_UDP_PAYLOAD,
    Reassembler,
    WireError,
    decode_packet,
    encode_packet,
    fragment_frame,
    is_fragment,
)
from repro.sim.trace import Trace

__all__ = [
    "AsyncRuntime",
    "ClusterSpec",
    "NodeSpec",
    "RelaySpec",
    "RELAY_DST",
    "RELAY_SUB",
    "RELAY_UNSUB",
    "RELAY_ACK",
    "REANNOUNCE_PERIOD",
    "RELAY_TIMEOUT",
    "RELAY_BACKOFF_CAP",
    "FRAGMENT_TIMEOUT",
]

#: Pseudo-destination for relay control datagrams (a Packet must carry
#: exactly one of dst/channel; control traffic is unicast to the relay).
RELAY_DST = "__relay__"

#: Relay control packet kinds.
RELAY_SUB = "relay_sub"
RELAY_UNSUB = "relay_unsub"
#: Relay -> daemon: acknowledges a ``relay_sub`` (the health signal the
#: failover logic watches).
RELAY_ACK = "relay_ack"

#: How often a daemon re-announces its subscriptions to the relay.  UDP
#: control datagrams can be lost; periodic re-announce makes membership
#: in the fan-out tables soft state, healed within one period.
REANNOUNCE_PERIOD = 2.0

#: No ack from the active relay for this long -> try the next candidate.
RELAY_TIMEOUT = 3 * REANNOUNCE_PERIOD

#: Cap on the exponential backoff between relay probe cycles once every
#: candidate has failed (the runtime is in unicast fallback meanwhile).
RELAY_BACKOFF_CAP = 30.0

#: A reassembly buffer missing fragments for this long is dropped.
FRAGMENT_TIMEOUT = 5.0


# ----------------------------------------------------------------------
# Cluster specification (the address book)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class NodeSpec:
    """One daemon's addresses: UDP endpoint, HTTP port, LAN segment."""

    host: str
    port: int
    http_port: int = 0
    segment: str = "s0"


@dataclass(frozen=True, slots=True)
class RelaySpec:
    """The channel relay's UDP endpoint."""

    host: str
    port: int


@dataclass(slots=True)
class ClusterSpec:
    """Static description of a deployed cluster.

    Real deployments would discover addresses via the bootstrap channel;
    for the localhost harness a JSON spec file stands in: the relay
    endpoint, every node's addresses, the segment layout, and protocol
    config overrides applied uniformly by the daemon entrypoint.
    """

    relay: RelaySpec
    nodes: Dict[str, NodeSpec]
    #: Routers on the path between two *distinct* segments.  The default
    #: mirrors the standard LAN builder: per-segment switch plus one core
    #: router, so same-segment distance is 1 and cross-segment is 2.
    routers_between_segments: int = 1
    #: ``HierarchicalConfig`` field overrides (e.g. ``heartbeat_period``).
    config: Dict[str, Any] = field(default_factory=dict)
    #: Standby relay endpoints, tried in order after the primary when the
    #: active relay stops acking announces.
    relay_replicas: List[RelaySpec] = field(default_factory=list)
    #: Safe per-datagram byte budget; frames above it are fragmented.
    max_datagram: int = DEFAULT_MAX_DATAGRAM

    @property
    def relay_list(self) -> List[RelaySpec]:
        """Failover order: the primary relay, then every replica."""
        return [self.relay, *self.relay_replicas]

    def ttl_distance(self, seg_a: str, seg_b: str) -> int:
        """TTL distance between two segments: ``1 + routers on path``."""
        if seg_a == seg_b:
            return 1
        return 1 + self.routers_between_segments

    def addr(self, node_id: str) -> Optional[Tuple[str, int]]:
        spec = self.nodes.get(node_id)
        if spec is None:
            return None
        return (spec.host, spec.port)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ClusterSpec":
        relay_raw = raw["relay"]
        nodes: Dict[str, NodeSpec] = {}
        for node_id, ns in raw["nodes"].items():
            nodes[node_id] = NodeSpec(
                host=ns["host"],
                port=int(ns["port"]),
                http_port=int(ns.get("http_port", 0)),
                segment=str(ns.get("segment", "s0")),
            )
        replicas = [
            RelaySpec(host=rs["host"], port=int(rs["port"]))
            for rs in raw.get("relay_replicas", [])
        ]
        return cls(
            relay=RelaySpec(host=relay_raw["host"], port=int(relay_raw["port"])),
            nodes=nodes,
            routers_between_segments=int(raw.get("routers_between_segments", 1)),
            config=dict(raw.get("config", {})),
            relay_replicas=replicas,
            max_datagram=int(raw.get("max_datagram", DEFAULT_MAX_DATAGRAM)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relay": {"host": self.relay.host, "port": self.relay.port},
            "relay_replicas": [
                {"host": rs.host, "port": rs.port} for rs in self.relay_replicas
            ],
            "max_datagram": self.max_datagram,
            "routers_between_segments": self.routers_between_segments,
            "config": dict(self.config),
            "nodes": {
                node_id: {
                    "host": ns.host,
                    "port": ns.port,
                    "http_port": ns.http_port,
                    "segment": ns.segment,
                }
                for node_id, ns in self.nodes.items()
            },
        }


# ----------------------------------------------------------------------
# Timer handles
# ----------------------------------------------------------------------
class _OneShot:
    """Epoch-guarded one-shot over ``loop.call_later``."""

    __slots__ = ("cancelled", "_handle")

    def __init__(self) -> None:
        self.cancelled = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class _Recurring:
    """Mirror of :class:`repro.sim.engine.RecurringTimer` over asyncio.

    Fires at ``start + first_delay`` then every ``period`` of *scheduled*
    time (re-armed at ``fire_time + period``, not ``now + period``, so
    slow callbacks do not drift the cadence).  Re-arm happens after the
    callback returns: a callback that cancels its own timer is never
    rescheduled.
    """

    __slots__ = ("cancelled", "_runtime", "_period", "_fn", "_args", "_next", "_handle")

    def __init__(
        self,
        runtime: "AsyncRuntime",
        period: float,
        fn: Callable[..., object],
        args: Tuple[object, ...],
        first_delay: Optional[float],
    ) -> None:
        if period <= 0:
            raise ValueError(f"recurring timer period must be positive, got {period}")
        if first_delay is not None and first_delay < 0:
            raise ValueError(f"first_delay must be >= 0, got {first_delay}")
        self.cancelled = False
        self._runtime = runtime
        self._period = period
        self._fn = fn
        self._args = args
        delay = period if first_delay is None else first_delay
        self._next = runtime.now + delay
        self._handle = runtime._call_at(self._next, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self._fn(*self._args)
        if self.cancelled:
            return
        self._next += self._period
        self._handle = self._runtime._call_at(self._next, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class _NodeProtocol(asyncio.DatagramProtocol):
    """Feeds received datagrams into the runtime's dispatcher."""

    def __init__(self, runtime: "AsyncRuntime") -> None:
        self._runtime = runtime

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self._runtime._on_datagram(data)

    def error_received(self, exc: Exception) -> None:
        # The OS surfacing an async send failure (ICMP port/host
        # unreachable, EMSGSIZE on some stacks).  The datagram is gone;
        # count it so "accepted for send" stays an honest contract.
        self._runtime._on_send_error(type(exc).__name__)


# ----------------------------------------------------------------------
# The adapter
# ----------------------------------------------------------------------
class AsyncRuntime(NodeRuntime):
    """One daemon's runtime over a real asyncio event loop and UDP."""

    def __init__(
        self,
        spec: ClusterSpec,
        node_id: str,
        *,
        trace: Optional[Trace] = None,
        instruments: Optional[Instruments] = None,
        seed: int = 0,
    ) -> None:
        if node_id not in spec.nodes:
            raise ValueError(f"node {node_id!r} not in cluster spec")
        self.spec = spec
        self.node_id = node_id
        self.segment = spec.nodes[node_id].segment
        self._trace = trace
        self._obs = instruments if instruments is not None else NOOP
        self._seed = seed
        self._active = False
        self._epoch = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._oneshots: Set[_OneShot] = set()
        self._recurring: List[_Recurring] = []
        self._subs: Dict[str, PacketHandler] = {}
        self._bound: Dict[str, PacketHandler] = {}
        self._reannounce: Optional[asyncio.TimerHandle] = None
        #: Datagrams dropped because they failed to decode.
        self.wire_errors = 0
        #: Sends refused or errored (oversize, OS error, ICMP report).
        self.send_errors = 0
        #: Reassembly buffers dropped (missing-fragment timeout/budget).
        self.frag_drops = 0
        #: Relay candidate switches after a health-check timeout.
        self.relay_failovers = 0
        # -- fragmentation --------------------------------------------
        #: Per-datagram byte budget; frames above it are fragmented.
        #: Instance attribute (seeded from the spec) so tests can tune.
        self.max_datagram = spec.max_datagram
        self._frame_seq = 0
        self._reasm = Reassembler(
            timeout=FRAGMENT_TIMEOUT, on_drop=self._on_frag_drop
        )
        # -- relay failover -------------------------------------------
        #: Health/backoff knobs; instance attributes so tests can tune
        #: them (before start()) without monkeypatching the module.
        self.reannounce_period = REANNOUNCE_PERIOD
        self.relay_timeout = RELAY_TIMEOUT
        self.relay_backoff_cap = RELAY_BACKOFF_CAP
        self._relay_idx = 0
        self._relay_fallback = False
        self._relay_dead = 0  # candidates failed since the last ack
        self._relay_probe_timeout = self.relay_timeout
        self._last_relay_ack = 0.0  # raw loop time
        self._candidate_since = 0.0  # raw loop time

    # ------------------------------------------------------------------
    # Transport lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the UDP endpoint and begin relay re-announcements."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._t0 = loop.time()
        node = self.spec.nodes[self.node_id]
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self), local_addr=(node.host, node.port)
        )
        self._transport = transport
        self._relay_probe_timeout = self.relay_timeout
        self._last_relay_ack = loop.time()
        self._candidate_since = loop.time()
        self._schedule_reannounce()

    def close(self) -> None:
        """Tear down: deactivate, stop re-announce, close the socket."""
        self.deactivate()
        if self._reannounce is not None:
            self._reannounce.cancel()
            self._reannounce = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def _lp(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("AsyncRuntime.start() must run before use")
        return self._loop

    def _call_at(self, when: float, fn: Callable[[], None]) -> asyncio.TimerHandle:
        loop = self._lp()
        return loop.call_at(self._t0 + when, fn)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    # ------------------------------------------------------------------
    # Lifecycle / epochs
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> None:
        self._active = True
        self._epoch += 1

    def deactivate(self) -> None:
        self._active = False
        for oneshot in list(self._oneshots):
            oneshot.cancel()
        self._oneshots.clear()
        for timer in self._recurring:
            timer.cancel()
        self._recurring.clear()

    def bump_epoch(self) -> None:
        self._epoch += 1

    @property
    def live_timers(self) -> int:
        return sum(1 for t in self._oneshots if not t.cancelled) + sum(
            1 for t in self._recurring if not t.cancelled
        )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def call_once(
        self, delay: float, fn: Callable[..., object], *args: object
    ) -> TimerHandle:
        if delay < 0:
            raise ValueError(f"one-shot delay must be >= 0, got {delay}")
        epoch = self._epoch
        timer = _OneShot()

        def fire() -> None:
            self._oneshots.discard(timer)
            if self._active and self._epoch == epoch:
                fn(*args)

        timer._handle = self._lp().call_later(delay, fire)
        self._oneshots.add(timer)
        return timer

    def call_every(
        self,
        period: float,
        fn: Callable[..., object],
        *args: object,
        first_delay: Optional[float] = None,
    ) -> TimerHandle:
        self._lp()
        timer = _Recurring(self, period, fn, args, first_delay)
        self._recurring.append(timer)
        return timer

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes) -> None:
        if is_fragment(data):
            try:
                frame = self._reasm.add(data)
            except WireError:
                self._count_wire_error(len(data))
                return
            if frame is None:
                return  # frame still incomplete (or a duplicate slice)
            data = frame.payload
        try:
            pkt, port = decode_packet(data)
        except WireError:
            self._count_wire_error(len(data))
            return
        if pkt.kind == RELAY_ACK:
            self._on_relay_ack()
        elif port is not None:
            handler = self._bound.get(port)
            if handler is not None and pkt.dst == self.node_id:
                handler(pkt)
        elif pkt.channel is not None:
            # The relay never echoes to the sender, but a misbehaving
            # relay must not let a node hear itself (and in unicast
            # fallback the fan-out is sender-side, so the filter is
            # load-bearing for loop-shaped specs).
            handler = self._subs.get(pkt.channel)
            if handler is not None and pkt.src != self.node_id:
                handler(pkt)

    def _count_wire_error(self, bytes_len: int) -> None:
        self.wire_errors += 1
        self._obs.wire_errors.inc()
        self.emit("wire_error", bytes_len=bytes_len)

    def _on_frag_drop(self, reason: str) -> None:
        self.frag_drops += 1
        self._obs.frag_drops.inc()
        self.emit("frag_drop", reason=reason)

    def _on_send_error(self, reason: str) -> None:
        self.send_errors += 1
        self._obs.send_errors.inc()
        self.emit("send_error", reason=reason)

    def _next_frame_id(self) -> int:
        self._frame_seq = (self._frame_seq + 1) & 0xFFFFFFFF
        return self._frame_seq

    def _sendto(self, data: bytes, addr: Tuple[str, int]) -> bool:
        transport = self._transport
        if transport is None or transport.is_closing():
            return False
        if len(data) > self.max_datagram:
            try:
                frags = fragment_frame(
                    data, self.node_id, self._next_frame_id(), self.max_datagram
                )
            except WireError:
                self._on_send_error("unfragmentable")
                return False
            ok = True
            for frag in frags:
                ok = self._raw_send(transport, frag, addr) and ok
            return ok
        return self._raw_send(transport, data, addr)

    def _raw_send(
        self, transport: asyncio.DatagramTransport, data: bytes, addr: Tuple[str, int]
    ) -> bool:
        if len(data) > MAX_UDP_PAYLOAD:
            # The OS would reject this with EMSGSIZE; refuse it locally
            # so the "accepted for send" return value stays truthful.
            self._on_send_error("oversize")
            return False
        try:
            transport.sendto(data, addr)
        except OSError as exc:
            self._on_send_error(type(exc).__name__)
            return False
        return True

    # ------------------------------------------------------------------
    # Multicast channels (via the relay, with failover)
    # ------------------------------------------------------------------
    @property
    def relay_index(self) -> int:
        """Index of the active relay candidate in ``spec.relay_list``."""
        return self._relay_idx

    @property
    def relay_fallback(self) -> bool:
        """True while no relay acks and publish degrades to unicast."""
        return self._relay_fallback

    def _relay_addr(self) -> Tuple[str, int]:
        relay = self.spec.relay_list[self._relay_idx]
        return (relay.host, relay.port)

    def _announce(self) -> None:
        """(Re-)send the full subscription set to the active relay.

        Sent even with zero subscriptions: the announce doubles as the
        relay health probe (the relay acks it), and it keeps this node's
        address registered for fan-out scoping.
        """
        if self._transport is None:
            return
        pkt = Packet(
            src=self.node_id,
            kind=RELAY_SUB,
            payload={
                "node": self.node_id,
                "segment": self.segment,
                "channels": sorted(self._subs),
            },
            size=0,
            dst=RELAY_DST,
        )
        self._sendto(encode_packet(pkt), self._relay_addr())

    def _schedule_reannounce(self) -> None:
        loop = self._lp()

        def tick() -> None:
            self._reasm.expire()
            self._relay_health_check()
            self._announce()
            self._reannounce = loop.call_later(self.reannounce_period, tick)

        self._reannounce = loop.call_later(self.reannounce_period, tick)

    def _relay_health_check(self) -> None:
        """Fail over when the active relay has not acked in time.

        Candidates are tried round-robin; once a whole cycle fails the
        runtime enters unicast fallback and keeps probing the ring with
        a capped exponential backoff.  Any ack resets everything.
        """
        loop = self._loop
        if loop is None:
            return
        now = loop.time()
        heard = max(self._last_relay_ack, self._candidate_since)
        if now - heard <= self._relay_probe_timeout:
            return
        candidates = self.spec.relay_list
        self._relay_idx = (self._relay_idx + 1) % len(candidates)
        self._candidate_since = now
        self._relay_dead += 1
        self.relay_failovers += 1
        self._obs.relay_failovers.inc()
        self.emit("relay_failover", index=self._relay_idx)
        if self._relay_dead >= len(candidates):
            if not self._relay_fallback:
                self._relay_fallback = True
                self.emit("relay_fallback")
            self._relay_probe_timeout = min(
                self._relay_probe_timeout * 2, self.relay_backoff_cap
            )

    def _on_relay_ack(self) -> None:
        loop = self._loop
        if loop is None:
            return
        self._last_relay_ack = loop.time()
        self._relay_dead = 0
        self._relay_probe_timeout = self.relay_timeout
        if self._relay_fallback:
            self._relay_fallback = False
            self.emit("relay_restored", index=self._relay_idx)

    def _fanout_unicast(self, data: bytes, ttl: int) -> bool:
        """Degraded multicast: direct fan-out over the spec's addresses.

        TTL scoping is computed locally from the segment layout, exactly
        as the relay would.  Receivers filter on their own subscription
        table, so over-delivery to non-subscribers is harmless.
        """
        ok = True
        sent = False
        for node_id, ns in self.spec.nodes.items():
            if node_id == self.node_id:
                continue
            if self.spec.ttl_distance(self.segment, ns.segment) > ttl:
                continue
            sent = True
            ok = self._sendto(data, (ns.host, ns.port)) and ok
        return ok if sent else True

    def subscribe(self, channel: str, handler: PacketHandler) -> None:
        self._subs[channel] = handler
        self._announce()

    def unsubscribe(self, channel: str) -> None:
        self._subs.pop(channel, None)
        pkt = Packet(
            src=self.node_id,
            kind=RELAY_UNSUB,
            payload={"node": self.node_id, "channels": [channel]},
            size=0,
            dst=RELAY_DST,
        )
        self._sendto(encode_packet(pkt), self._relay_addr())

    def publish(
        self, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> bool:
        pkt = Packet(
            src=self.node_id,
            kind=kind,
            payload=payload,
            size=size,
            channel=channel,
            ttl=ttl,
        )
        data = encode_packet(pkt)
        if self._relay_fallback:
            return self._fanout_unicast(data, ttl)
        return self._sendto(data, self._relay_addr())

    # ------------------------------------------------------------------
    # Unicast datagrams
    # ------------------------------------------------------------------
    def bind(self, port: str, handler: PacketHandler) -> None:
        self._bound[port] = handler

    def unbind(self, port: str) -> None:
        self._bound.pop(port, None)

    def send(
        self, dst: str, kind: str, payload: object, size: int, port: str = "membership"
    ) -> bool:
        addr = self.spec.addr(dst)
        if addr is None:
            # Refused locally: no address for the destination.  The port
            # contract makes this the only meaningful False.
            return False
        pkt = Packet(src=self.node_id, kind=kind, payload=payload, size=size, dst=dst)
        return self._sendto(encode_packet(pkt, port), addr)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Instruments:
        return self._obs

    def emit(self, kind: str, **data: object) -> None:
        trace = self._trace
        if trace is not None and trace.wants(kind):
            trace.emit(self.now, kind, node=self.node_id, **data)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng_stream(self, name: str) -> random.Random:
        # Stable across processes (no PYTHONHASHSEED dependence): each
        # named stream derives from the deployment seed and a CRC of the
        # stream name.
        return random.Random((self._seed << 32) ^ zlib.crc32(name.encode("utf-8")))
