"""The real-network adapter: :class:`NodeRuntime` over asyncio/UDP.

Where :class:`~repro.runtime.sim.SimRuntime` maps the ports onto the
discrete-event kernel, :class:`AsyncRuntime` maps the *same* ports onto
an asyncio event loop and one UDP socket per daemon:

* **clock** — the loop's monotonic clock, rebased so ``now`` starts near
  zero at :meth:`AsyncRuntime.start` (traces stay comparable to sim
  runs);
* **timers** — one-shots via ``loop.call_later`` with the same epoch
  guard as the simulator (scheduled-in-one-life never fires into the
  next); recurring timers reimplement the
  :class:`~repro.sim.engine.RecurringTimer` contract exactly — first
  fire at ``now + (first_delay if given else period)``, re-arm at
  ``fire_time + period`` *after* the callback so a self-cancelling
  callback stops cleanly, and no epoch guard (they belong to the life,
  not the incarnation);
* **unicast** — datagrams to the peer's address from the
  :class:`ClusterSpec` address book, framed by :mod:`repro.runtime.wire`
  and dispatched to the bound handler by port name;
* **multicast** — there is no usable IP multicast on a loopback test
  rig, so TTL-scoped channels go through the channel relay
  (:mod:`repro.runtime.relay`): ``publish`` sends one framed datagram to
  the relay, which fans out to every subscriber within TTL distance and
  never back to the sender (matching the simulated fabric).

The runtime must be started inside a running event loop
(``await runtime.start()``) before any protocol ``start()`` schedules
timers or sends datagrams.
"""

from __future__ import annotations

import asyncio
import json
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.packet import Packet
from repro.obs.wiring import NOOP, Instruments
from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle
from repro.runtime.wire import WireError, decode_packet, encode_packet
from repro.sim.trace import Trace

__all__ = [
    "AsyncRuntime",
    "ClusterSpec",
    "NodeSpec",
    "RelaySpec",
    "RELAY_DST",
    "RELAY_SUB",
    "RELAY_UNSUB",
]

#: Pseudo-destination for relay control datagrams (a Packet must carry
#: exactly one of dst/channel; control traffic is unicast to the relay).
RELAY_DST = "__relay__"

#: Relay control packet kinds.
RELAY_SUB = "relay_sub"
RELAY_UNSUB = "relay_unsub"

#: How often a daemon re-announces its subscriptions to the relay.  UDP
#: control datagrams can be lost; periodic re-announce makes membership
#: in the fan-out tables soft state, healed within one period.
REANNOUNCE_PERIOD = 2.0


# ----------------------------------------------------------------------
# Cluster specification (the address book)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class NodeSpec:
    """One daemon's addresses: UDP endpoint, HTTP port, LAN segment."""

    host: str
    port: int
    http_port: int = 0
    segment: str = "s0"


@dataclass(frozen=True, slots=True)
class RelaySpec:
    """The channel relay's UDP endpoint."""

    host: str
    port: int


@dataclass(slots=True)
class ClusterSpec:
    """Static description of a deployed cluster.

    Real deployments would discover addresses via the bootstrap channel;
    for the localhost harness a JSON spec file stands in: the relay
    endpoint, every node's addresses, the segment layout, and protocol
    config overrides applied uniformly by the daemon entrypoint.
    """

    relay: RelaySpec
    nodes: Dict[str, NodeSpec]
    #: Routers on the path between two *distinct* segments.  The default
    #: mirrors the standard LAN builder: per-segment switch plus one core
    #: router, so same-segment distance is 1 and cross-segment is 2.
    routers_between_segments: int = 1
    #: ``HierarchicalConfig`` field overrides (e.g. ``heartbeat_period``).
    config: Dict[str, Any] = field(default_factory=dict)

    def ttl_distance(self, seg_a: str, seg_b: str) -> int:
        """TTL distance between two segments: ``1 + routers on path``."""
        if seg_a == seg_b:
            return 1
        return 1 + self.routers_between_segments

    def addr(self, node_id: str) -> Optional[Tuple[str, int]]:
        spec = self.nodes.get(node_id)
        if spec is None:
            return None
        return (spec.host, spec.port)

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ClusterSpec":
        relay_raw = raw["relay"]
        nodes: Dict[str, NodeSpec] = {}
        for node_id, ns in raw["nodes"].items():
            nodes[node_id] = NodeSpec(
                host=ns["host"],
                port=int(ns["port"]),
                http_port=int(ns.get("http_port", 0)),
                segment=str(ns.get("segment", "s0")),
            )
        return cls(
            relay=RelaySpec(host=relay_raw["host"], port=int(relay_raw["port"])),
            nodes=nodes,
            routers_between_segments=int(raw.get("routers_between_segments", 1)),
            config=dict(raw.get("config", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ClusterSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relay": {"host": self.relay.host, "port": self.relay.port},
            "routers_between_segments": self.routers_between_segments,
            "config": dict(self.config),
            "nodes": {
                node_id: {
                    "host": ns.host,
                    "port": ns.port,
                    "http_port": ns.http_port,
                    "segment": ns.segment,
                }
                for node_id, ns in self.nodes.items()
            },
        }


# ----------------------------------------------------------------------
# Timer handles
# ----------------------------------------------------------------------
class _OneShot:
    """Epoch-guarded one-shot over ``loop.call_later``."""

    __slots__ = ("cancelled", "_handle")

    def __init__(self) -> None:
        self.cancelled = False
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class _Recurring:
    """Mirror of :class:`repro.sim.engine.RecurringTimer` over asyncio.

    Fires at ``start + first_delay`` then every ``period`` of *scheduled*
    time (re-armed at ``fire_time + period``, not ``now + period``, so
    slow callbacks do not drift the cadence).  Re-arm happens after the
    callback returns: a callback that cancels its own timer is never
    rescheduled.
    """

    __slots__ = ("cancelled", "_runtime", "_period", "_fn", "_args", "_next", "_handle")

    def __init__(
        self,
        runtime: "AsyncRuntime",
        period: float,
        fn: Callable[..., object],
        args: Tuple[object, ...],
        first_delay: Optional[float],
    ) -> None:
        if period <= 0:
            raise ValueError(f"recurring timer period must be positive, got {period}")
        if first_delay is not None and first_delay < 0:
            raise ValueError(f"first_delay must be >= 0, got {first_delay}")
        self.cancelled = False
        self._runtime = runtime
        self._period = period
        self._fn = fn
        self._args = args
        delay = period if first_delay is None else first_delay
        self._next = runtime.now + delay
        self._handle = runtime._call_at(self._next, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self._fn(*self._args)
        if self.cancelled:
            return
        self._next += self._period
        self._handle = self._runtime._call_at(self._next, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class _NodeProtocol(asyncio.DatagramProtocol):
    """Feeds received datagrams into the runtime's dispatcher."""

    def __init__(self, runtime: "AsyncRuntime") -> None:
        self._runtime = runtime

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self._runtime._on_datagram(data)


# ----------------------------------------------------------------------
# The adapter
# ----------------------------------------------------------------------
class AsyncRuntime(NodeRuntime):
    """One daemon's runtime over a real asyncio event loop and UDP."""

    def __init__(
        self,
        spec: ClusterSpec,
        node_id: str,
        *,
        trace: Optional[Trace] = None,
        instruments: Optional[Instruments] = None,
        seed: int = 0,
    ) -> None:
        if node_id not in spec.nodes:
            raise ValueError(f"node {node_id!r} not in cluster spec")
        self.spec = spec
        self.node_id = node_id
        self.segment = spec.nodes[node_id].segment
        self._trace = trace
        self._obs = instruments if instruments is not None else NOOP
        self._seed = seed
        self._active = False
        self._epoch = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._oneshots: Set[_OneShot] = set()
        self._recurring: List[_Recurring] = []
        self._subs: Dict[str, PacketHandler] = {}
        self._bound: Dict[str, PacketHandler] = {}
        self._reannounce: Optional[asyncio.TimerHandle] = None
        #: Datagrams dropped because they failed to decode.
        self.wire_errors = 0

    # ------------------------------------------------------------------
    # Transport lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the UDP endpoint and begin relay re-announcements."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._t0 = loop.time()
        node = self.spec.nodes[self.node_id]
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _NodeProtocol(self), local_addr=(node.host, node.port)
        )
        self._transport = transport
        self._schedule_reannounce()

    def close(self) -> None:
        """Tear down: deactivate, stop re-announce, close the socket."""
        self.deactivate()
        if self._reannounce is not None:
            self._reannounce.cancel()
            self._reannounce = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def _lp(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("AsyncRuntime.start() must run before use")
        return self._loop

    def _call_at(self, when: float, fn: Callable[[], None]) -> asyncio.TimerHandle:
        loop = self._lp()
        return loop.call_at(self._t0 + when, fn)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    # ------------------------------------------------------------------
    # Lifecycle / epochs
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> None:
        self._active = True
        self._epoch += 1

    def deactivate(self) -> None:
        self._active = False
        for oneshot in list(self._oneshots):
            oneshot.cancel()
        self._oneshots.clear()
        for timer in self._recurring:
            timer.cancel()
        self._recurring.clear()

    def bump_epoch(self) -> None:
        self._epoch += 1

    @property
    def live_timers(self) -> int:
        return sum(1 for t in self._oneshots if not t.cancelled) + sum(
            1 for t in self._recurring if not t.cancelled
        )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def call_once(
        self, delay: float, fn: Callable[..., object], *args: object
    ) -> TimerHandle:
        if delay < 0:
            raise ValueError(f"one-shot delay must be >= 0, got {delay}")
        epoch = self._epoch
        timer = _OneShot()

        def fire() -> None:
            self._oneshots.discard(timer)
            if self._active and self._epoch == epoch:
                fn(*args)

        timer._handle = self._lp().call_later(delay, fire)
        self._oneshots.add(timer)
        return timer

    def call_every(
        self,
        period: float,
        fn: Callable[..., object],
        *args: object,
        first_delay: Optional[float] = None,
    ) -> TimerHandle:
        self._lp()
        timer = _Recurring(self, period, fn, args, first_delay)
        self._recurring.append(timer)
        return timer

    # ------------------------------------------------------------------
    # Datagram dispatch
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes) -> None:
        try:
            pkt, port = decode_packet(data)
        except WireError:
            self.wire_errors += 1
            self.emit("wire_error", bytes_len=len(data))
            return
        if port is not None:
            handler = self._bound.get(port)
            if handler is not None and pkt.dst == self.node_id:
                handler(pkt)
        elif pkt.channel is not None:
            # The relay never echoes to the sender, but a misbehaving
            # relay must not let a node hear itself.
            handler = self._subs.get(pkt.channel)
            if handler is not None and pkt.src != self.node_id:
                handler(pkt)

    def _sendto(self, data: bytes, addr: Tuple[str, int]) -> bool:
        transport = self._transport
        if transport is None or transport.is_closing():
            return False
        transport.sendto(data, addr)
        return True

    # ------------------------------------------------------------------
    # Multicast channels (via the relay)
    # ------------------------------------------------------------------
    def _relay_addr(self) -> Tuple[str, int]:
        return (self.spec.relay.host, self.spec.relay.port)

    def _announce(self) -> None:
        """(Re-)send the full subscription set to the relay."""
        if not self._subs or self._transport is None:
            return
        pkt = Packet(
            src=self.node_id,
            kind=RELAY_SUB,
            payload={
                "node": self.node_id,
                "segment": self.segment,
                "channels": sorted(self._subs),
            },
            size=0,
            dst=RELAY_DST,
        )
        self._sendto(encode_packet(pkt), self._relay_addr())

    def _schedule_reannounce(self) -> None:
        loop = self._lp()

        def tick() -> None:
            self._announce()
            self._reannounce = loop.call_later(REANNOUNCE_PERIOD, tick)

        self._reannounce = loop.call_later(REANNOUNCE_PERIOD, tick)

    def subscribe(self, channel: str, handler: PacketHandler) -> None:
        self._subs[channel] = handler
        self._announce()

    def unsubscribe(self, channel: str) -> None:
        self._subs.pop(channel, None)
        pkt = Packet(
            src=self.node_id,
            kind=RELAY_UNSUB,
            payload={"node": self.node_id, "channels": [channel]},
            size=0,
            dst=RELAY_DST,
        )
        self._sendto(encode_packet(pkt), self._relay_addr())

    def publish(
        self, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> bool:
        pkt = Packet(
            src=self.node_id,
            kind=kind,
            payload=payload,
            size=size,
            channel=channel,
            ttl=ttl,
        )
        return self._sendto(encode_packet(pkt), self._relay_addr())

    # ------------------------------------------------------------------
    # Unicast datagrams
    # ------------------------------------------------------------------
    def bind(self, port: str, handler: PacketHandler) -> None:
        self._bound[port] = handler

    def unbind(self, port: str) -> None:
        self._bound.pop(port, None)

    def send(
        self, dst: str, kind: str, payload: object, size: int, port: str = "membership"
    ) -> bool:
        addr = self.spec.addr(dst)
        if addr is None:
            # Refused locally: no address for the destination.  The port
            # contract makes this the only meaningful False.
            return False
        pkt = Packet(src=self.node_id, kind=kind, payload=payload, size=size, dst=dst)
        return self._sendto(encode_packet(pkt, port), addr)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self) -> Instruments:
        return self._obs

    def emit(self, kind: str, **data: object) -> None:
        trace = self._trace
        if trace is not None and trace.wants(kind):
            trace.emit(self.now, kind, node=self.node_id, **data)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng_stream(self, name: str) -> random.Random:
        # Stable across processes (no PYTHONHASHSEED dependence): each
        # named stream derives from the deployment seed and a CRC of the
        # stream name.
        return random.Random((self._seed << 32) ^ zlib.crc32(name.encode("utf-8")))
