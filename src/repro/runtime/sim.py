"""The simulator adapter: :class:`NodeRuntime` over ``repro.sim``/``repro.net``.

This is the *only* module where protocol code meets the discrete-event
kernel and the network fabrics.  Everything it does is a thin, 1:1
mapping onto the :class:`~repro.net.network.Network` facade, with two
pieces of genuine bookkeeping of its own:

* the **timer registry** — every one-shot and recurring timer created
  through the runtime is remembered and cancelled wholesale by
  :meth:`SimRuntime.deactivate`, so ``stop()`` on any protocol node
  leaves no live timers behind (previously each node class hand-rolled
  this, and the baselines got it wrong);
* the **epoch guard** — one-shots capture the epoch at scheduling time
  and are dropped at fire time if the runtime was deactivated or the
  epoch moved (daemon restart, or an incarnation bump from a death-rumor
  refutation).  This preserves the exact semantics of the former
  ``HierarchicalNode._call_once`` belt-and-braces incarnation check.

Determinism: ``call_once`` schedules exactly one kernel event (the
guard closure), ``call_every`` delegates to the kernel's allocation-free
:class:`~repro.sim.engine.RecurringTimer`, and nothing here draws
randomness — so moving a protocol stack onto the runtime cannot move a
single trace event.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Set

from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle

if TYPE_CHECKING:
    from repro.net.network import Network
    from repro.obs.wiring import Instruments
    from repro.sim.engine import ScheduledEvent

__all__ = ["SimRuntime"]


class SimRuntime(NodeRuntime):
    """One node's runtime, adapted onto a simulated :class:`Network`."""

    def __init__(self, network: "Network", node_id: str) -> None:
        self.network = network
        # The kernel clock is read on every heartbeat receive; cache the
        # simulator (fixed for the network's lifetime) so ``now`` is one
        # attribute load instead of a three-property chain.  Same for the
        # trace, probed once per (n^2-scale) view event.
        self._sim = network.sim
        self._trace = network.trace
        self.node_id = node_id
        self._active = False
        self._epoch = 0
        #: Live one-shot guard events.  Exposed (read/clear) for tests that
        #: sabotage the cancellation sweep to exercise the epoch guard.
        self.oneshots: Set["ScheduledEvent"] = set()
        self._recurring: List[TimerHandle] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._sim._now

    # ------------------------------------------------------------------
    # Lifecycle / epochs
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def activate(self) -> None:
        self._active = True
        self._epoch += 1

    def deactivate(self) -> None:
        self._active = False
        for event in list(self.oneshots):
            event.cancel()
        self.oneshots.clear()
        for timer in self._recurring:
            timer.cancel()
        self._recurring.clear()

    def bump_epoch(self) -> None:
        self._epoch += 1

    @property
    def live_timers(self) -> int:
        return sum(1 for e in self.oneshots if not e.cancelled) + sum(
            1 for t in self._recurring if not t.cancelled
        )

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def call_once(
        self, delay: float, fn: Callable[..., object], *args: object
    ) -> TimerHandle:
        epoch = self._epoch
        event: Optional["ScheduledEvent"] = None

        def fire() -> None:
            self.oneshots.discard(event)  # type: ignore[arg-type]
            if self._active and self._epoch == epoch:
                fn(*args)

        event = self._sim.call_after(delay, fire)
        self.oneshots.add(event)
        return event

    def call_every(
        self,
        period: float,
        fn: Callable[..., object],
        *args: object,
        first_delay: Optional[float] = None,
    ) -> TimerHandle:
        timer = self._sim.call_every(period, fn, *args, first_delay=first_delay)
        self._recurring.append(timer)
        return timer

    # ------------------------------------------------------------------
    # Multicast channels
    # ------------------------------------------------------------------
    def subscribe(self, channel: str, handler: PacketHandler) -> None:
        self.network.subscribe(channel, self.node_id, handler)

    def unsubscribe(self, channel: str) -> None:
        self.network.unsubscribe(channel, self.node_id)

    def publish(
        self, channel: str, ttl: int, kind: str, payload: object, size: int
    ) -> bool:
        # The fabric reports deliveries scheduled — simulator-only
        # knowledge that the port contract deliberately hides ("accepted
        # for send"); callers wanting delivery data read the trace/obs.
        self.network.multicast(
            self.node_id, channel, ttl=ttl, kind=kind, payload=payload, size=size
        )
        return True

    # ------------------------------------------------------------------
    # Unicast datagrams
    # ------------------------------------------------------------------
    def bind(self, port: str, handler: PacketHandler) -> None:
        self.network.bind(self.node_id, port, handler)

    def unbind(self, port: str) -> None:
        self.network.transport.unbind(self.node_id, port)

    def send(
        self, dst: str, kind: str, payload: object, size: int, port: str = "membership"
    ) -> bool:
        # Same contract note as ``publish``: the transport's return value
        # (delivery scheduled or dropped) is simulator-only knowledge and
        # is deliberately not surfaced through the port.
        self.network.unicast(
            self.node_id, dst, kind=kind, payload=payload, size=size, port=port
        )
        return True

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def obs(self) -> "Instruments":
        return self.network.obs

    def emit(self, kind: str, **data: object) -> None:
        trace = self._trace
        if trace.wants(kind):
            trace.emit(self._sim._now, kind, node=self.node_id, **data)

    def emit_view_event(self, kind: str, target: str) -> None:
        trace = self._trace
        if trace.wants(kind):
            trace.emit(self._sim._now, kind, node=self.node_id, target=target)

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng_stream(self, name: str) -> random.Random:
        return self.network.rng.stream(name)
