"""The node runtime layer: ports protocol code programs against.

The paper's daemon runs on a real operating system — threads, UDP
sockets, multicast group membership, wall-clock timers.  This
reproduction runs the same protocol logic over a discrete-event
simulator.  ``repro.runtime`` is the seam between the two: protocol
code (``repro.core.roles``, ``repro.protocols``) talks exclusively to
the :class:`NodeRuntime` ports — clock, one-shot and recurring timers,
multicast channel subscribe/publish, unicast bind/send, trace and
instrument emission — and :class:`SimRuntime` is the one adapter that
implements those ports over ``repro.sim`` / ``repro.net``.

A future real-socket backend replaces :class:`SimRuntime` without
touching a line of protocol logic; conversely, protocol changes never
reach into fabric or kernel internals.

Determinism contract: :class:`SimRuntime` schedules exactly one kernel
event per one-shot and one recurring-timer registration per series, in
the order the ports are called, so a protocol stack moved onto the
runtime produces byte-identical seeded traces (guarded by the golden
hashes in ``tests/integration/test_determinism_guard.py``).
"""

from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle
from repro.runtime.sim import SimRuntime

__all__ = ["NodeRuntime", "PacketHandler", "TimerHandle", "SimRuntime"]
