"""The node runtime layer: ports protocol code programs against.

The paper's daemon runs on a real operating system — threads, UDP
sockets, multicast group membership, wall-clock timers.  This
reproduction runs the same protocol logic over **either** a
discrete-event simulator or a real asyncio event loop.  ``repro.runtime``
is the seam between the worlds: protocol code (``repro.core.roles``,
``repro.protocols``) talks exclusively to the :class:`NodeRuntime`
ports — clock, one-shot and recurring timers, multicast channel
subscribe/publish, unicast bind/send, trace and instrument emission —
and the adapters implement those ports:

* :class:`SimRuntime` over ``repro.sim`` / ``repro.net`` — the default,
  fully deterministic;
* :class:`~repro.runtime.anet.AsyncRuntime` over asyncio/UDP with
  datagrams framed by :mod:`repro.runtime.wire` and TTL-scoped
  multicast via the channel relay (:mod:`repro.runtime.relay`) — real
  daemon processes on a real network (``repro.cli daemon``).

Both adapters honor one behavioural contract, pinned by the shared
conformance suite in ``tests/runtime/test_port_contract.py``; protocol
changes never reach into fabric, kernel or socket internals.

Determinism contract: :class:`SimRuntime` schedules exactly one kernel
event per one-shot and one recurring-timer registration per series, in
the order the ports are called, so a protocol stack moved onto the
runtime produces byte-identical seeded traces (guarded by the golden
hashes in ``tests/integration/test_determinism_guard.py``).

:class:`AsyncRuntime` is intentionally not imported here: importing the
package must not drag in asyncio machinery for simulator-only users.
"""

from repro.runtime.ports import NodeRuntime, PacketHandler, TimerHandle
from repro.runtime.sim import SimRuntime

__all__ = ["NodeRuntime", "PacketHandler", "TimerHandle", "SimRuntime"]
