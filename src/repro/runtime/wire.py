"""Versioned wire codec for membership datagrams.

The simulator hands payload *objects* between nodes by reference; a real
transport hands **bytes**.  This module is the boundary: a small, tagged,
length-prefixed binary encoding for every payload the protocols put on
the wire — heartbeats, update messages (with piggyback), sync polls and
snapshots, plus the relay control messages of
:mod:`repro.runtime.relay`.

Frame layout::

    +-------+---------+-------------------+----------------------+
    | magic | version | body length (u32) | body (tagged values) |
    |  2 B  |   1 B   |        4 B        |                      |
    +-------+---------+-------------------+----------------------+

The body is one tagged value.  Every value is ``tag byte`` + payload;
containers carry a u32 element count.  Domain types (``NodeRecord``,
``Heartbeat``, ``UpdateMessage``, ``UpdateOp``) get their own tags so a
decoded payload is *the same Python type* the protocol code produced —
the roles never learn whether a packet travelled by reference or by
bytes.

Design constraints:

* **Versioned** — the version byte is checked before anything else, so a
  rolling upgrade that changes the encoding fails loudly instead of
  corrupting directories.
* **Canonical** — ``frozenset`` elements are sorted before encoding, so
  identical payloads always produce identical bytes (content-keyed
  deduplication must survive serialization).
* **Strict** — unknown tags, unknown types, truncated frames and
  trailing garbage all raise :class:`WireError`; a malformed datagram is
  dropped by the caller, never half-applied.

No dependency on asyncio or sockets: the codec is pure functions over
``bytes`` and is exercised directly by ``tests/runtime/test_wire.py``.

Fragmentation
-------------

A UDP datagram tops out at 65,507 payload bytes, and a full membership
view crosses that well below the 10k-node scale the simulator reaches.
Frames larger than a configurable safe payload are split into sequenced
*fragment datagrams* (their own magic, so they are distinguishable from
whole frames at the first two bytes) and reassembled on receive:

* :func:`fragment_frame` splits one encoded frame into ``count``
  fragments, each carrying ``(origin, frame_id, index, count)`` so the
  receiver can reassemble frames from many interleaved senders — the
  origin string travels in the fragment header because relayed traffic
  all arrives from the relay's socket address;
* :class:`Reassembler` holds per-``(origin, frame_id)`` buffers with a
  missing-fragment timeout and a bounded budget (buffer count and total
  bytes); stale or over-budget buffers are dropped whole, never
  half-applied, and the completed frame hands back both the reassembled
  payload and the original fragment datagrams so a relay can forward
  the exact bytes it received.
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.directory import NodeRecord
from repro.core.heartbeat import Heartbeat
from repro.core.updates import UpdateMessage, UpdateOp
from repro.net.packet import Packet

__all__ = [
    "WIRE_VERSION",
    "MAX_UDP_PAYLOAD",
    "DEFAULT_MAX_DATAGRAM",
    "WireError",
    "encode_packet",
    "decode_packet",
    "encode_value",
    "decode_value",
    "fragment_frame",
    "parse_fragment",
    "is_fragment",
    "Fragment",
    "ReassembledFrame",
    "Reassembler",
]

#: Frame magic: identifies a membership datagram before version checks.
MAGIC = b"RM"

#: Fragment magic: identifies one slice of a fragmented frame.
FRAG_MAGIC = b"RG"

#: Current encoding version.  Bump on any change to tags or layouts.
WIRE_VERSION = 1

#: The hard OS limit on one UDP payload (IPv4: 65,535 - 20 IP - 8 UDP).
MAX_UDP_PAYLOAD = 65507

#: Default safe per-datagram budget; frames above it are fragmented.
#: Deliberately below :data:`MAX_UDP_PAYLOAD` so the fragment header
#: and loopback-stack slack never push a slice over the OS limit.
DEFAULT_MAX_DATAGRAM = 61440

_HEADER = struct.Struct(">2sBI")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class WireError(ValueError):
    """A datagram could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def _enc_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _enc(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        if not (_I64_MIN <= value <= _I64_MAX):
            raise WireError(f"integer out of i64 range: {value}")
        out += b"i"
        out += _I64.pack(value)
    elif type(value) is float:
        out += b"f"
        out += _F64.pack(value)
    elif type(value) is str:
        out += b"s"
        _enc_str(out, value)
    elif type(value) is bytes:
        out += b"b"
        out += _U32.pack(len(value))
        out += value
    elif type(value) is tuple:
        out += b"t"
        out += _U32.pack(len(value))
        for item in value:
            _enc(out, item)
    elif type(value) is list:
        out += b"l"
        out += _U32.pack(len(value))
        for item in value:
            _enc(out, item)
    elif type(value) is dict:
        out += b"d"
        out += _U32.pack(len(value))
        for key, val in value.items():
            _enc(out, key)
            _enc(out, val)
    elif type(value) is frozenset:
        out += b"S"
        out += _U32.pack(len(value))
        # Canonical bytes: sort elements by their own encoding.
        encoded: List[bytes] = []
        for item in value:
            buf = bytearray()
            _enc(buf, item)
            encoded.append(bytes(buf))
        for raw in sorted(encoded):
            out += raw
    elif type(value) is NodeRecord:
        out += b"R"
        _enc_str(out, value.node_id)
        out += _I64.pack(value.incarnation)
        _enc(out, value.services)
        _enc(out, value.attrs)
    elif type(value) is Heartbeat:
        out += b"H"
        _enc(out, value.record)
        out += _I64.pack(value.level)
        out += b"T" if value.is_leader else b"F"
        out += b"T" if value.suppressed else b"F"
        _enc(out, value.backup)
        out += _I64.pack(value.update_seq)
    elif type(value) is UpdateOp:
        out += b"O"
        _enc_str(out, value.op)
        _enc_str(out, value.node_id)
        out += _I64.pack(value.incarnation)
        _enc(out, value.record)
    elif type(value) is UpdateMessage:
        out += b"U"
        out += _I64.pack(value.uid)
        _enc_str(out, value.origin)
        _enc_str(out, value.sender)
        out += _I64.pack(value.level)
        out += _I64.pack(value.seq)
        _enc(out, value.ops)
        _enc(out, value.piggyback)
    else:
        raise WireError(f"unencodable payload type: {type(value).__name__}")


def encode_value(value: Any) -> bytes:
    """Encode one value (no frame header).  Raises :class:`WireError`."""
    out = bytearray()
    _enc(out, value)
    return bytes(out)


# ----------------------------------------------------------------------
# Value decoding
# ----------------------------------------------------------------------
class _Cursor:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("truncated datagram")
        raw = self.data[self.pos : end]
        self.pos = end
        return raw

    def u32(self) -> int:
        return int(_U32.unpack(self.take(4))[0])

    def i64(self) -> int:
        return int(_I64.unpack(self.take(8))[0])

    def str_(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("invalid utf-8 in string") from exc

    def bool_(self) -> bool:
        tag = self.take(1)
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        raise WireError(f"expected bool tag, got {tag!r}")


def _dec(cur: _Cursor) -> Any:
    tag = cur.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return cur.i64()
    if tag == b"f":
        return float(_F64.unpack(cur.take(8))[0])
    if tag == b"s":
        return cur.str_()
    if tag == b"b":
        return cur.take(cur.u32())
    if tag == b"t":
        return tuple(_dec(cur) for _ in range(cur.u32()))
    if tag == b"l":
        return [_dec(cur) for _ in range(cur.u32())]
    if tag == b"d":
        count = cur.u32()
        out: Dict[Any, Any] = {}
        for _ in range(count):
            key = _dec(cur)
            out[key] = _dec(cur)
        return out
    if tag == b"S":
        return frozenset(_dec(cur) for _ in range(cur.u32()))
    if tag == b"R":
        node_id = cur.str_()
        incarnation = cur.i64()
        services = _dec(cur)
        attrs = _dec(cur)
        if not isinstance(services, dict) or not isinstance(attrs, dict):
            raise WireError("malformed NodeRecord")
        return NodeRecord(
            node_id=node_id, incarnation=incarnation, services=services, attrs=attrs
        )
    if tag == b"H":
        record = _dec(cur)
        if not isinstance(record, NodeRecord):
            raise WireError("heartbeat without a NodeRecord")
        level = cur.i64()
        is_leader = cur.bool_()
        suppressed = cur.bool_()
        backup = _dec(cur)
        update_seq = cur.i64()
        if backup is not None and not isinstance(backup, str):
            raise WireError("malformed heartbeat backup")
        return Heartbeat(
            record=record,
            level=level,
            is_leader=is_leader,
            suppressed=suppressed,
            backup=backup,
            update_seq=update_seq,
        )
    if tag == b"O":
        op = cur.str_()
        node_id = cur.str_()
        incarnation = cur.i64()
        record = _dec(cur)
        if record is not None and not isinstance(record, NodeRecord):
            raise WireError("malformed UpdateOp record")
        return UpdateOp(op=op, node_id=node_id, incarnation=incarnation, record=record)
    if tag == b"U":
        uid = cur.i64()
        origin = cur.str_()
        sender = cur.str_()
        level = cur.i64()
        seq = cur.i64()
        ops = _dec(cur)
        piggyback = _dec(cur)
        if not isinstance(ops, tuple) or not isinstance(piggyback, tuple):
            raise WireError("malformed UpdateMessage")
        return UpdateMessage(
            uid=uid,
            origin=origin,
            sender=sender,
            level=level,
            seq=seq,
            ops=ops,
            piggyback=piggyback,
        )
    raise WireError(f"unknown wire tag {tag!r}")


def decode_value(data: bytes) -> Any:
    """Decode one value (no frame header).  Raises :class:`WireError`."""
    cur = _Cursor(data)
    value = _dec(cur)
    if cur.pos != len(data):
        raise WireError(f"{len(data) - cur.pos} trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Packet framing
# ----------------------------------------------------------------------
def encode_packet(pkt: Packet, port: Optional[str] = None) -> bytes:
    """Frame ``pkt`` for the wire.

    ``port`` is the unicast port name (``None`` for multicast) — the
    real-transport analogue of the per-port ``bind`` dispatch the
    simulated transport does by object routing.
    """
    body = bytearray()
    _enc_str(body, pkt.src)
    _enc_str(body, pkt.kind)
    _enc(body, pkt.dst)
    _enc(body, pkt.channel)
    body += _I64.pack(pkt.ttl)
    body += _I64.pack(pkt.size)
    _enc(body, port)
    _enc(body, pkt.payload)
    return _HEADER.pack(MAGIC, WIRE_VERSION, len(body)) + bytes(body)


def decode_packet(data: bytes) -> Tuple[Packet, Optional[str]]:
    """Parse one framed datagram into ``(packet, port)``.

    Raises :class:`WireError` on bad magic, version mismatch, truncation
    or trailing garbage.
    """
    if len(data) < _HEADER.size:
        raise WireError("datagram shorter than frame header")
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(f"wire version {version}, expected {WIRE_VERSION}")
    if len(data) != _HEADER.size + length:
        raise WireError(
            f"frame length {length} does not match datagram ({len(data)} bytes)"
        )
    cur = _Cursor(data, _HEADER.size)
    src = cur.str_()
    kind = cur.str_()
    dst = _dec(cur)
    channel = _dec(cur)
    ttl = cur.i64()
    size = cur.i64()
    port = _dec(cur)
    payload = _dec(cur)
    if cur.pos != len(data):
        raise WireError(f"{len(data) - cur.pos} trailing bytes after payload")
    if dst is not None and not isinstance(dst, str):
        raise WireError("malformed dst")
    if channel is not None and not isinstance(channel, str):
        raise WireError("malformed channel")
    if port is not None and not isinstance(port, str):
        raise WireError("malformed port")
    pkt = Packet(
        src=src,
        kind=kind,
        payload=payload,
        size=size,
        dst=dst,
        channel=channel,
        ttl=ttl,
    )
    return pkt, port


# ----------------------------------------------------------------------
# Fragmentation / reassembly
# ----------------------------------------------------------------------
#: magic (2) + version (1) + frame_id (u32) + index (u16) + count (u16)
#: + origin length (u16); the origin string and the slice follow.
_FRAG_FIXED = struct.Struct(">2sBIHHH")


@dataclass(frozen=True, slots=True)
class Fragment:
    """One parsed fragment datagram."""

    origin: str
    frame_id: int
    index: int
    count: int
    payload: bytes


@dataclass(frozen=True, slots=True)
class ReassembledFrame:
    """A completed reassembly: the frame plus its original datagrams.

    ``fragments`` are the fragment datagrams exactly as received, in
    index order — a relay forwards those bytes instead of re-encoding.
    """

    payload: bytes
    fragments: Tuple[bytes, ...]


def is_fragment(data: bytes) -> bool:
    """True when ``data`` starts with the fragment magic."""
    return data[:2] == FRAG_MAGIC


def fragment_frame(
    data: bytes, origin: str, frame_id: int, max_payload: int = DEFAULT_MAX_DATAGRAM
) -> List[bytes]:
    """Split one encoded frame into sequenced fragment datagrams.

    A frame that already fits in ``max_payload`` is returned as-is (no
    wrapping overhead on the common path).  Every produced fragment is
    at most ``max_payload`` bytes.  Raises :class:`WireError` when the
    frame cannot be fragmented (budget smaller than the header, or more
    than 65,535 slices needed).
    """
    if len(data) <= max_payload:
        return [data]
    origin_raw = origin.encode("utf-8")
    if len(origin_raw) > 0xFFFF:
        raise WireError("fragment origin too long")
    overhead = _FRAG_FIXED.size + len(origin_raw)
    chunk = max_payload - overhead
    if chunk <= 0:
        raise WireError(
            f"max_payload {max_payload} leaves no room for fragment payload"
        )
    count = (len(data) + chunk - 1) // chunk
    if count > 0xFFFF:
        raise WireError(f"frame needs {count} fragments (limit 65535)")
    frags: List[bytes] = []
    for index in range(count):
        part = data[index * chunk : (index + 1) * chunk]
        head = _FRAG_FIXED.pack(
            FRAG_MAGIC, WIRE_VERSION, frame_id & 0xFFFFFFFF, index, count, len(origin_raw)
        )
        frags.append(head + origin_raw + part)
    return frags


def parse_fragment(data: bytes) -> Optional[Fragment]:
    """Parse one fragment datagram.

    Returns ``None`` when ``data`` is not a fragment (wrong magic) so
    callers can fall through to whole-frame decoding; raises
    :class:`WireError` on a malformed fragment (version mismatch,
    truncation, inconsistent counters).
    """
    if data[:2] != FRAG_MAGIC:
        return None
    if len(data) < _FRAG_FIXED.size:
        raise WireError("fragment shorter than its header")
    _magic, version, frame_id, index, count, origin_len = _FRAG_FIXED.unpack_from(data)
    if version != WIRE_VERSION:
        raise WireError(f"fragment version {version}, expected {WIRE_VERSION}")
    if count == 0 or index >= count:
        raise WireError(f"fragment index {index} outside count {count}")
    origin_end = _FRAG_FIXED.size + origin_len
    if len(data) < origin_end:
        raise WireError("fragment truncated inside origin")
    try:
        origin = data[_FRAG_FIXED.size : origin_end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError("invalid utf-8 in fragment origin") from exc
    return Fragment(
        origin=origin,
        frame_id=int(frame_id),
        index=int(index),
        count=int(count),
        payload=data[origin_end:],
    )


class _Buffer:
    __slots__ = ("count", "parts", "raws", "size", "last_update")

    def __init__(self, count: int, now: float) -> None:
        self.count = count
        self.parts: Dict[int, bytes] = {}
        self.raws: Dict[int, bytes] = {}
        self.size = 0
        self.last_update = now


class Reassembler:
    """Per-``(origin, frame_id)`` fragment buffers with a bounded budget.

    * a buffer not touched within ``timeout`` seconds is dropped whole
      (missing-fragment timeout; UDP loses slices, never retransmits);
    * at most ``max_buffers`` concurrent frames and ``max_bytes`` total
      buffered bytes — beyond either, the *stalest* buffer is evicted,
      so one misbehaving sender cannot pin unbounded memory;
    * duplicate fragments are counted and ignored; a fragment whose
      ``count`` disagrees with its buffer poisons the frame and raises.

    ``on_drop`` (if given) is called with ``"timeout"`` or ``"evicted"``
    once per dropped buffer — the hook the runtime uses to count drops
    in the obs registry.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.monotonic,
        timeout: float = 5.0,
        max_buffers: int = 64,
        max_bytes: int = 8 * 1024 * 1024,
        on_drop: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._clock = clock
        self.timeout = timeout
        self.max_buffers = max_buffers
        self.max_bytes = max_bytes
        self._on_drop = on_drop
        self._buffers: Dict[Tuple[str, int], _Buffer] = {}
        self._bytes = 0
        #: Buffers dropped because a fragment never arrived in time.
        self.timeouts = 0
        #: Buffers dropped to stay inside the budget.
        self.evictions = 0
        #: Fragments ignored because their index was already buffered.
        self.duplicates = 0
        #: Frames fully reassembled.
        self.completed = 0

    @property
    def pending(self) -> int:
        """Open (incomplete) reassembly buffers."""
        return len(self._buffers)

    def _drop(self, key: Tuple[str, int], reason: str) -> None:
        buf = self._buffers.pop(key)
        self._bytes -= buf.size
        if reason == "timeout":
            self.timeouts += 1
        else:
            self.evictions += 1
        if self._on_drop is not None:
            self._on_drop(reason)

    def expire(self, now: Optional[float] = None) -> int:
        """Drop buffers whose last fragment is older than ``timeout``."""
        if now is None:
            now = self._clock()
        stale = [
            key
            for key, buf in self._buffers.items()
            if now - buf.last_update > self.timeout
        ]
        for key in stale:
            self._drop(key, "timeout")
        return len(stale)

    def _evict_stalest(self) -> None:
        key = min(self._buffers, key=lambda k: self._buffers[k].last_update)
        self._drop(key, "evicted")

    def add(self, data: bytes) -> Optional[ReassembledFrame]:
        """Feed one fragment datagram; returns the frame when complete.

        Raises :class:`WireError` when ``data`` is not a well-formed
        fragment.  Returns ``None`` while the frame is still missing
        slices (or the fragment was a duplicate).
        """
        frag = parse_fragment(data)
        if frag is None:
            raise WireError("not a fragment datagram")
        now = self._clock()
        self.expire(now)
        key = (frag.origin, frag.frame_id)
        buf = self._buffers.get(key)
        if buf is None:
            while len(self._buffers) >= self.max_buffers:
                self._evict_stalest()
            buf = _Buffer(frag.count, now)
            self._buffers[key] = buf
        elif buf.count != frag.count:
            self._bytes -= buf.size
            del self._buffers[key]
            raise WireError(
                f"fragment count changed mid-frame ({buf.count} -> {frag.count})"
            )
        if frag.index in buf.parts:
            self.duplicates += 1
            return None
        buf.parts[frag.index] = frag.payload
        buf.raws[frag.index] = data
        buf.size += len(data)
        buf.last_update = now
        self._bytes += len(data)
        if len(buf.parts) == buf.count:
            self._bytes -= buf.size
            del self._buffers[key]
            self.completed += 1
            payload = b"".join(buf.parts[i] for i in range(buf.count))
            return ReassembledFrame(
                payload=payload, fragments=tuple(buf.raws[i] for i in range(buf.count))
            )
        while self._bytes > self.max_bytes and self._buffers:
            self._evict_stalest()
        return None
