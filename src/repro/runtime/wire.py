"""Versioned wire codec for membership datagrams.

The simulator hands payload *objects* between nodes by reference; a real
transport hands **bytes**.  This module is the boundary: a small, tagged,
length-prefixed binary encoding for every payload the protocols put on
the wire — heartbeats, update messages (with piggyback), sync polls and
snapshots, plus the relay control messages of
:mod:`repro.runtime.relay`.

Frame layout::

    +-------+---------+-------------------+----------------------+
    | magic | version | body length (u32) | body (tagged values) |
    |  2 B  |   1 B   |        4 B        |                      |
    +-------+---------+-------------------+----------------------+

The body is one tagged value.  Every value is ``tag byte`` + payload;
containers carry a u32 element count.  Domain types (``NodeRecord``,
``Heartbeat``, ``UpdateMessage``, ``UpdateOp``) get their own tags so a
decoded payload is *the same Python type* the protocol code produced —
the roles never learn whether a packet travelled by reference or by
bytes.

Design constraints:

* **Versioned** — the version byte is checked before anything else, so a
  rolling upgrade that changes the encoding fails loudly instead of
  corrupting directories.
* **Canonical** — ``frozenset`` elements are sorted before encoding, so
  identical payloads always produce identical bytes (content-keyed
  deduplication must survive serialization).
* **Strict** — unknown tags, unknown types, truncated frames and
  trailing garbage all raise :class:`WireError`; a malformed datagram is
  dropped by the caller, never half-applied.

No dependency on asyncio or sockets: the codec is pure functions over
``bytes`` and is exercised directly by ``tests/runtime/test_wire.py``.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.directory import NodeRecord
from repro.core.heartbeat import Heartbeat
from repro.core.updates import UpdateMessage, UpdateOp
from repro.net.packet import Packet

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "encode_packet",
    "decode_packet",
    "encode_value",
    "decode_value",
]

#: Frame magic: identifies a membership datagram before version checks.
MAGIC = b"RM"

#: Current encoding version.  Bump on any change to tags or layouts.
WIRE_VERSION = 1

_HEADER = struct.Struct(">2sBI")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class WireError(ValueError):
    """A datagram could not be encoded or decoded."""


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------
def _enc_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _enc(out: bytearray, value: Any) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        if not (_I64_MIN <= value <= _I64_MAX):
            raise WireError(f"integer out of i64 range: {value}")
        out += b"i"
        out += _I64.pack(value)
    elif type(value) is float:
        out += b"f"
        out += _F64.pack(value)
    elif type(value) is str:
        out += b"s"
        _enc_str(out, value)
    elif type(value) is bytes:
        out += b"b"
        out += _U32.pack(len(value))
        out += value
    elif type(value) is tuple:
        out += b"t"
        out += _U32.pack(len(value))
        for item in value:
            _enc(out, item)
    elif type(value) is list:
        out += b"l"
        out += _U32.pack(len(value))
        for item in value:
            _enc(out, item)
    elif type(value) is dict:
        out += b"d"
        out += _U32.pack(len(value))
        for key, val in value.items():
            _enc(out, key)
            _enc(out, val)
    elif type(value) is frozenset:
        out += b"S"
        out += _U32.pack(len(value))
        # Canonical bytes: sort elements by their own encoding.
        encoded: List[bytes] = []
        for item in value:
            buf = bytearray()
            _enc(buf, item)
            encoded.append(bytes(buf))
        for raw in sorted(encoded):
            out += raw
    elif type(value) is NodeRecord:
        out += b"R"
        _enc_str(out, value.node_id)
        out += _I64.pack(value.incarnation)
        _enc(out, value.services)
        _enc(out, value.attrs)
    elif type(value) is Heartbeat:
        out += b"H"
        _enc(out, value.record)
        out += _I64.pack(value.level)
        out += b"T" if value.is_leader else b"F"
        out += b"T" if value.suppressed else b"F"
        _enc(out, value.backup)
        out += _I64.pack(value.update_seq)
    elif type(value) is UpdateOp:
        out += b"O"
        _enc_str(out, value.op)
        _enc_str(out, value.node_id)
        out += _I64.pack(value.incarnation)
        _enc(out, value.record)
    elif type(value) is UpdateMessage:
        out += b"U"
        out += _I64.pack(value.uid)
        _enc_str(out, value.origin)
        _enc_str(out, value.sender)
        out += _I64.pack(value.level)
        out += _I64.pack(value.seq)
        _enc(out, value.ops)
        _enc(out, value.piggyback)
    else:
        raise WireError(f"unencodable payload type: {type(value).__name__}")


def encode_value(value: Any) -> bytes:
    """Encode one value (no frame header).  Raises :class:`WireError`."""
    out = bytearray()
    _enc(out, value)
    return bytes(out)


# ----------------------------------------------------------------------
# Value decoding
# ----------------------------------------------------------------------
class _Cursor:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("truncated datagram")
        raw = self.data[self.pos : end]
        self.pos = end
        return raw

    def u32(self) -> int:
        return int(_U32.unpack(self.take(4))[0])

    def i64(self) -> int:
        return int(_I64.unpack(self.take(8))[0])

    def str_(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("invalid utf-8 in string") from exc

    def bool_(self) -> bool:
        tag = self.take(1)
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        raise WireError(f"expected bool tag, got {tag!r}")


def _dec(cur: _Cursor) -> Any:
    tag = cur.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return cur.i64()
    if tag == b"f":
        return float(_F64.unpack(cur.take(8))[0])
    if tag == b"s":
        return cur.str_()
    if tag == b"b":
        return cur.take(cur.u32())
    if tag == b"t":
        return tuple(_dec(cur) for _ in range(cur.u32()))
    if tag == b"l":
        return [_dec(cur) for _ in range(cur.u32())]
    if tag == b"d":
        count = cur.u32()
        out: Dict[Any, Any] = {}
        for _ in range(count):
            key = _dec(cur)
            out[key] = _dec(cur)
        return out
    if tag == b"S":
        return frozenset(_dec(cur) for _ in range(cur.u32()))
    if tag == b"R":
        node_id = cur.str_()
        incarnation = cur.i64()
        services = _dec(cur)
        attrs = _dec(cur)
        if not isinstance(services, dict) or not isinstance(attrs, dict):
            raise WireError("malformed NodeRecord")
        return NodeRecord(
            node_id=node_id, incarnation=incarnation, services=services, attrs=attrs
        )
    if tag == b"H":
        record = _dec(cur)
        if not isinstance(record, NodeRecord):
            raise WireError("heartbeat without a NodeRecord")
        level = cur.i64()
        is_leader = cur.bool_()
        suppressed = cur.bool_()
        backup = _dec(cur)
        update_seq = cur.i64()
        if backup is not None and not isinstance(backup, str):
            raise WireError("malformed heartbeat backup")
        return Heartbeat(
            record=record,
            level=level,
            is_leader=is_leader,
            suppressed=suppressed,
            backup=backup,
            update_seq=update_seq,
        )
    if tag == b"O":
        op = cur.str_()
        node_id = cur.str_()
        incarnation = cur.i64()
        record = _dec(cur)
        if record is not None and not isinstance(record, NodeRecord):
            raise WireError("malformed UpdateOp record")
        return UpdateOp(op=op, node_id=node_id, incarnation=incarnation, record=record)
    if tag == b"U":
        uid = cur.i64()
        origin = cur.str_()
        sender = cur.str_()
        level = cur.i64()
        seq = cur.i64()
        ops = _dec(cur)
        piggyback = _dec(cur)
        if not isinstance(ops, tuple) or not isinstance(piggyback, tuple):
            raise WireError("malformed UpdateMessage")
        return UpdateMessage(
            uid=uid,
            origin=origin,
            sender=sender,
            level=level,
            seq=seq,
            ops=ops,
            piggyback=piggyback,
        )
    raise WireError(f"unknown wire tag {tag!r}")


def decode_value(data: bytes) -> Any:
    """Decode one value (no frame header).  Raises :class:`WireError`."""
    cur = _Cursor(data)
    value = _dec(cur)
    if cur.pos != len(data):
        raise WireError(f"{len(data) - cur.pos} trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Packet framing
# ----------------------------------------------------------------------
def encode_packet(pkt: Packet, port: Optional[str] = None) -> bytes:
    """Frame ``pkt`` for the wire.

    ``port`` is the unicast port name (``None`` for multicast) — the
    real-transport analogue of the per-port ``bind`` dispatch the
    simulated transport does by object routing.
    """
    body = bytearray()
    _enc_str(body, pkt.src)
    _enc_str(body, pkt.kind)
    _enc(body, pkt.dst)
    _enc(body, pkt.channel)
    body += _I64.pack(pkt.ttl)
    body += _I64.pack(pkt.size)
    _enc(body, port)
    _enc(body, pkt.payload)
    return _HEADER.pack(MAGIC, WIRE_VERSION, len(body)) + bytes(body)


def decode_packet(data: bytes) -> Tuple[Packet, Optional[str]]:
    """Parse one framed datagram into ``(packet, port)``.

    Raises :class:`WireError` on bad magic, version mismatch, truncation
    or trailing garbage.
    """
    if len(data) < _HEADER.size:
        raise WireError("datagram shorter than frame header")
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(f"wire version {version}, expected {WIRE_VERSION}")
    if len(data) != _HEADER.size + length:
        raise WireError(
            f"frame length {length} does not match datagram ({len(data)} bytes)"
        )
    cur = _Cursor(data, _HEADER.size)
    src = cur.str_()
    kind = cur.str_()
    dst = _dec(cur)
    channel = _dec(cur)
    ttl = cur.i64()
    size = cur.i64()
    port = _dec(cur)
    payload = _dec(cur)
    if cur.pos != len(data):
        raise WireError(f"{len(data) - cur.pos} trailing bytes after payload")
    if dst is not None and not isinstance(dst, str):
        raise WireError("malformed dst")
    if channel is not None and not isinstance(channel, str):
        raise WireError("malformed channel")
    if port is not None and not isinstance(port, str):
        raise WireError("malformed port")
    pkt = Packet(
        src=src,
        kind=kind,
        payload=payload,
        size=size,
        dst=dst,
        channel=channel,
        ttl=ttl,
    )
    return pkt, port
