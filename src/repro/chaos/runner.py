"""The canonical seeded chaos scenario.

One :class:`ChaosScenario` run is the repo's acceptance stress for the
hierarchical protocol: a warm converged cluster is hit, simultaneously,
with

* an **asymmetric partition** — network 0's packets toward everyone else
  vanish while the reverse direction keeps flowing (the failure mode a
  downed switch cannot produce);
* a **lossy, jittery, reordering, duplicating** directional link between
  networks 1 and 2 (fault-plan rules, Fig. 12's loss regime);
* a **crash and later recovery** of a victim node inside network 1 —
  the paper's Fig. 13/14 event, now under chaos.

Afterwards the faults lapse (their ``until`` windows pass), the victim
rejoins, and the cluster gets a quiet period.  The run is green when the
:class:`~repro.chaos.invariants.InvariantChecker` saw nothing and every
survivor's directory agrees at the end.

Everything — base loss, chaos draws, protocol jitter, crash times — is
derived from the scenario seed, and fault draws happen at send time in
receiver-iteration order on both fabric paths, so the full trace is
byte-identical across ``use_fast_path`` flips (covered by the
determinism-guard tests).  Detection/convergence times and the Fig. 13/14
recovery curves are extracted from the trace; ``benchmarks/bench_chaos.py``
sweeps seeds and records them in BENCH_chaos.json.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantChecker, Violation
from repro.cluster.failures import FailureSchedule
from repro.metrics.collectors import (
    convergence_time,
    detection_time,
    view_change_curve,
)
from repro.metrics.experiment import make_scheme_cluster
from repro.obs.registry import MetricsRegistry
from repro.obs.wiring import enable_observability

__all__ = ["ChaosScenario", "ChaosResult"]


@dataclass(frozen=True)
class ChaosResult:
    """Everything one chaos run produced."""

    seed: int
    use_fast_path: bool
    victim: str
    kill_time: float
    recover_time: float
    #: seconds from kill to first / last survivor logging the failure
    detection: Optional[float]
    convergence: Optional[float]
    #: Fig. 13-style curve: (seconds after kill, observers that know)
    down_curve: List[Tuple[float, int]]
    #: Fig. 14-style curve: (seconds after recovery, observers that re-added)
    up_curve: List[Tuple[float, int]]
    violations: List[Violation]
    false_failures: int
    fault_stats: Dict[str, int]
    failure_log: List[Tuple[float, str, str]]
    #: full trace, hashable form — equal across fast/slow path runs
    trace_signature: List[Tuple[float, str, Optional[str], tuple]]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class ChaosScenario:
    """Seeded asymmetric-partition + lossy-link + crash/recover scenario."""

    seed: int = 7
    networks: int = 3
    hosts_per_network: int = 8
    loss_rate: float = 0.02
    use_fast_path: bool = True
    warmup: float = 20.0
    chaos_start: float = 25.0
    chaos_end: float = 45.0
    quiesce: float = 35.0
    #: directional loss on the network-1 -> network-2 link during chaos
    directional_loss: float = 0.2
    jitter: float = 0.05
    reorder: float = 0.3
    reorder_window: float = 0.2
    duplicate: float = 0.1
    dup_lag: float = 0.05
    check_period: float = 2.0
    max_false_failures: int = 10
    #: Optional metrics registry: when set, the run is fully instrumented
    #: (protocol counters live, scenario outcomes recorded at the end).
    registry: Optional[MetricsRegistry] = None

    def run(self) -> ChaosResult:
        net, hosts, nodes = make_scheme_cluster(
            "hierarchical",
            self.networks,
            self.hosts_per_network,
            seed=self.seed,
            loss_rate=self.loss_rate,
            use_fast_path=self.use_fast_path,
        )
        # One flag flips both engines: the delivery fabric and the
        # protocol hot path (the determinism guard brackets the matrix).
        net.multicast_fabric.use_fast_path = self.use_fast_path
        obs = None
        if self.registry is not None:
            obs = enable_observability(net, self.registry)
        m = self.hosts_per_network
        groups = [hosts[i * m : (i + 1) * m] for i in range(self.networks)]

        sched = FailureSchedule(net)
        for host in hosts:
            sched.register_stack(host, nodes[host])
        checker = InvariantChecker(
            net, nodes, max_false_failures=self.max_false_failures
        )
        checker.start(self.check_period)

        # Asymmetric partition: network 0 goes mute, but still hears.
        rest = [h for g in groups[1:] for h in g]
        sched.partition_at(
            self.chaos_start, groups[0], rest,
            heal_at=self.chaos_end, symmetric=False,
        )
        # Directional degradation between networks 1 and 2.
        net.ensure_fault_plan().add(
            src=groups[1],
            dst=groups[2 % self.networks],
            loss=self.directional_loss,
            jitter=self.jitter,
            reorder=self.reorder,
            reorder_window=self.reorder_window,
            duplicate=self.duplicate,
            dup_lag=self.dup_lag,
            start=self.chaos_start,
            until=self.chaos_end,
            label="degraded:n1->n2",
        )
        # The Fig. 13/14 event, mid-chaos: kill an ordinary node of the
        # degraded network, recover it after the faults lapse.
        victim = groups[1][m // 2]
        kill_time = self.chaos_start + 5.0
        recover_time = self.chaos_end + 5.0
        sched.crash_node_at(kill_time, victim)
        sched.recover_node_at(recover_time, victim)

        net.run(until=self.chaos_end + self.quiesce)

        checker.stop()
        checker.check_false_failures()
        checker.check_agreement()

        observers = [h for h in hosts if h != victim]
        # Strict convergence over the side of the partition that could
        # actually exchange updates with the victim's network in both
        # directions throughout.
        strict = [h for h in rest if h != victim]
        signature = [
            (r.time, r.kind, r.node, tuple(sorted(r.data.items())))
            for r in net.trace
        ]
        detection = detection_time(net.trace, victim, kill_time)
        convergence = convergence_time(
            net.trace, victim, kill_time, expected_observers=strict
        )
        if obs is not None:
            # Scenario-level outcomes: recorded once, after the run, so
            # they cannot perturb the simulation itself.
            inst = obs.instruments
            if detection is not None:
                inst.detection.observe(detection)
            if convergence is not None:
                inst.convergence.observe(convergence)
            for v in checker.violations:
                inst.chaos_violations.labels(invariant=v.invariant).inc()
            if net.fault_plan is not None:
                for effect, count in net.fault_plan.stats.items():
                    inst.fault_effects.labels(effect=effect).add(count)
            obs.sample_kernel()
        return ChaosResult(
            seed=self.seed,
            use_fast_path=self.use_fast_path,
            victim=victim,
            kill_time=kill_time,
            recover_time=recover_time,
            detection=detection,
            convergence=convergence,
            down_curve=view_change_curve(
                net.trace, victim, observers, since=kill_time
            ),
            up_curve=view_change_curve(
                net.trace, victim, observers, since=recover_time, kind="member_up"
            ),
            violations=list(checker.violations),
            false_failures=len(checker.false_failures),
            fault_stats=dict(net.fault_plan.stats) if net.fault_plan else {},
            failure_log=list(sched.log),
            trace_signature=signature,
        )
