"""Chaos testing: fault-plan scenarios checked against protocol invariants.

The paper argues safety informally ("a node deletion is always correct",
Section 5); this package makes those claims executable.  An
:class:`InvariantChecker` rides along any simulated cluster and watches
for the things the protocol promises never happen:

* two *mutually-visible* leaders at the same level, persisting beyond the
  election's own resolution window;
* resurrection of a buried ``(node_id, incarnation)`` — a directory entry
  for a life that provably ended;
* unbounded false failures — live, reachable nodes declared dead;
* directory disagreement after the network has been quiet long enough.

:class:`ChaosScenario` is the canonical stress: a seeded run combining an
asymmetric partition, directional loss with reordering/duplication (via
:class:`~repro.net.faults.FaultPlan`), and a crash/recover of a victim
node — reproducing the paper's Fig. 13/14 recovery curves under chaos.
See docs/FAULTS.md.
"""

from repro.chaos.invariants import InvariantChecker, Violation
from repro.chaos.runner import ChaosResult, ChaosScenario

__all__ = ["InvariantChecker", "Violation", "ChaosScenario", "ChaosResult"]
