"""Protocol safety invariants, checked live against a running simulation.

The checker needs ground truth the protocol nodes themselves never see:
which daemons are *actually* running (``node.running``), which links the
fault plan currently severs, and which incarnations are provably over.
It gets all of it by polling the node objects on a recurring tick and
subscribing to the shared trace — zero protocol-code hooks.

What counts as a violation is deliberately conservative:

* **Dual leaders** must be *mutually visible* — both running, both flying
  the flag at the same level, within TTL range of each other over live
  devices, and not separated by a severing fault rule — and must persist
  for ``leader_streak`` consecutive ticks.  Transient dual leadership
  after a partition heals is the election protocol *working* (the
  two-leaders rule needs a heartbeat round to fire), not a bug.
* **Resurrection** only fires after ``zombie_grace`` seconds: removal of
  a dead node legitimately takes up to the relayed timeout to reach
  quiet corners of the tree.
* **False failures** are bounded, not forbidden: with loss rate *p* and
  ``MAX_LOSS`` *k*, a live node is declared dead with probability ~*p^k*
  per observation window — the paper's own Fig. 12 accuracy argument.
  Removals across severed links or downed devices are correct behaviour
  and are not counted at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.net.network import Network
from repro.net.topology import UNREACHABLE
from repro.protocols.base import MembershipNode
from repro.sim.trace import TraceRecord

__all__ = ["InvariantChecker", "Violation", "false_failure_bound"]

#: Per-detector false-failure budgets (scenario-long counts).  The
#: counter and SWIM strategies declare on hard evidence (k missed
#: deadlines / failed probes + suspicion), so they share the historical
#: bound; φ-accrual is probabilistic by construction — its threshold
#: trades detection speed against exactly these mistakes — and earns a
#: proportionally larger budget under the same chaos.
FALSE_FAILURE_BOUND_FACTORS: Dict[str, int] = {
    "counter": 10,
    "swim": 10,
    "phi-accrual": 20,
}


def false_failure_bound(detector: str) -> int:
    """Scenario false-failure budget for ``detector`` (default strategies': 10)."""
    return FALSE_FAILURE_BOUND_FACTORS.get(detector, 10)


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    time: float
    invariant: str  # "dual_leader" | "resurrection" | "false_failures" | "agreement"
    detail: str


class InvariantChecker:
    """Watches a simulated cluster for membership-safety violations.

    Parameters
    ----------
    network, nodes:
        The deployment under test (``nodes`` maps host -> protocol stack).
    leader_streak:
        Consecutive ticks a mutually-visible dual-leader pair must persist
        before it becomes a violation.
    zombie_grace:
        Seconds a buried ``(node, incarnation)`` may linger in someone's
        directory before counting as a resurrection.  Defaults to the
        slowest legitimate removal path: relayed timeout + the deepest
        level timeout + two heartbeat periods.
    max_false_failures:
        Upper bound for :meth:`check_false_failures`.  ``None`` (default)
        derives it from the deployment's failure-detection strategy via
        :func:`false_failure_bound` — adaptive detectors are budgeted
        more mistakes than deadline ones under the same chaos.
    """

    def __init__(
        self,
        network: Network,
        nodes: Dict[str, MembershipNode],
        leader_streak: int = 3,
        zombie_grace: Optional[float] = None,
        max_false_failures: Optional[int] = None,
    ) -> None:
        self.network = network
        self.nodes = nodes
        self.leader_streak = leader_streak
        if max_false_failures is None:
            detector = "counter"
            for node in nodes.values():
                detector = getattr(node.config, "detector", "counter")
                break
            max_false_failures = false_failure_bound(detector)
        self.max_false_failures = max_false_failures
        if zombie_grace is None:
            zombie_grace = self._default_grace()
        self.zombie_grace = zombie_grace
        self.violations: List[Violation] = []
        #: (time, observer, target, reason) of every counted false failure
        self.false_failures: List[Tuple[float, str, str, str]] = []
        # (node_id, incarnation) -> time we first observed that life over
        self._life_ends: Dict[Tuple[str, int], float] = {}
        self._last_state: Dict[str, Tuple[bool, int]] = {}
        # (level, leader_a, leader_b) -> consecutive ticks observed
        self._dual_streaks: Dict[Tuple[int, str, str], int] = {}
        # (observer, target, incarnation) already flagged, so one zombie
        # entry yields one violation, not one per tick
        self._flagged_zombies: set = set()
        self._timer = None
        network.trace.subscribe(self._on_record)

    def _default_grace(self) -> float:
        # Legitimate removal can take as long as the slowest node's
        # detector bound (every flat-scheme node times the death out
        # independently), so the grace scales with the active strategy —
        # a φ threshold of 8 legitimately holds entries ~4x longer than
        # MAX_LOSS counting does.
        n = max(len(self.nodes), 2)
        grace = 30.0  # floor: flat-scheme stragglers time out independently
        for node in self.nodes.values():
            cfg = node.config
            if hasattr(cfg, "relayed_timeout") and hasattr(cfg, "level_timeout"):
                grace = max(
                    grace,
                    cfg.relayed_timeout
                    + cfg.level_timeout(cfg.max_level)
                    + 2 * cfg.heartbeat_period,
                )
            bound = node.detector.detection_bound(n=n, scheme=node.scheme)
            grace = max(grace, 2.0 * bound + 2.0 * cfg.heartbeat_period)
            break  # deployments are homogeneous; the first node suffices
        return grace

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self, period: float = 2.0) -> None:
        """Run :meth:`tick` every ``period`` seconds of virtual time."""
        self._observe_lifecycles()
        self._timer = self.network.sim.call_every(period, self.tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        """One checking pass: lifecycle bookkeeping + continuous invariants."""
        self._observe_lifecycles()
        self._check_resurrection()
        self._check_dual_leaders()

    # ------------------------------------------------------------------
    # Ground-truth bookkeeping
    # ------------------------------------------------------------------
    def _observe_lifecycles(self) -> None:
        """Record which (node, incarnation) lives are over, and since when.

        ``start()`` bumps the incarnation, so a dead pair never comes back:
        once a node is seen stopped — or seen running a *newer* incarnation
        — every record of the old pair is a record of a finished life.
        """
        now = self.network.now
        for nid, node in self.nodes.items():
            cur = (node.running, node.incarnation)
            prev = self._last_state.get(nid)
            if prev is not None and prev[0] and prev != cur:
                # Was running last tick; that life is over (crash or restart
                # happened between polls — `now` is a conservative late bound).
                self._life_ends.setdefault((nid, prev[1]), now)
            if not node.running:
                self._life_ends.setdefault((nid, node.incarnation), now)
            self._last_state[nid] = cur

    # ------------------------------------------------------------------
    # Invariant: no resurrection of buried incarnations
    # ------------------------------------------------------------------
    def _check_resurrection(self) -> None:
        now = self.network.now
        grace = self.zombie_grace
        for observer_id, observer in self.nodes.items():
            if not observer.running:
                continue
            for rec in observer.directory.records():
                if rec.node_id == observer_id:
                    continue
                died = self._life_ends.get((rec.node_id, rec.incarnation))
                if died is None or now - died <= grace:
                    continue
                key = (observer_id, rec.node_id, rec.incarnation)
                if key in self._flagged_zombies:
                    continue
                self._flagged_zombies.add(key)
                self.violations.append(
                    Violation(
                        now,
                        "resurrection",
                        f"{observer_id} still lists {rec.node_id}"
                        f"@inc{rec.incarnation}, dead since t={died:.1f}",
                    )
                )

    # ------------------------------------------------------------------
    # Invariant: no two mutually-visible leaders per level
    # ------------------------------------------------------------------
    def _leaders_by_level(self) -> Dict[int, List[str]]:
        out: Dict[int, List[str]] = {}
        for nid, node in self.nodes.items():
            if not node.running or not hasattr(node, "is_leader"):
                continue
            for level in node.levels():
                if node.is_leader(level):
                    out.setdefault(level, []).append(nid)
        return out

    def _mutually_visible(self, a: str, b: str, level: int, now: float) -> bool:
        topo = self.network.topo
        if not (topo.is_up(a) and topo.is_up(b)):
            return False
        node = self.nodes[a]
        ttl = node.config.ttl_for_level(level) if hasattr(node.config, "ttl_for_level") else level + 1
        dist = topo.ttl_distance(a, b)
        if dist == UNREACHABLE or dist > ttl:
            return False
        plan = self.network.fault_plan
        if plan is not None and plan.severed(a, b, now):
            return False
        return True

    def _check_dual_leaders(self) -> None:
        now = self.network.now
        seen: set = set()
        for level, leaders in self._leaders_by_level().items():
            if len(leaders) < 2:
                continue
            for a, b in combinations(sorted(leaders), 2):
                if not self._mutually_visible(a, b, level, now):
                    continue
                key = (level, a, b)
                seen.add(key)
                streak = self._dual_streaks.get(key, 0) + 1
                self._dual_streaks[key] = streak
                if streak == self.leader_streak:
                    self.violations.append(
                        Violation(
                            now,
                            "dual_leader",
                            f"level {level}: {a} and {b} both lead, mutually "
                            f"visible for {streak} checks",
                        )
                    )
        # Pairs that resolved reset their streak.
        for key in [k for k in self._dual_streaks if k not in seen]:
            del self._dual_streaks[key]

    # ------------------------------------------------------------------
    # Invariant: bounded false failures
    # ------------------------------------------------------------------
    def _on_record(self, rec: TraceRecord) -> None:
        if rec.kind != "member_down" or rec.node is None:
            return
        if rec.data.get("reason") == "leave":
            return  # graceful departure: immediate removal is the contract
        target = rec.data.get("target")
        node = self.nodes.get(target)
        if node is None or not node.running:
            return  # genuinely dead (or outside the watched deployment)
        topo = self.network.topo
        if not (topo.is_up(target) and topo.is_up(rec.node)):
            return
        if topo.ttl_distance(rec.node, target) == UNREACHABLE:
            return  # partitioned by a downed device: removal is correct
        plan = self.network.fault_plan
        if plan is not None and plan.severed(rec.node, target, rec.time):
            return  # severed by chaos rules: removal is correct
        self.false_failures.append(
            (rec.time, rec.node, target, rec.data.get("reason", ""))
        )

    def check_false_failures(self) -> List[Violation]:
        """Bounded-false-failure check (call at scenario end)."""
        out: List[Violation] = []
        if len(self.false_failures) > self.max_false_failures:
            out.append(
                Violation(
                    self.network.now,
                    "false_failures",
                    f"{len(self.false_failures)} false failures "
                    f"(bound {self.max_false_failures}); first: "
                    f"{self.false_failures[0]}",
                )
            )
        self.violations.extend(out)
        return out

    # ------------------------------------------------------------------
    # Invariant: eventual directory agreement
    # ------------------------------------------------------------------
    def check_agreement(self) -> List[Violation]:
        """Every running node's view equals the set of running nodes.

        Only meaningful after a quiet period (no active faults, all
        timeouts elapsed) — call it at scenario end, not mid-chaos.
        """
        now = self.network.now
        expected = {nid for nid, n in self.nodes.items() if n.running}
        out: List[Violation] = []
        for nid in sorted(expected):
            view = set(self.nodes[nid].view())
            missing = expected - view
            extra = view - expected
            if missing or extra:
                out.append(
                    Violation(
                        now,
                        "agreement",
                        f"{nid}: missing={sorted(missing)} extra={sorted(extra)}",
                    )
                )
        self.violations.extend(out)
        return out

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return {
            "ok": self.ok,
            "violations": counts,
            "false_failures": len(self.false_failures),
        }
