"""The (detector x scheme) BDT/BCT matrix lab.

Section 4 of the paper compares dissemination schemes by their
bandwidth - detection time and bandwidth - convergence time products.
With failure detection now a strategy (:mod:`repro.detect`), the fair
comparison is two-dimensional: every detector crossed with every scheme,
each pair run on the same seeded chaos fabric (base packet loss plus a
directionally degraded inter-network link) with one mid-run crash.

Per pair the lab measures the empirical detection/convergence times and
steady-state aggregate bandwidth, multiplies them into empirical BDT/BCT,
and sets them next to the closed-form numbers from
:mod:`repro.analysis.models` (which route through the same
:func:`repro.detect.bounds.detection_bound` the detectors advertise).
Every run is watched by the
:class:`~repro.chaos.invariants.InvariantChecker` with the per-detector
false-failure budget; a pair is ``ok`` only when every invariant held and
the failure was detected within twice its advertised bound (plus slack
for trace granularity).

``benchmarks/bench_detectors.py`` sweeps this matrix into
``BENCH_detectors.json``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.models import MODELS, AnalysisParams
from repro.chaos.invariants import InvariantChecker, false_failure_bound
from repro.core.config import HierarchicalConfig
from repro.detect.bounds import detection_bound
from repro.metrics.collectors import (
    bandwidth_stats,
    convergence_time,
    detection_time,
)
from repro.metrics.experiment import make_scheme_cluster
from repro.protocols.base import ProtocolConfig

__all__ = ["DetectorMatrixLab", "DetectorPairResult"]


@dataclass(frozen=True)
class DetectorPairResult:
    """Outcome of one (detector, scheme) chaos run."""

    detector: str
    scheme: str
    seed: int
    n: int
    #: empirical seconds from kill to first / last survivor noticing
    detection: Optional[float]
    convergence: Optional[float]
    #: steady-state aggregate receive bandwidth, bytes/second
    aggregate_bandwidth: float
    #: empirical products (bytes); None when the failure went undetected
    bdt: Optional[float]
    bct: Optional[float]
    #: closed-form products from repro.analysis.models at this n
    model_bdt: float
    model_bct: float
    #: the detector's advertised bound at this n (seconds) and the
    #: detection gate derived from it
    detection_bound_s: float
    detection_gate_s: float
    false_failures: int
    false_failure_bound: int
    violations: List[str]
    ok: bool


@dataclass
class DetectorMatrixLab:
    """Run the full detector x scheme matrix on one chaos fabric.

    The fabric reuses the canonical chaos scenario's shape: ``networks``
    switched networks of ``hosts_per_network`` hosts, base ``loss_rate``
    everywhere, and a directionally degraded link between networks 1 and
    2 for ``chaos_len`` seconds starting at ``warmup``.  The victim is an
    ordinary node of network 0 — its detection is measured clean while
    the invariant checker hunts false positives in the degraded corner.
    """

    networks: int = 3
    hosts_per_network: int = 8
    seed: int = 7
    loss_rate: float = 0.02
    warmup: float = 20.0
    bandwidth_window: float = 10.0
    observe: float = 45.0
    chaos_len: float = 20.0
    directional_loss: float = 0.2
    jitter: float = 0.05
    reorder: float = 0.3
    reorder_window: float = 0.2
    duplicate: float = 0.1
    dup_lag: float = 0.05
    check_period: float = 2.0
    detectors: Sequence[str] = ("counter", "swim", "phi-accrual")
    schemes: Sequence[str] = ("hierarchical", "all-to-all", "gossip")
    #: extra detector knobs applied to every pair's config
    config_overrides: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _make_config(self, detector: str, scheme: str) -> ProtocolConfig:
        kwargs: Dict[str, object] = {"detector": detector, **self.config_overrides}
        if scheme == "hierarchical":
            return HierarchicalConfig(**kwargs)  # type: ignore[arg-type]
        return ProtocolConfig(**kwargs)  # type: ignore[arg-type]

    def _model_params(self, config: ProtocolConfig) -> AnalysisParams:
        return AnalysisParams(
            member_size=config.member_size,
            freq=1.0 / config.heartbeat_period,
            max_loss=config.max_loss,
            group_size=self.hosts_per_network,
            gossip_fanout=config.gossip_fanout,
            gossip_mistake_prob=config.gossip_mistake_prob,
            detector=config.detector,
            phi_threshold=config.phi_threshold,
            suspicion_timeout=config.suspicion_timeout,
            probe_timeout=config.probe_timeout,
            probe_period=config.probe_period,
            indirect_probes=config.indirect_probes,
        )

    # ------------------------------------------------------------------
    def run_pair(self, detector: str, scheme: str) -> DetectorPairResult:
        """One seeded chaos run of ``scheme`` under ``detector``."""
        config = self._make_config(detector, scheme)
        net, hosts, nodes = make_scheme_cluster(
            scheme,
            self.networks,
            self.hosts_per_network,
            seed=self.seed,
            loss_rate=self.loss_rate,
            config=config,
        )
        n = len(hosts)
        bound = detection_bound(
            detector,
            period=config.heartbeat_period,
            max_loss=config.max_loss,
            n=n,
            scheme=scheme,
            phi_threshold=config.phi_threshold,
            suspicion_timeout=config.suspicion_timeout,
            probe_timeout=config.probe_timeout,
            probe_period=config.probe_period,
            gossip_mistake_prob=config.gossip_mistake_prob,
        )
        # Twice the advertised bound plus trace-granularity slack: loss
        # can eat the first declaration-enabling observation, adaptive
        # detectors stretch with the observed cadence under chaos.
        gate = 2.0 * bound + 3.0
        # Slow bounds need a longer watch than the default window.
        observe = max(self.observe, gate + 10.0)

        checker = InvariantChecker(
            net, nodes, max_false_failures=false_failure_bound(detector)
        )
        checker.start(self.check_period)

        m = self.hosts_per_network
        groups = [hosts[i * m : (i + 1) * m] for i in range(self.networks)]
        if self.networks >= 3:
            net.ensure_fault_plan().add(
                src=groups[1],
                dst=groups[2],
                loss=self.directional_loss,
                jitter=self.jitter,
                reorder=self.reorder,
                reorder_window=self.reorder_window,
                duplicate=self.duplicate,
                dup_lag=self.dup_lag,
                start=self.warmup,
                until=self.warmup + self.chaos_len,
                label="degraded:n1->n2",
            )

        net.run(until=self.warmup)
        net.meter.reset()
        net.run(until=net.now + self.bandwidth_window)
        stats = bandwidth_stats(net.meter, self.bandwidth_window, n)

        victim = groups[0][m // 2]
        nodes[victim].stop()
        net.crash_host(victim)
        kill_time = net.now
        net.run(until=kill_time + observe)

        checker.stop()
        checker.check_false_failures()
        checker.check_agreement()

        survivors = [h for h in hosts if h != victim]
        detection = detection_time(net.trace, victim, kill_time)
        convergence = convergence_time(
            net.trace, victim, kill_time, expected_observers=survivors
        )

        params = self._model_params(config)
        model = MODELS[scheme](params)
        bw = stats.aggregate_rate
        detected_in_time = detection is not None and detection <= gate
        ok = checker.ok and detected_in_time and convergence is not None
        return DetectorPairResult(
            detector=detector,
            scheme=scheme,
            seed=self.seed,
            n=n,
            detection=detection,
            convergence=convergence,
            aggregate_bandwidth=bw,
            bdt=bw * detection if detection is not None else None,
            bct=bw * convergence if convergence is not None else None,
            model_bdt=model.bdt(n),
            model_bct=model.bct(n),
            detection_bound_s=bound,
            detection_gate_s=gate,
            false_failures=len(checker.false_failures),
            false_failure_bound=checker.max_false_failures,
            violations=[f"{v.invariant}: {v.detail}" for v in checker.violations],
            ok=ok,
        )

    def run(self) -> List[DetectorPairResult]:
        """The full matrix, detectors outer, schemes inner."""
        return [
            self.run_pair(detector, scheme)
            for detector in self.detectors
            for scheme in self.schemes
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def to_rows(results: Sequence[DetectorPairResult]) -> List[Dict[str, object]]:
        """JSON-ready rows (the BENCH_detectors.json payload)."""
        return [asdict(r) for r in results]
