"""The Fig. 2 overhead model: why all-to-all does not scale.

The paper measures, on a dual 1.4 GHz Pentium III, the CPU load and
receive rate while varying the number of emulated heartbeat senders:
receiving one 1024-byte heartbeat per node per second, a 4000-node cluster
costs ~4000 packets/s, about 4 MB/s ("32% of the raw bandwidth of a Fast
Ethernet link") and several percent of CPU.

Both curves are linear in the packet arrival rate, so the model is a
calibrated per-packet cost.  Defaults reproduce the paper's endpoints;
:meth:`AllToAllOverheadModel.calibrate` refits them from any two measured
points (e.g. from the simulator's own packet counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["AllToAllOverheadModel"]


@dataclass(frozen=True)
class AllToAllOverheadModel:
    """Linear per-packet CPU/bandwidth overhead of heartbeat reception.

    Attributes
    ----------
    packet_size:
        Heartbeat wire size in bytes (Fig. 2 uses 1024-byte packets).
    heartbeat_freq:
        Heartbeats per node per second.
    cpu_seconds_per_packet:
        Receive-path processing cost.  The default (11.25 microseconds)
        reproduces the paper's ~4.5 % CPU at 4000 nodes on the dual
        P-III testbed.
    """

    packet_size: int = 1024
    heartbeat_freq: float = 1.0
    cpu_seconds_per_packet: float = 11.25e-6

    # ------------------------------------------------------------------
    def packets_per_second(self, cluster_size: int) -> float:
        """Heartbeats received per node per second (everyone else sends)."""
        return max(0, cluster_size - 1) * self.heartbeat_freq

    def cpu_percent(self, cluster_size: int) -> float:
        """Receive-path CPU load, percent of one machine."""
        return 100.0 * self.packets_per_second(cluster_size) * self.cpu_seconds_per_packet

    def bandwidth_bytes_per_second(self, cluster_size: int) -> float:
        """Per-node receive bandwidth."""
        return self.packets_per_second(cluster_size) * self.packet_size

    def fast_ethernet_fraction(self, cluster_size: int) -> float:
        """Share of a 100 Mb/s link consumed (the paper's 32 % at 4000)."""
        return self.bandwidth_bytes_per_second(cluster_size) / (100e6 / 8)

    def sweep(self, cluster_sizes: Sequence[int]) -> List[Tuple[int, float, float]]:
        """(size, cpu %, received packets/s) rows — the two Fig. 2 panels."""
        return [
            (n, self.cpu_percent(n), self.packets_per_second(n))
            for n in cluster_sizes
        ]

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        points: Sequence[Tuple[float, float]],
        packet_size: int = 1024,
        heartbeat_freq: float = 1.0,
    ) -> "AllToAllOverheadModel":
        """Fit ``cpu_seconds_per_packet`` from (packets/s, cpu %) samples.

        Least-squares through the origin; at least one sample with a
        non-zero rate is required.
        """
        num = sum(rate * (cpu / 100.0) for rate, cpu in points)
        den = sum(rate * rate for rate, _cpu in points)
        if den == 0:
            raise ValueError("need at least one sample with non-zero packet rate")
        return cls(
            packet_size=packet_size,
            heartbeat_freq=heartbeat_freq,
            cpu_seconds_per_packet=num / den,
        )
