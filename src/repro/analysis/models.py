"""Section 4 scalability analysis.

The paper derives, for each scheme, the failure-detection time, the view-
convergence time, and two figures of merit combining them with traffic:
the **bandwidth - detection time product** (BDT) and **bandwidth -
convergence time product** (BCT) — "protocols with lower BDT values are
better, because they use less time to detect a failure with a fixed
bandwidth".

We evaluate the models in the *fixed-frequency* regime the evaluation
uses ("In practice, each node often fixes its multicast frequency"): every
node sends one heartbeat/gossip per ``1/freq`` seconds, detection follows
from ``max_loss`` missed beats, and the bandwidth follows from the scheme's
message sizes:

================  =====================  ==========================
scheme            aggregate bandwidth    detection time
================  =====================  ==========================
all-to-all        O(s f n^2)             k / f (constant)
gossip            O(s f n^2)             O(log n) / f
hierarchical      O(s f g n)             k / f (constant)
================  =====================  ==========================

so the BDT products are O(k s n^2), O(k s n^2 log n) and O(k s g n)
respectively — the hierarchical scheme is the most scalable, as the paper
concludes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.detect.bounds import detection_bound

__all__ = [
    "AnalysisParams",
    "SchemeModel",
    "AllToAllModel",
    "GossipModel",
    "HierarchicalModel",
    "MODELS",
]


@dataclass(frozen=True)
class AnalysisParams:
    """Symbols of the Section 4 analysis.

    Defaults are the evaluation's settings: s = 228 bytes, one packet per
    second, k = 5 missed heartbeats, groups of g = 20 nodes, 0.1 % gossip
    mistake probability, and a sub-millisecond in-cluster hop time.
    """

    member_size: int = 228  # s
    freq: float = 1.0  # heartbeats / second
    max_loss: int = 5  # k
    group_size: int = 20  # g
    gossip_fanout: int = 1
    gossip_mistake_prob: float = 0.001
    hop_latency: float = 0.001  # update transmission time per tree hop
    #: failure-detection strategy whose advertised bound the models quote
    #: (:mod:`repro.detect.bounds`); the default reproduces the paper.
    detector: str = "counter"
    phi_threshold: float = 8.0
    suspicion_timeout: float = 2.0
    probe_timeout: float = 0.5
    probe_period: Optional[float] = None  # None: the heartbeat period
    indirect_probes: int = 3


class SchemeModel(ABC):
    """Closed-form model of one scheme at cluster size *n*."""

    name: str

    def __init__(self, params: AnalysisParams | None = None) -> None:
        self.params = params if params is not None else AnalysisParams()

    # ------------------------------------------------------------------
    @abstractmethod
    def aggregate_bandwidth(self, n: int) -> float:
        """Summed receive bandwidth over all nodes, bytes/second."""

    def detection_time(self, n: int) -> float:
        """Seconds from a failure to its first detection.

        One implementation for every scheme, routed through the active
        detector's advertised bound (:func:`repro.detect.bounds.
        detection_bound`) — the pre-refactor per-scheme formulas are the
        ``counter`` branches of that function, so default-parameter
        numbers are unchanged.
        """
        p = self.params
        return detection_bound(
            p.detector,
            period=1.0 / p.freq,
            max_loss=p.max_loss,
            n=n,
            scheme=self.name,
            phi_threshold=p.phi_threshold,
            suspicion_timeout=p.suspicion_timeout,
            probe_timeout=p.probe_timeout,
            probe_period=p.probe_period,
            gossip_mistake_prob=p.gossip_mistake_prob,
        )

    def convergence_time(self, n: int) -> float:
        """Seconds until every node's view reflects the failure.

        Defaults to the detection time — in the flat and gossip schemes
        "all nodes maintain their views independently".
        """
        return self.detection_time(n)

    # ------------------------------------------------------------------
    def bdt(self, n: int) -> float:
        """Bandwidth - detection time product (bytes)."""
        return self.aggregate_bandwidth(n) * self.detection_time(n)

    def bct(self, n: int) -> float:
        """Bandwidth - convergence time product (bytes)."""
        return self.aggregate_bandwidth(n) * self.convergence_time(n)

    def per_node_bandwidth(self, n: int) -> float:
        return self.aggregate_bandwidth(n) / n if n else 0.0


class AllToAllModel(SchemeModel):
    """Every node multicasts an s-byte heartbeat to all n-1 others."""

    name = "all-to-all"

    def aggregate_bandwidth(self, n: int) -> float:
        p = self.params
        return p.freq * n * (n - 1) * p.member_size


class GossipModel(SchemeModel):
    """Each gossip message carries the full n-entry view (n x s bytes)."""

    name = "gossip"

    def aggregate_bandwidth(self, n: int) -> float:
        p = self.params
        return p.freq * p.gossip_fanout * n * (n * p.member_size)

    def convergence_time(self, n: int) -> float:
        # Every node times the failure out independently, offset by the
        # epidemic spread (~log2 n rounds) of the last counter increments.
        p = self.params
        return self.detection_time(n) + 0.5 * math.log2(max(n, 2)) / p.freq


class HierarchicalModel(SchemeModel):
    """Groups of at most g nodes; a (n-1)/(g-1)-group tree of height log_g n."""

    name = "hierarchical"

    def num_groups(self, n: int) -> float:
        g = self.params.group_size
        if n <= g:
            return 1.0
        return (n - 1) / (g - 1)

    def tree_height(self, n: int) -> int:
        g = self.params.group_size
        return max(1, math.ceil(math.log(max(n, 2), g)))

    def aggregate_bandwidth(self, n: int) -> float:
        # Each group of (at most) g members exchanges g(g-1) heartbeats of
        # s bytes per cycle: O(s f g n) in total.
        p = self.params
        g = min(p.group_size, n)
        return p.freq * self.num_groups(n) * g * (g - 1) * p.member_size

    def convergence_time(self, n: int) -> float:
        # Detection plus the update's trip up to the root and down every
        # subtree: 2 x (height - 1) hops; a single-group cluster (height 1)
        # needs no propagation at all, every member detects directly.
        hops = 2 * (self.tree_height(n) - 1)
        return self.detection_time(n) + hops * self.params.hop_latency


MODELS: Dict[str, Type[SchemeModel]] = {
    "all-to-all": AllToAllModel,
    "gossip": GossipModel,
    "hierarchical": HierarchicalModel,
}
