"""Analytical models from the paper.

:mod:`repro.analysis.models` implements the Section 4 scalability analysis
(failure-detection time, view-convergence time, and the bandwidth-
detection-time / bandwidth-convergence-time products for the three
schemes); :mod:`repro.analysis.cpumodel` implements the Fig. 2 per-packet
CPU/bandwidth overhead model of the all-to-all scheme.
"""

from repro.analysis.models import (
    AnalysisParams,
    SchemeModel,
    AllToAllModel,
    GossipModel,
    HierarchicalModel,
    MODELS,
)
from repro.analysis.cpumodel import AllToAllOverheadModel

__all__ = [
    "AnalysisParams",
    "SchemeModel",
    "AllToAllModel",
    "GossipModel",
    "HierarchicalModel",
    "MODELS",
    "AllToAllOverheadModel",
]
