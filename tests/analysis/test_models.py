"""Tests for the Section 4 analysis and the Fig. 2 overhead model."""

import math

import pytest

from repro.analysis import (
    AllToAllModel,
    AllToAllOverheadModel,
    AnalysisParams,
    GossipModel,
    HierarchicalModel,
    MODELS,
)


class TestAllToAllModel:
    def test_bandwidth_quadratic(self):
        m = AllToAllModel()
        assert m.aggregate_bandwidth(200) / m.aggregate_bandwidth(100) == pytest.approx(
            200 * 199 / (100 * 99)
        )

    def test_detection_constant(self):
        m = AllToAllModel()
        assert m.detection_time(20) == m.detection_time(4000) == 5.0

    def test_convergence_equals_detection(self):
        m = AllToAllModel()
        assert m.convergence_time(500) == m.detection_time(500)

    def test_bdt_quadratic(self):
        m = AllToAllModel()
        assert m.bdt(2000) / m.bdt(1000) == pytest.approx(4.0, rel=0.01)


class TestGossipModel:
    def test_bandwidth_quadratic(self):
        m = GossipModel()
        assert m.aggregate_bandwidth(200) / m.aggregate_bandwidth(100) == pytest.approx(4.0)

    def test_detection_logarithmic(self):
        m = GossipModel()
        d20, d100, d1000 = m.detection_time(20), m.detection_time(100), m.detection_time(1000)
        assert d20 < d100 < d1000
        assert (d1000 - d100) == pytest.approx(math.log2(10), rel=1e-6)

    def test_convergence_exceeds_detection(self):
        m = GossipModel()
        assert m.convergence_time(100) > m.detection_time(100)

    def test_bdt_worse_than_alltoall(self):
        g, a = GossipModel(), AllToAllModel()
        for n in (50, 100, 1000):
            assert g.bdt(n) > a.bdt(n)


class TestHierarchicalModel:
    def test_bandwidth_linear(self):
        m = HierarchicalModel()
        assert m.aggregate_bandwidth(2000) / m.aggregate_bandwidth(1000) == pytest.approx(
            2.0, rel=0.01
        )

    def test_per_node_bandwidth_constant(self):
        m = HierarchicalModel()
        assert m.per_node_bandwidth(4000) == pytest.approx(m.per_node_bandwidth(400), rel=0.05)

    def test_detection_constant(self):
        m = HierarchicalModel()
        assert m.detection_time(20) == m.detection_time(4000) == 5.0

    def test_convergence_adds_tree_hops(self):
        m = HierarchicalModel()
        extra = m.convergence_time(8000) - m.detection_time(8000)
        assert extra == pytest.approx(2 * (m.tree_height(8000) - 1) * 0.001)
        assert m.tree_height(8000) == 3  # log_20(8000) = 3

    def test_single_group_convergence_equals_detection(self):
        m = HierarchicalModel()
        assert m.convergence_time(20) == m.detection_time(20)

    def test_single_group_cluster(self):
        m = HierarchicalModel()
        assert m.num_groups(15) == 1.0
        a = AllToAllModel()
        # Within one group the hierarchical scheme IS all-to-all.
        assert m.aggregate_bandwidth(15) == a.aggregate_bandwidth(15)

    def test_best_bdt_of_the_three(self):
        models = {name: cls() for name, cls in MODELS.items()}
        for n in (100, 1000, 4000):
            bdts = {name: m.bdt(n) for name, m in models.items()}
            assert bdts["hierarchical"] == min(bdts.values())

    def test_best_bct_of_the_three(self):
        models = {name: cls() for name, cls in MODELS.items()}
        for n in (100, 1000, 4000):
            bcts = {name: m.bct(n) for name, m in models.items()}
            assert bcts["hierarchical"] == min(bcts.values())


class TestParams:
    def test_custom_params_flow_through(self):
        p = AnalysisParams(member_size=100, freq=2.0, max_loss=3)
        m = AllToAllModel(p)
        assert m.detection_time(100) == 1.5
        assert m.aggregate_bandwidth(10) == 2.0 * 10 * 9 * 100


class TestOverheadModel:
    def test_paper_endpoints(self):
        m = AllToAllOverheadModel()
        # ~4000 packets/s and ~4.5 % CPU at 4000 nodes (paper Fig. 2).
        assert m.packets_per_second(4000) == pytest.approx(3999)
        assert m.cpu_percent(4000) == pytest.approx(4.5, rel=0.01)
        # 1024-byte packets: ~4 MB/s = 32 % of Fast Ethernet.
        assert m.fast_ethernet_fraction(4000) == pytest.approx(0.327, rel=0.01)

    def test_linearity(self):
        m = AllToAllOverheadModel()
        assert m.cpu_percent(2001) == pytest.approx(m.cpu_percent(1001) * 2)

    def test_zero_and_one_node(self):
        m = AllToAllOverheadModel()
        assert m.packets_per_second(0) == 0
        assert m.cpu_percent(1) == 0.0

    def test_sweep_rows(self):
        m = AllToAllOverheadModel()
        rows = m.sweep([1000, 2000])
        assert [r[0] for r in rows] == [1000, 2000]
        assert rows[1][2] == pytest.approx(1999)

    def test_calibrate_roundtrip(self):
        truth = AllToAllOverheadModel(cpu_seconds_per_packet=20e-6)
        points = [(truth.packets_per_second(n), truth.cpu_percent(n)) for n in (1000, 3000)]
        fitted = AllToAllOverheadModel.calibrate(points)
        assert fitted.cpu_seconds_per_packet == pytest.approx(20e-6)

    def test_calibrate_requires_signal(self):
        with pytest.raises(ValueError):
            AllToAllOverheadModel.calibrate([(0.0, 0.0)])
