"""The wire codec: round trips, canonical bytes, strict failure modes."""

import struct

import pytest

from repro.cluster.directory import NodeRecord
from repro.core.heartbeat import Heartbeat
from repro.core.updates import UpdateMessage, UpdateOp
from repro.net.packet import Packet
from repro.runtime.wire import (
    WIRE_VERSION,
    WireError,
    decode_packet,
    decode_value,
    encode_packet,
    encode_value,
)


def roundtrip(value):
    return decode_value(encode_value(value))


RECORD = NodeRecord(
    node_id="host-7",
    incarnation=3,
    services={"Retriever": frozenset({1, 2, 3}), "Index": frozenset()},
    attrs={"cpus": "4", "load": "0.25"},
)


class TestValueRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            1.5,
            -0.0,
            "",
            "héllo/δ",
            b"",
            b"\x00\xffraw",
            (),
            (1, "two", None),
            [],
            [1, [2, [3]]],
            {},
            {"k": 1, 2: "v", None: (1, 2)},
            frozenset(),
            frozenset({3, 1, 2}),
        ],
    )
    def test_scalars_and_containers(self, value):
        out = roundtrip(value)
        assert out == value
        assert type(out) is type(value)

    def test_node_record(self):
        out = roundtrip(RECORD)
        assert isinstance(out, NodeRecord)
        assert out == RECORD

    def test_heartbeat(self):
        hb = Heartbeat(
            record=RECORD,
            level=2,
            is_leader=True,
            suppressed=False,
            backup="host-9",
            update_seq=41,
        )
        out = roundtrip(hb)
        assert isinstance(out, Heartbeat)
        assert out == hb
        # The receive fast path keys on content equality after a trip.
        assert out.same_as(hb) and hb.same_as(out)
        assert out.record is not hb.record

    def test_update_message_with_piggyback(self):
        msg = UpdateMessage(
            uid=5,
            origin="host-1",
            sender="host-2",
            level=1,
            seq=9,
            ops=(UpdateOp("add", "host-7", 3, RECORD),),
            piggyback=(
                (8, 4, "host-3", (UpdateOp("remove", "host-4", 1),)),
                (7, 2, "host-1", (UpdateOp("leave", "host-5", 2),)),
            ),
        )
        out = roundtrip(msg)
        assert isinstance(out, UpdateMessage)
        assert out == msg
        # Piggyback entries keep their true (origin, uid) identities.
        assert [(o, u) for _s, u, o, _ops in out.piggyback] == [
            ("host-3", 4),
            ("host-1", 2),
        ]

    def test_frozenset_bytes_are_canonical(self):
        # Content-identical sets must serialize identically regardless of
        # construction order (content-keyed dedup must survive the wire).
        a = frozenset([1, 2, 3, 40, 500])
        b = frozenset([500, 40, 3, 2, 1])
        assert encode_value(a) == encode_value(b)

    def test_unencodable_type_raises(self):
        with pytest.raises(WireError):
            encode_value(object())

    def test_oversized_int_raises(self):
        with pytest.raises(WireError):
            encode_value(2**64)


class TestPacketFraming:
    def test_multicast_packet_roundtrip(self):
        pkt = Packet(
            src="n1",
            kind="heartbeat",
            payload=Heartbeat(record=RECORD, level=0, is_leader=False, suppressed=True),
            size=256,
            channel="239.255.0.2:10050/L0",
            ttl=1,
        )
        out, port = decode_packet(encode_packet(pkt))
        assert port is None
        assert (out.src, out.kind, out.channel, out.ttl, out.size) == (
            "n1",
            "heartbeat",
            "239.255.0.2:10050/L0",
            1,
            256,
        )
        assert out.dst is None
        assert out.payload == pkt.payload

    def test_unicast_packet_carries_port(self):
        pkt = Packet(
            src="n1",
            kind="sync_req",
            payload={"seqs": {0: 5}},
            size=28,
            dst="n2",
        )
        out, port = decode_packet(encode_packet(pkt, "hmember"))
        assert port == "hmember"
        assert out.dst == "n2" and out.channel is None
        assert out.payload == {"seqs": {0: 5}}

    def test_truncated_frame_raises(self):
        data = encode_packet(
            Packet(src="a", kind="k", payload=(1, 2, 3), size=0, channel="c", ttl=1)
        )
        for cut in (0, 3, 7, len(data) // 2, len(data) - 1):
            with pytest.raises(WireError):
                decode_packet(data[:cut])

    def test_trailing_garbage_raises(self):
        data = encode_packet(
            Packet(src="a", kind="k", payload=None, size=0, channel="c", ttl=1)
        )
        with pytest.raises(WireError):
            decode_packet(data + b"\x00")

    def test_bad_magic_raises(self):
        data = encode_packet(
            Packet(src="a", kind="k", payload=None, size=0, channel="c", ttl=1)
        )
        with pytest.raises(WireError):
            decode_packet(b"XX" + data[2:])

    def test_version_mismatch_raises(self):
        data = bytearray(
            encode_packet(
                Packet(src="a", kind="k", payload=None, size=0, channel="c", ttl=1)
            )
        )
        data[2] = WIRE_VERSION + 1
        with pytest.raises(WireError):
            decode_packet(bytes(data))

    def test_corrupt_value_tag_raises(self):
        body = b"\x7f"  # not a known tag
        frame = struct.pack(">2sBI", b"RM", WIRE_VERSION, len(body)) + body
        with pytest.raises(WireError):
            decode_value(body)
        with pytest.raises(WireError):
            decode_packet(frame)
