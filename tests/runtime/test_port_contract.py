"""Shared conformance suite for the :class:`NodeRuntime` timer contract.

Satellite of the real-network PR: the same behavioural suite runs
against **both** adapters — :class:`~repro.runtime.sim.SimRuntime` over
the discrete-event kernel and :class:`~repro.runtime.anet.AsyncRuntime`
over a live asyncio loop — so the contract pinned in
``repro/runtime/ports.py`` is enforced by tests, not prose:

* one-shots are epoch-guarded (dropped after ``bump_epoch`` or
  ``deactivate``), recurring timers are not (they die only with the
  life);
* ``call_every(first_delay=0)`` fires promptly, then keeps the period;
* non-positive periods and negative first delays are rejected;
* a callback cancelling its own recurring timer stops it cleanly;
* ``deactivate()`` called *inside* a timer callback cancels everything,
  including the currently-firing timer, and leaves no live timers;
* ``send`` to a spec-known destination is *accepted for send* (True);
  the asyncio adapter additionally refuses unknown destinations and
  unsendable datagrams instead of lying (the simulator cannot produce
  either refusal, so those cases are adapter-specific).

The sim harness asserts exact virtual-time cadence; the asyncio harness
runs in real time with coarse tolerances (counts and invariants, not
exact instants).
"""

import asyncio

import pytest

from repro.net.builders import build_switched_cluster
from repro.net.network import Network
from repro.runtime.anet import AsyncRuntime, ClusterSpec, NodeSpec, RelaySpec
from repro.runtime.sim import SimRuntime


class SimHarness:
    """SimRuntime over a tiny simulated network; virtual time."""

    name = "sim"
    #: One cadence unit.  Virtual seconds: exact and free.
    tick = 1.0
    exact = True

    def __init__(self):
        topo, hosts = build_switched_cluster(1, 2)
        self.net = Network(topo, seed=3)
        self.runtime = SimRuntime(self.net, hosts[0])
        self.peer = hosts[1]
        self.runtime.activate()

    def run(self, duration):
        self.net.run(until=self.runtime.now + duration)

    def close(self):
        self.runtime.deactivate()


class AsyncHarness:
    """AsyncRuntime on a private event loop; real time, coarse asserts."""

    name = "anet"
    #: One cadence unit.  Real seconds: keep small but flake-resistant.
    tick = 0.1
    exact = False

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        spec = ClusterSpec(
            relay=RelaySpec(host="127.0.0.1", port=1),  # never contacted here
            nodes={
                "n0": NodeSpec(host="127.0.0.1", port=0),
                # A spec-known peer address nothing listens on: sends to
                # it are accepted (the contract promises no delivery).
                "n1": NodeSpec(host="127.0.0.1", port=1),
            },
        )
        self.runtime = AsyncRuntime(spec, "n0")
        self.peer = "n1"
        self.loop.run_until_complete(self.runtime.start())
        self.runtime.activate()

    def run(self, duration):
        self.loop.run_until_complete(asyncio.sleep(duration))

    def close(self):
        self.runtime.close()
        self.loop.run_until_complete(asyncio.sleep(0))
        self.loop.close()


@pytest.fixture(params=[SimHarness, AsyncHarness], ids=["sim", "anet"])
def harness(request):
    h = request.param()
    yield h
    h.close()


class TestOneShots:
    def test_fires_once_with_args(self, harness):
        fired = []
        harness.runtime.call_once(1 * harness.tick, fired.append, "x")
        harness.run(1.5 * harness.tick)
        assert fired == ["x"]
        harness.run(1.5 * harness.tick)
        assert fired == ["x"]

    def test_cancel_prevents_fire(self, harness):
        fired = []
        handle = harness.runtime.call_once(1 * harness.tick, fired.append, 1)
        handle.cancel()
        assert handle.cancelled
        harness.run(2 * harness.tick)
        assert fired == []

    def test_dropped_after_bump_epoch(self, harness):
        # The epoch guard proper: the timer stays scheduled but its
        # callback must not run into the new incarnation.
        fired = []
        harness.runtime.call_once(1 * harness.tick, fired.append, 1)
        harness.runtime.bump_epoch()
        harness.run(2 * harness.tick)
        assert fired == []

    def test_dropped_after_deactivate_reactivate(self, harness):
        # A restart (deactivate + activate) must not leak a one-shot from
        # the previous life even though the runtime is active again.
        fired = []
        harness.runtime.call_once(1 * harness.tick, fired.append, 1)
        harness.runtime.deactivate()
        harness.runtime.activate()
        harness.run(2 * harness.tick)
        assert fired == []

    def test_negative_delay_rejected(self, harness):
        with pytest.raises((ValueError, RuntimeError)):
            harness.runtime.call_once(-0.1, lambda: None)


class TestRecurring:
    def test_default_first_fire_after_one_period(self, harness):
        fired = []
        harness.runtime.call_every(1 * harness.tick, lambda: fired.append(1))
        harness.run(0.5 * harness.tick)
        assert fired == []  # not before the first period elapses
        harness.run(3 * harness.tick)
        if harness.exact:
            assert len(fired) == 3  # at 1, 2, 3 ticks
        else:
            assert len(fired) >= 2

    def test_first_delay_zero_fires_promptly_then_keeps_period(self, harness):
        # Pinned semantics: first_delay=0 is legal and means "fire as
        # soon as the loop turns", then every period after that.
        fired = []
        harness.runtime.call_every(
            2 * harness.tick, lambda: fired.append(1), first_delay=0
        )
        harness.run(0.5 * harness.tick)
        assert len(fired) == 1
        harness.run(2 * harness.tick)  # now at 2.5 ticks: fired at 0 and 2
        assert len(fired) == 2 if harness.exact else len(fired) >= 2

    def test_explicit_first_delay_phase(self, harness):
        fired = []
        harness.runtime.call_every(
            2 * harness.tick, lambda: fired.append(1), first_delay=0.5 * harness.tick
        )
        harness.run(1 * harness.tick)
        assert len(fired) == 1  # at 0.5 ticks
        harness.run(2 * harness.tick)  # now at 3 ticks: also fired at 2.5
        assert len(fired) == 2

    def test_negative_first_delay_rejected(self, harness):
        with pytest.raises((ValueError, RuntimeError)):
            harness.runtime.call_every(1.0, lambda: None, first_delay=-0.1)

    def test_nonpositive_period_rejected(self, harness):
        with pytest.raises((ValueError, RuntimeError)):
            harness.runtime.call_every(0.0, lambda: None)
        with pytest.raises((ValueError, RuntimeError)):
            harness.runtime.call_every(-1.0, lambda: None)

    def test_self_cancel_inside_callback_stops_rearming(self, harness):
        fired = []
        box = {}

        def tick():
            fired.append(1)
            box["handle"].cancel()

        box["handle"] = harness.runtime.call_every(1 * harness.tick, tick)
        harness.run(3.5 * harness.tick)
        assert len(fired) == 1

    def test_survives_bump_epoch(self, harness):
        # Recurring timers belong to the life, not the incarnation.
        fired = []
        harness.runtime.call_every(1 * harness.tick, lambda: fired.append(1))
        harness.runtime.bump_epoch()
        harness.run(1.5 * harness.tick)
        assert len(fired) >= 1


class TestDeactivateSemantics:
    def test_deactivate_inside_timer_callback(self, harness):
        # A protocol stopping itself from within its own tick (e.g. a
        # graceful leave on a heartbeat timer) must cancel everything:
        # the firing timer, its sibling recurrings, and pending one-shots.
        fired = {"self": 0, "other": 0, "oneshot": 0}
        runtime = harness.runtime

        def tick():
            fired["self"] += 1
            runtime.deactivate()

        runtime.call_every(1 * harness.tick, tick)
        runtime.call_every(1.25 * harness.tick, lambda: fired.__setitem__(
            "other", fired["other"] + 1))
        runtime.call_once(1.5 * harness.tick, lambda: fired.__setitem__(
            "oneshot", fired["oneshot"] + 1))
        harness.run(4 * harness.tick)
        assert fired == {"self": 1, "other": 0, "oneshot": 0}
        assert runtime.live_timers == 0
        assert not runtime.active

    def test_live_timers_accounting(self, harness):
        runtime = harness.runtime
        assert runtime.live_timers == 0
        h1 = runtime.call_once(10 * harness.tick, lambda: None)
        runtime.call_every(10 * harness.tick, lambda: None)
        assert runtime.live_timers == 2
        h1.cancel()
        assert runtime.live_timers == 1
        runtime.deactivate()
        assert runtime.live_timers == 0


class TestSendContract:
    def test_send_to_known_destination_accepted(self, harness):
        # True = accepted for send, nothing more; both adapters agree
        # for a destination the deployment knows an address for.
        assert harness.runtime.send(harness.peer, "hb", {"x": 1}, size=10) is True

    def test_publish_accepted_with_live_endpoint(self, harness):
        assert harness.runtime.publish("chan", 2, "hb", {"x": 1}, size=10) is True

    def test_unknown_destination_refused_by_real_transport(self, harness):
        # Only the asyncio adapter can refuse locally: the simulator
        # resolves hosts through the topology and has no address book.
        if harness.name != "anet":
            pytest.skip("simulator resolves destinations via the topology")
        assert harness.runtime.send("ghost", "hb", None, size=0) is False

    def test_unsendable_datagram_refused_by_real_transport(self, harness):
        # An encoded frame beyond the OS datagram limit with
        # fragmentation sidelined must come back False, not vanish.
        if harness.name != "anet":
            pytest.skip("simulated transport has no datagram size limit")
        harness.runtime.max_datagram = 200_000  # sidestep fragmentation
        ok = harness.runtime.send(harness.peer, "blob", b"x" * 70_000, size=70_000)
        assert ok is False
        assert harness.runtime.send_errors >= 1
