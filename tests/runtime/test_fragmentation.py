"""Fragmentation/reassembly edge cases (:mod:`repro.runtime.wire`).

The pure-codec tests drive :func:`fragment_frame`/:class:`Reassembler`
directly with a fake clock (deterministic, no sockets); the loopback
test sends a >64 KiB view-shaped payload between two live
:class:`AsyncRuntime` endpoints over real UDP and asserts it arrives
intact and *equal* — the satellite the MTU cliff demands.
"""

import asyncio
import socket

import pytest

from repro.cluster.directory import NodeRecord
from repro.runtime.anet import AsyncRuntime, ClusterSpec, NodeSpec, RelaySpec
from repro.runtime.wire import (
    DEFAULT_MAX_DATAGRAM,
    Reassembler,
    WireError,
    fragment_frame,
    is_fragment,
    parse_fragment,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def frags_of(data=b"z" * 5000, origin="n0", frame_id=1, max_payload=1000):
    return fragment_frame(data, origin, frame_id, max_payload)


# ----------------------------------------------------------------------
# fragment_frame / parse_fragment
# ----------------------------------------------------------------------
class TestFragmentFrame:
    def test_small_frame_passes_through_unwrapped(self):
        data = b"q" * 500
        assert fragment_frame(data, "n0", 1, 1000) == [data]
        assert not is_fragment(data[:2] + data)  # arbitrary bytes stay non-fragments

    def test_every_fragment_within_budget_and_roundtrips(self):
        data = bytes(range(256)) * 40  # 10,240 B, non-uniform content
        frags = fragment_frame(data, "node-7", 42, 1000)
        assert len(frags) > 1
        assert all(len(f) <= 1000 for f in frags)
        parsed = [parse_fragment(f) for f in frags]
        assert all(p.origin == "node-7" and p.frame_id == 42 for p in parsed)
        assert [p.index for p in parsed] == list(range(len(frags)))
        assert all(p.count == len(frags) for p in parsed)
        assert b"".join(p.payload for p in parsed) == data

    def test_budget_too_small_for_header_raises(self):
        with pytest.raises(WireError):
            fragment_frame(b"x" * 100, "n0", 1, 4)

    def test_too_many_fragments_raises(self):
        # A budget that would need > 65535 slices must fail loudly.
        with pytest.raises(WireError):
            fragment_frame(b"x" * 4_000_000, "n0", 1, 60)

    def test_parse_rejects_truncated_and_bad_version(self):
        frag = frags_of()[0]
        assert parse_fragment(b"??not a fragment") is None
        with pytest.raises(WireError):
            parse_fragment(frag[:5])
        bad_version = frag[:2] + bytes([99]) + frag[3:]
        with pytest.raises(WireError):
            parse_fragment(bad_version)


# ----------------------------------------------------------------------
# Reassembler
# ----------------------------------------------------------------------
class TestReassembler:
    def test_out_of_order_reassembly(self):
        data = b"payload" * 1000
        frags = frags_of(data)
        r = Reassembler(clock=FakeClock())
        out = None
        for frag in reversed(frags):
            assert out is None
            out = r.add(frag)
        assert out is not None
        assert out.payload == data
        assert out.fragments == tuple(frags)
        assert r.pending == 0 and r.completed == 1

    def test_duplicate_fragments_ignored(self):
        data = b"d" * 3000
        frags = frags_of(data)
        r = Reassembler(clock=FakeClock())
        assert r.add(frags[0]) is None
        assert r.add(frags[0]) is None  # duplicate: counted, not applied
        out = None
        for frag in frags[1:]:
            out = r.add(frag) or out
        assert out is not None and out.payload == data
        assert r.duplicates == 1

    def test_interleaved_senders_complete_independently(self):
        data_a, data_b = b"a" * 4000, b"b" * 4000
        frags_a = frags_of(data_a, origin="alice", frame_id=5)
        frags_b = frags_of(data_b, origin="bob", frame_id=5)  # same frame id!
        r = Reassembler(clock=FakeClock())
        done = {}
        for fa, fb in zip(frags_a, frags_b):
            for frag in (fa, fb):
                out = r.add(frag)
                if out is not None:
                    done[parse_fragment(frag).origin] = out.payload
        assert done == {"alice": data_a, "bob": data_b}

    def test_missing_fragment_timeout(self):
        clock = FakeClock()
        drops = []
        r = Reassembler(clock=clock, timeout=2.0, on_drop=drops.append)
        frags = frags_of()
        r.add(frags[0])  # never send the rest
        clock.now += 5.0
        assert r.expire() == 1
        assert r.timeouts == 1 and r.pending == 0
        assert drops == ["timeout"]
        # The straggler then opens a fresh (doomed) buffer, not a crash.
        assert r.add(frags[1]) is None

    def test_lazy_expiry_inside_add(self):
        clock = FakeClock()
        r = Reassembler(clock=clock, timeout=2.0)
        r.add(frags_of(origin="stale")[0])
        clock.now += 5.0
        # Feeding any fragment expires stale buffers first.
        r.add(frags_of(origin="fresh")[0])
        assert r.timeouts == 1 and r.pending == 1

    def test_buffer_count_budget_evicts_stalest(self):
        clock = FakeClock()
        drops = []
        r = Reassembler(clock=clock, timeout=1e9, max_buffers=2, on_drop=drops.append)
        r.add(frags_of(origin="old")[0])
        clock.now += 1.0
        r.add(frags_of(origin="mid")[0])
        clock.now += 1.0
        r.add(frags_of(origin="new")[0])  # evicts "old"
        assert r.evictions == 1 and r.pending == 2
        assert drops == ["evicted"]
        # "old"'s tail fragment starts over; "mid"/"new" still complete.
        out = None
        for frag in frags_of(origin="mid")[1:]:
            out = r.add(frag) or out
        assert out is not None

    def test_byte_budget_evicts(self):
        clock = FakeClock()
        r = Reassembler(clock=clock, timeout=1e9, max_bytes=3000)
        r.add(frags_of(data=b"x" * 9000, origin="fat")[0])  # ~1000 B buffered
        clock.now += 1.0
        for frag in frags_of(data=b"y" * 9000, origin="other")[:3]:
            r.add(frag)
        assert r.evictions >= 1

    def test_count_mismatch_poisons_frame(self):
        r = Reassembler(clock=FakeClock())
        r.add(frags_of(data=b"x" * 5000)[0])
        forged = frags_of(data=b"x" * 9000)[1]  # same origin+id, other count
        with pytest.raises(WireError):
            r.add(forged)
        assert r.pending == 0  # the poisoned buffer is gone

    def test_non_fragment_bytes_raise(self):
        r = Reassembler(clock=FakeClock())
        with pytest.raises(WireError):
            r.add(b"RMnot-a-fragment")


# ----------------------------------------------------------------------
# Real loopback UDP: >64 KiB daemon-to-daemon
# ----------------------------------------------------------------------
def _free_ports(count):
    socks, ports = [], []
    try:
        for _ in range(count):
            s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            s.bind(("127.0.0.1", 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
        return ports
    finally:
        for s in socks:
            s.close()


def test_oversize_view_payload_over_real_loopback_udp():
    """A view snapshot far beyond one UDP datagram arrives intact."""
    pa, pb = _free_ports(2)
    spec = ClusterSpec(
        relay=RelaySpec(host="127.0.0.1", port=1),  # never contacted
        nodes={
            "a": NodeSpec(host="127.0.0.1", port=pa),
            "b": NodeSpec(host="127.0.0.1", port=pb),
        },
    )
    # A sync-snapshot-shaped payload: a few thousand NodeRecords, well
    # over the 65,507 B UDP limit once encoded.
    snapshot = {
        "kind": "sync_snapshot",
        "records": [
            NodeRecord(node_id=f"node-{i:05d}", incarnation=i,
                       services={"svc": f"range-{i}"}, attrs={})
            for i in range(3000)
        ],
    }

    async def scenario():
        a = AsyncRuntime(spec, "a")
        b = AsyncRuntime(spec, "b")
        await a.start()
        await b.start()
        a.activate()
        b.activate()
        received = []
        b.bind("membership", received.append)
        try:
            assert a.send("b", "sync_resp", snapshot, size=70000) is True
            deadline = asyncio.get_running_loop().time() + 10.0
            while not received:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
        finally:
            a.close()
            b.close()
        return received[0]

    pkt = asyncio.run(scenario())
    assert pkt.kind == "sync_resp"
    assert pkt.payload["records"] == snapshot["records"]
    assert len(pkt.payload["records"]) == 3000


def test_encoded_oversize_frame_actually_fragments():
    # Belt and braces for the loopback test above: the snapshot really
    # is bigger than one datagram, so the path exercised is fragmented.
    from repro.net.packet import Packet
    from repro.runtime.wire import encode_packet

    records = [
        NodeRecord(node_id=f"node-{i:05d}", incarnation=i,
                   services={"svc": f"range-{i}"}, attrs={})
        for i in range(3000)
    ]
    pkt = Packet(src="a", kind="sync_resp", payload={"records": records},
                 size=70000, dst="b")
    data = encode_packet(pkt, "membership")
    assert len(data) > 65507
    frags = fragment_frame(data, "a", 1, DEFAULT_MAX_DATAGRAM)
    assert len(frags) >= 2
